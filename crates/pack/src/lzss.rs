//! LZSS compression: the DEFLATE-style dictionary coder behind the
//! bundle archives (Jar files use DEFLATE; LZSS exercises the same
//! "download less code" behaviour with an implementation small enough
//! to audit).
//!
//! Format: a stream of groups, each led by a flag byte whose bits
//! (LSB first) select *literal* (1) or *match* (0) tokens. A literal is
//! one byte; a match is two bytes encoding a 12-bit window offset and a
//! 4-bit length (3–18 bytes). The stream is prefixed by the
//! uncompressed length as a little-endian `u32`.

use crate::error::PackError;

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
/// Candidate positions examined per 3-byte hash bucket.
const MAX_CHAIN: usize = 64;

/// Compresses a byte slice.
///
/// # Examples
///
/// ```
/// use ipd_pack::{compress, decompress};
///
/// # fn main() -> Result<(), ipd_pack::PackError> {
/// let data = b"abcabcabcabcabc".repeat(20);
/// let packed = compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(decompress(&packed)?, data);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    let mut head: Vec<Vec<u32>> = vec![Vec::new(); 1 << 13];
    let hash = |bytes: &[u8]| -> usize {
        ((usize::from(bytes[0]) << 6) ^ (usize::from(bytes[1]) << 3) ^ usize::from(bytes[2]))
            & ((1 << 13) - 1)
    };
    let mut pos = 0usize;
    let mut tokens: Vec<Token> = Vec::new();
    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_offset = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let bucket = &head[hash(&data[pos..])];
            for &cand in bucket.iter().rev().take(MAX_CHAIN) {
                let cand = cand as usize;
                if pos - cand > WINDOW {
                    continue;
                }
                let limit = (data.len() - pos).min(MAX_MATCH);
                let mut len = 0usize;
                while len < limit && data[cand + len] == data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_offset = pos - cand;
                    if len == MAX_MATCH {
                        break;
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                offset: best_offset as u16,
                len: best_len as u8,
            });
            for p in pos..pos + best_len {
                if p + MIN_MATCH <= data.len() {
                    head[hash(&data[p..])].push(p as u32);
                }
            }
            pos += best_len;
        } else {
            tokens.push(Token::Literal(data[pos]));
            if pos + MIN_MATCH <= data.len() {
                head[hash(&data[pos..])].push(pos as u32);
            }
            pos += 1;
        }
    }
    // Serialize tokens in flag-byte groups of eight.
    for group in tokens.chunks(8) {
        let mut flags = 0u8;
        for (i, token) in group.iter().enumerate() {
            if matches!(token, Token::Literal(_)) {
                flags |= 1 << i;
            }
        }
        out.push(flags);
        for token in group {
            match token {
                Token::Literal(b) => out.push(*b),
                Token::Match { offset, len } => {
                    let off = offset - 1; // 1..=4096 → 0..=4095
                    let l = u16::from(len - MIN_MATCH as u8); // 0..=15
                    let word = (off & 0x0FFF) | (l << 12);
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { offset: u16, len: u8 },
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`PackError::CorruptStream`] on truncated input, invalid
/// match references or length mismatches.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, PackError> {
    if data.len() < 4 {
        return Err(PackError::CorruptStream {
            reason: "missing length header".to_owned(),
        });
    }
    let expected = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4usize;
    while out.len() < expected {
        let Some(&flags) = data.get(pos) else {
            return Err(PackError::CorruptStream {
                reason: "truncated flag byte".to_owned(),
            });
        };
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expected {
                break;
            }
            if (flags >> bit) & 1 == 1 {
                let Some(&b) = data.get(pos) else {
                    return Err(PackError::CorruptStream {
                        reason: "truncated literal".to_owned(),
                    });
                };
                out.push(b);
                pos += 1;
            } else {
                let (Some(&lo), Some(&hi)) = (data.get(pos), data.get(pos + 1)) else {
                    return Err(PackError::CorruptStream {
                        reason: "truncated match token".to_owned(),
                    });
                };
                pos += 2;
                let word = u16::from_le_bytes([lo, hi]);
                let offset = usize::from(word & 0x0FFF) + 1;
                let len = usize::from(word >> 12) + MIN_MATCH;
                if offset > out.len() {
                    return Err(PackError::CorruptStream {
                        reason: format!(
                            "match offset {offset} exceeds output position {}",
                            out.len()
                        ),
                    });
                }
                let start = out.len() - offset;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
    }
    if out.len() != expected {
        return Err(PackError::CorruptStream {
            reason: format!("expected {expected} bytes, produced {}", out.len()),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed).expect("decompress");
        assert_eq!(unpacked, data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"partial product lookup table ".repeat(100);
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 3,
            "{} vs {}",
            packed.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_survives() {
        // A xorshift byte stream: effectively random.
        let mut state = 0x1234_5678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state & 0xFF) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn overlapping_matches() {
        // RLE-style runs rely on self-overlapping copies.
        round_trip(&[7u8; 1000]);
        round_trip(b"abababababababababababab");
    }

    #[test]
    fn long_input_crossing_window() {
        let mut data = Vec::new();
        for i in 0..30_000usize {
            data.push((i % 251) as u8);
        }
        round_trip(&data);
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[1, 0, 0]).is_err());
        // Claim 100 bytes but provide nothing.
        assert!(decompress(&100u32.to_le_bytes()).is_err());
        // A match referencing before the start.
        let mut bad = Vec::new();
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.push(0); // all-match flags
        bad.extend_from_slice(&0u16.to_le_bytes()); // offset 1 at pos 0
        assert!(decompress(&bad).is_err());
    }
}
