//! LZSS compression: the DEFLATE-style dictionary coder behind the
//! bundle archives (Jar files use DEFLATE; LZSS exercises the same
//! "download less code" behaviour with an implementation small enough
//! to audit).
//!
//! Format: a stream of groups, each led by a flag byte whose bits
//! (LSB first) select *literal* (1) or *match* (0) tokens. A literal is
//! one byte; a match is two bytes encoding a 12-bit window offset and a
//! 4-bit length (3–18 bytes). The stream is prefixed by the
//! uncompressed length as a little-endian `u32`.

use crate::error::PackError;

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
/// Candidate positions examined per 3-byte hash bucket.
const MAX_CHAIN: usize = 64;

/// Compresses a byte slice.
///
/// # Examples
///
/// ```
/// use ipd_pack::{compress, decompress};
///
/// # fn main() -> Result<(), ipd_pack::PackError> {
/// let data = b"abcabcabcabcabc".repeat(20);
/// let packed = compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(decompress(&packed)?, data);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    // Chained hash dictionary: `head[h]` is the most recent position
    // with hash `h`, `prev[p]` the previous position sharing `p`'s
    // hash. Walking `head → prev → …` visits candidates newest-first,
    // exactly the order the old per-bucket `Vec` produced, so the
    // emitted token stream — and therefore every compressed byte — is
    // identical to the previous implementation's, while insertion is
    // O(1) with two flat arrays instead of 8192 growable buckets.
    const NONE: u32 = u32::MAX;
    let mut head: Vec<u32> = vec![NONE; 1 << 13];
    let mut prev: Vec<u32> = vec![NONE; data.len()];
    let hash = |bytes: &[u8]| -> usize {
        ((usize::from(bytes[0]) << 6) ^ (usize::from(bytes[1]) << 3) ^ usize::from(bytes[2]))
            & ((1 << 13) - 1)
    };
    let mut pos = 0usize;
    let mut tokens: Vec<Token> = Vec::new();
    while pos < data.len() {
        let mut best_len = 0usize;
        let mut best_offset = 0usize;
        if pos + MIN_MATCH <= data.len() {
            let limit = (data.len() - pos).min(MAX_MATCH);
            let mut cand = head[hash(&data[pos..])];
            let mut chain = 0usize;
            while cand != NONE && chain < MAX_CHAIN {
                chain += 1;
                let c = cand as usize;
                if pos - c > WINDOW {
                    // Chain positions are strictly decreasing, so every
                    // later candidate is farther away too.
                    break;
                }
                cand = prev[c];
                // A longer match than `best_len` must agree at index
                // `best_len`; checking that one byte first skips most
                // losing candidates without the full comparison.
                if best_len > 0 && data[c + best_len] != data[pos + best_len] {
                    continue;
                }
                let mut len = 0usize;
                while len < limit && data[c + len] == data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_offset = pos - c;
                    if best_len == limit {
                        // No candidate can beat a limit-length match.
                        break;
                    }
                }
            }
        }
        let insert = |p: usize, head: &mut [u32], prev: &mut [u32]| {
            if p + MIN_MATCH <= data.len() {
                let h = hash(&data[p..]);
                prev[p] = head[h];
                head[h] = p as u32;
            }
        };
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                offset: best_offset as u16,
                len: best_len as u8,
            });
            for p in pos..pos + best_len {
                insert(p, &mut head, &mut prev);
            }
            pos += best_len;
        } else {
            tokens.push(Token::Literal(data[pos]));
            insert(pos, &mut head, &mut prev);
            pos += 1;
        }
    }
    // Serialize tokens in flag-byte groups of eight.
    for group in tokens.chunks(8) {
        let mut flags = 0u8;
        for (i, token) in group.iter().enumerate() {
            if matches!(token, Token::Literal(_)) {
                flags |= 1 << i;
            }
        }
        out.push(flags);
        for token in group {
            match token {
                Token::Literal(b) => out.push(*b),
                Token::Match { offset, len } => {
                    let off = offset - 1; // 1..=4096 → 0..=4095
                    let l = u16::from(len - MIN_MATCH as u8); // 0..=15
                    let word = (off & 0x0FFF) | (l << 12);
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { offset: u16, len: u8 },
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`PackError::CorruptStream`] on truncated input, invalid
/// match references or length mismatches.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, PackError> {
    if data.len() < 4 {
        return Err(PackError::CorruptStream {
            reason: "missing length header".to_owned(),
        });
    }
    let expected = u32::from_le_bytes([data[0], data[1], data[2], data[3]]) as usize;
    // A match token is 2 payload bytes and expands to at most
    // MAX_MATCH output bytes, so no valid stream can produce more than
    // MAX_MATCH bytes per payload byte. Rejecting (and capping the
    // preallocation) here keeps a hostile length header from reserving
    // up to 4 GiB before the first token is read.
    let payload = data.len() - 4;
    if expected > payload.saturating_mul(MAX_MATCH) {
        return Err(PackError::CorruptStream {
            reason: format!("declared length {expected} exceeds {payload}-byte payload capacity"),
        });
    }
    let mut out = Vec::with_capacity(expected);
    let mut pos = 4usize;
    while out.len() < expected {
        let Some(&flags) = data.get(pos) else {
            return Err(PackError::CorruptStream {
                reason: "truncated flag byte".to_owned(),
            });
        };
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expected {
                break;
            }
            if (flags >> bit) & 1 == 1 {
                let Some(&b) = data.get(pos) else {
                    return Err(PackError::CorruptStream {
                        reason: "truncated literal".to_owned(),
                    });
                };
                out.push(b);
                pos += 1;
            } else {
                let (Some(&lo), Some(&hi)) = (data.get(pos), data.get(pos + 1)) else {
                    return Err(PackError::CorruptStream {
                        reason: "truncated match token".to_owned(),
                    });
                };
                pos += 2;
                let word = u16::from_le_bytes([lo, hi]);
                let offset = usize::from(word & 0x0FFF) + 1;
                let len = usize::from(word >> 12) + MIN_MATCH;
                if offset > out.len() {
                    return Err(PackError::CorruptStream {
                        reason: format!(
                            "match offset {offset} exceeds output position {}",
                            out.len()
                        ),
                    });
                }
                let start = out.len() - offset;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
    }
    if out.len() != expected {
        return Err(PackError::CorruptStream {
            reason: format!("expected {expected} bytes, produced {}", out.len()),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed).expect("decompress");
        assert_eq!(unpacked, data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"partial product lookup table ".repeat(100);
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 3,
            "{} vs {}",
            packed.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_survives() {
        // A xorshift byte stream: effectively random.
        let mut state = 0x1234_5678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state & 0xFF) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn overlapping_matches() {
        // RLE-style runs rely on self-overlapping copies.
        round_trip(&[7u8; 1000]);
        round_trip(b"abababababababababababab");
    }

    #[test]
    fn long_input_crossing_window() {
        let mut data = Vec::new();
        for i in 0..30_000usize {
            data.push((i % 251) as u8);
        }
        round_trip(&data);
    }

    /// The original (pre-optimization) greedy match finder: growable
    /// hash buckets scanned newest-first. Kept as a test oracle — the
    /// production compressor must emit byte-identical streams so that
    /// cached/packed sizes (Table 1) are unchanged by the speedup.
    fn reference_compress(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        let mut head: Vec<Vec<u32>> = vec![Vec::new(); 1 << 13];
        let hash = |bytes: &[u8]| -> usize {
            ((usize::from(bytes[0]) << 6) ^ (usize::from(bytes[1]) << 3) ^ usize::from(bytes[2]))
                & ((1 << 13) - 1)
        };
        let mut pos = 0usize;
        let mut tokens: Vec<Token> = Vec::new();
        while pos < data.len() {
            let mut best_len = 0usize;
            let mut best_offset = 0usize;
            if pos + MIN_MATCH <= data.len() {
                let bucket = &head[hash(&data[pos..])];
                for &cand in bucket.iter().rev().take(MAX_CHAIN) {
                    let cand = cand as usize;
                    if pos - cand > WINDOW {
                        continue;
                    }
                    let limit = (data.len() - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && data[cand + len] == data[pos + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_offset = pos - cand;
                        if len == MAX_MATCH {
                            break;
                        }
                    }
                }
            }
            if best_len >= MIN_MATCH {
                tokens.push(Token::Match {
                    offset: best_offset as u16,
                    len: best_len as u8,
                });
                for p in pos..pos + best_len {
                    if p + MIN_MATCH <= data.len() {
                        head[hash(&data[p..])].push(p as u32);
                    }
                }
                pos += best_len;
            } else {
                tokens.push(Token::Literal(data[pos]));
                if pos + MIN_MATCH <= data.len() {
                    head[hash(&data[pos..])].push(pos as u32);
                }
                pos += 1;
            }
        }
        for group in tokens.chunks(8) {
            let mut flags = 0u8;
            for (i, token) in group.iter().enumerate() {
                if matches!(token, Token::Literal(_)) {
                    flags |= 1 << i;
                }
            }
            out.push(flags);
            for token in group {
                match token {
                    Token::Literal(b) => out.push(*b),
                    Token::Match { offset, len } => {
                        let off = offset - 1;
                        let l = u16::from(len - MIN_MATCH as u8);
                        let word = (off & 0x0FFF) | (l << 12);
                        out.extend_from_slice(&word.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    #[test]
    fn fast_match_finder_is_byte_identical_to_reference() {
        // Mixed workloads: runs, periodic data, text, and xorshift
        // noise — every stream must match the oracle byte for byte.
        let mut cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabc".to_vec(),
            vec![0u8; 5000],
            b"let x = compress(data); ".repeat(400),
            (0..30_000usize).map(|i| (i % 251) as u8).collect(),
        ];
        let mut state = 0xDEAD_BEEFu32;
        cases.push(
            (0..20_000)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 17;
                    state ^= state << 5;
                    (state & 0xFF) as u8
                })
                .collect(),
        );
        for (i, data) in cases.iter().enumerate() {
            assert_eq!(
                compress(data),
                reference_compress(data),
                "case {i} diverged from the reference stream"
            );
        }
    }

    #[test]
    fn oversized_length_header_rejected_without_huge_prealloc() {
        // Claims u32::MAX bytes backed by a 1-byte payload.
        let mut bad = u32::MAX.to_le_bytes().to_vec();
        bad.push(0xFF);
        assert!(matches!(
            decompress(&bad),
            Err(PackError::CorruptStream { .. })
        ));
    }

    /// Timing probe for the X5 write-up: chained-hash finder vs. the
    /// reference bucket finder on a match-heavy corpus. Ignored by
    /// default (timing is environment-dependent); run with
    /// `cargo test -p ipd-pack --release -- --ignored --nocapture`.
    #[test]
    #[ignore = "timing probe, run manually"]
    fn match_finder_speed_probe() {
        let mut data = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        while data.len() < 256 * 1024 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Source-code-like mix: short repeated phrases + noise.
            data.extend_from_slice(b"let wire = circuit.wire(width); ");
            data.push((x >> 32) as u8);
        }
        let reps = 8u32;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(compress(&data));
        }
        let fast = t.elapsed() / reps;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(reference_compress(&data));
        }
        let reference = t.elapsed() / reps;
        println!(
            "match finder on {} kB: chained {fast:?}, reference {reference:?} ({:.1}x)",
            data.len() / 1024,
            reference.as_nanos() as f64 / fast.as_nanos().max(1) as f64
        );
        assert_eq!(compress(&data), reference_compress(&data));
    }

    #[test]
    fn corrupt_streams_rejected() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[1, 0, 0]).is_err());
        // Claim 100 bytes but provide nothing.
        assert!(decompress(&100u32.to_le_bytes()).is_err());
        // A match referencing before the start.
        let mut bad = Vec::new();
        bad.extend_from_slice(&10u32.to_le_bytes());
        bad.push(0); // all-match flags
        bad.extend_from_slice(&0u16.to_le_bytes()); // offset 1 at pos 0
        assert!(decompress(&bad).is_err());
    }
}
