//! # ipd-pack — archives, compression and applet bundles
//!
//! The paper delivers IP executables over the web and cares about
//! download size: JHDL's binaries are partitioned into small Jar
//! archives so an applet fetches only what it uses (their Table 1).
//! This crate is that packaging layer:
//!
//! - [`crc32`] — entry integrity checking.
//! - [`compress`] / [`decompress`] — an auditable LZSS dictionary
//!   coder standing in for Jar/DEFLATE.
//! - [`Archive`] — the named-entry container ("Jar file").
//! - [`Bundle`] / [`BundleSet`] — the partitioned code bundles; the
//!   contents are this workspace's real source modules, embedded at
//!   compile time, so the sizes track real code.
//! - [`PackedArchive`] / [`PackedBundle`] / [`PackedSet`] — the
//!   compress-once representations: each entry is compressed exactly
//!   once (in parallel with the `threads` feature), serialization
//!   concatenates cached segments, and subsets share `Arc` storage.
//! - [`shared_full_set`] / [`shared_applet_set`] — the process-wide
//!   packed cache the delivery hot paths consult.
//!
//! # Example
//!
//! ```
//! use ipd_pack::BundleSet;
//!
//! let set = BundleSet::jhdl_applet_set();
//! // The Table 1 shape: base bundle largest, applet bundle smallest.
//! let sizes: Vec<usize> = set.bundles().iter().map(|b| b.packed_size()).collect();
//! assert!(sizes[0] > sizes[3]);
//! println!("{set}"); // renders the Table 1 layout
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod archive;
mod bundle;
pub mod cache;
mod crc;
mod error;
mod lzss;
mod packed;

pub use archive::{Archive, Entry};
pub use bundle::{Bundle, BundleSet};
pub use cache::{default_threads, pack_passes, shared_applet_set, shared_full_set};
pub use crc::crc32;
pub use error::PackError;
pub use lzss::{compress, decompress};
pub use packed::{PackedArchive, PackedBundle, PackedEntry, PackedSet};
