//! Packaging errors.

use std::fmt;

/// Errors raised while packing or unpacking archives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PackError {
    /// A compressed stream or archive container was malformed.
    CorruptStream {
        /// Description of the corruption.
        reason: String,
    },
    /// An entry failed its CRC check after decompression.
    ChecksumMismatch {
        /// The entry name.
        entry: String,
    },
    /// A requested entry is not in the archive.
    MissingEntry {
        /// The entry name.
        entry: String,
    },
    /// An entry name was duplicated.
    DuplicateEntry {
        /// The entry name.
        entry: String,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::CorruptStream { reason } => write!(f, "corrupt stream: {reason}"),
            PackError::ChecksumMismatch { entry } => {
                write!(f, "checksum mismatch in entry {entry}")
            }
            PackError::MissingEntry { entry } => write!(f, "no entry named {entry}"),
            PackError::DuplicateEntry { entry } => {
                write!(f, "duplicate entry name {entry}")
            }
        }
    }
}

impl std::error::Error for PackError {}
