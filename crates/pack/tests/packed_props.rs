//! Property tests for the compress-once packed representations: the
//! cached-segment serialization must be byte-identical to the
//! compress-every-time path, sequential and parallel packing must
//! agree, and subsets must share storage.

use std::sync::Arc;

use ipd_pack::{Archive, BundleSet, PackedArchive, PackedSet};
use ipd_testutil::{check_n, XorShift64};

fn any_archive(rng: &mut XorShift64) -> Archive {
    let mut archive = Archive::new(format!("a{}", rng.below(1000)));
    for i in 0..rng.index(8) {
        // Mix compressible runs with noise so match-heavy and
        // literal-heavy streams are both exercised.
        let data = if rng.bool() {
            let unit_len = 1 + rng.index(24);
            let unit = rng.bytes(unit_len);
            let reps = 1 + rng.index(64);
            unit.repeat(reps)
        } else {
            let len = rng.index(4096);
            rng.bytes(len)
        };
        archive.add(format!("e{i}"), data).expect("unique names");
    }
    archive
}

#[test]
fn packed_serialization_is_byte_identical() {
    check_n("packed_identical", 48, |rng| {
        let archive = any_archive(rng);
        let packed = PackedArchive::from_archive(&archive);
        assert_eq!(packed.to_bytes(), archive.to_bytes());
        assert_eq!(packed.packed_size(), archive.packed_size());
        assert_eq!(packed.unpack().expect("round trip"), archive);
    });
}

#[test]
fn parallel_and_sequential_packing_agree() {
    check_n("parallel_agrees", 24, |rng| {
        let archive = any_archive(rng);
        let threads = 2 + rng.index(6);
        assert_eq!(
            PackedArchive::with_threads(&archive, threads).to_bytes(),
            PackedArchive::with_threads(&archive, 1).to_bytes(),
            "{threads} threads diverged from sequential"
        );
    });
}

#[test]
fn builtin_sets_pack_identically_under_parallelism() {
    let set = BundleSet::full_set();
    let seq = PackedSet::with_threads(&set, 1);
    let par = PackedSet::with_threads(&set, ipd_pack::default_threads().max(2));
    assert_eq!(seq.total_packed(), par.total_packed());
    for (a, b) in seq.bundles().iter().zip(par.bundles()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(
            a.wire_bytes().to_vec(),
            b.wire_bytes().to_vec(),
            "bundle {} bytes diverged",
            a.name()
        );
    }
    // And both match the pre-cache serialization path.
    for (bundle, packed) in set.bundles().iter().zip(par.bundles()) {
        assert_eq!(bundle.archive().to_bytes(), packed.wire_bytes().to_vec());
    }
}

#[test]
fn shared_cache_sizes_match_fresh_compression() {
    let shared = ipd_pack::shared_full_set();
    let fresh = BundleSet::full_set();
    for bundle in fresh.bundles() {
        let cached = shared.get(bundle.name()).expect("cached");
        assert_eq!(
            cached.packed_size(),
            bundle.packed_size(),
            "cache changed the Table 1 size of {}",
            bundle.name()
        );
    }
    assert_eq!(shared.total_packed(), fresh.total_packed());
}

#[test]
fn subsets_are_pointer_clones() {
    let shared = ipd_pack::shared_full_set();
    let sub = shared.subset(&["JHDLBase", "Netlist"]);
    assert_eq!(sub.bundles().len(), 2);
    for b in sub.bundles() {
        assert!(Arc::ptr_eq(b, shared.get(b.name()).expect("shared")));
    }
}
