//! Property tests over the archive container: arbitrary entry sets
//! round-trip, and arbitrary byte corruption is detected.
//!
//! Randomized with the in-repo deterministic RNG (`ipd-testutil`), so
//! the suite runs with zero registry dependencies.

use std::collections::BTreeMap;

use ipd_pack::{Archive, PackError};
use ipd_testutil::{check_n, XorShift64};

fn any_entry_name(rng: &mut XorShift64) -> String {
    let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_/.";
    let len = 1 + rng.index(32);
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

#[test]
fn arbitrary_archives_round_trip() {
    check_n("archives_round_trip", 64, |rng| {
        let mut entries: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.index(12) {
            let len = rng.index(2048);
            entries.insert(any_entry_name(rng), rng.bytes(len));
        }
        let name: String = (0..1 + rng.index(16))
            .map(|_| (b'a' + (rng.below(26) as u8)) as char)
            .collect();
        let mut archive = Archive::new(name.clone());
        for (entry_name, data) in &entries {
            archive
                .add(entry_name.clone(), data.clone())
                .expect("unique names");
        }
        let bytes = archive.to_bytes();
        let back = Archive::from_bytes(&bytes).expect("parse");
        assert_eq!(back.name(), name.as_str());
        assert_eq!(back.len(), entries.len());
        for (entry_name, data) in &entries {
            assert_eq!(back.entry(entry_name).expect("present").data(), &data[..]);
        }
    });
}

#[test]
fn parser_never_panics_on_garbage() {
    check_n("parser_never_panics", 64, |rng| {
        let len = rng.index(512);
        let bytes = rng.bytes(len);
        let _ = Archive::from_bytes(&bytes);
    });
}

#[test]
fn any_corruption_of_payload_bytes_is_detected() {
    check_n("corruption_detected", 64, |rng| {
        let len = 64 + rng.index(448);
        let data = rng.bytes(len);
        let mut archive = Archive::new("a");
        archive.add("entry", data).expect("add");
        let mut bytes = archive.to_bytes();
        // Only corrupt past the fixed header (magic + version).
        let start = 5;
        let idx = start + rng.index(bytes.len() - start);
        let bit = rng.below(8) as u8;
        bytes[idx] ^= 1 << bit;
        match Archive::from_bytes(&bytes) {
            // Either detected...
            Err(
                PackError::ChecksumMismatch { .. }
                | PackError::CorruptStream { .. }
                | PackError::DuplicateEntry { .. }
                | PackError::MissingEntry { .. },
            ) => {}
            // ...or the flip only touched the archive/entry *name*
            // fields, which CRC does not cover — contents must still
            // be intact.
            Ok(parsed) => {
                assert_eq!(parsed.len(), 1);
                assert_eq!(parsed.entries()[0].data(), archive.entries()[0].data());
            }
            Err(_) => {}
        }
    });
}
