//! Property tests over the archive container: arbitrary entry sets
//! round-trip, and arbitrary byte corruption is detected.

use proptest::prelude::*;

use ipd_pack::{Archive, PackError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_archives_round_trip(
        entries in proptest::collection::btree_map(
            "[a-zA-Z0-9_/.]{1,32}",
            proptest::collection::vec(any::<u8>(), 0..2048),
            0..12,
        ),
        name in "[a-zA-Z]{1,16}",
    ) {
        let mut archive = Archive::new(name.clone());
        for (entry_name, data) in &entries {
            archive.add(entry_name.clone(), data.clone()).expect("unique names");
        }
        let bytes = archive.to_bytes();
        let back = Archive::from_bytes(&bytes).expect("parse");
        prop_assert_eq!(back.name(), name.as_str());
        prop_assert_eq!(back.len(), entries.len());
        for (entry_name, data) in &entries {
            prop_assert_eq!(back.entry(entry_name).expect("present").data(), &data[..]);
        }
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Archive::from_bytes(&bytes);
    }

    #[test]
    fn any_corruption_of_payload_bytes_is_detected(
        data in proptest::collection::vec(any::<u8>(), 64..512),
        flip in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut archive = Archive::new("a");
        archive.add("entry", data).expect("add");
        let mut bytes = archive.to_bytes();
        // Only corrupt past the fixed header (magic + version).
        let start = 5;
        let idx = start + flip.index(bytes.len() - start);
        bytes[idx] ^= 1 << bit;
        match Archive::from_bytes(&bytes) {
            // Either detected...
            Err(PackError::ChecksumMismatch { .. } | PackError::CorruptStream { .. } |
                PackError::DuplicateEntry { .. } | PackError::MissingEntry { .. }) => {}
            // ...or the flip only touched the archive/entry *name*
            // fields, which CRC does not cover — contents must still
            // be intact.
            Ok(parsed) => {
                prop_assert_eq!(parsed.len(), 1);
                prop_assert_eq!(
                    parsed.entries()[0].data(),
                    archive.entries()[0].data()
                );
            }
            Err(_) => {}
        }
    }
}
