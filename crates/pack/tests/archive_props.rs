//! Property tests over the archive container: arbitrary entry sets
//! round-trip, and arbitrary byte corruption is detected.
//!
//! Randomized with the in-repo deterministic RNG (`ipd-testutil`), so
//! the suite runs with zero registry dependencies.

use std::collections::BTreeMap;

use ipd_pack::{Archive, PackError};
use ipd_testutil::{check_n, XorShift64};

fn any_entry_name(rng: &mut XorShift64) -> String {
    let alphabet = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_/.";
    let len = 1 + rng.index(32);
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())] as char)
        .collect()
}

#[test]
fn arbitrary_archives_round_trip() {
    check_n("archives_round_trip", 64, |rng| {
        let mut entries: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.index(12) {
            let len = rng.index(2048);
            entries.insert(any_entry_name(rng), rng.bytes(len));
        }
        let name: String = (0..1 + rng.index(16))
            .map(|_| (b'a' + (rng.below(26) as u8)) as char)
            .collect();
        let mut archive = Archive::new(name.clone());
        for (entry_name, data) in &entries {
            archive
                .add(entry_name.clone(), data.clone())
                .expect("unique names");
        }
        let bytes = archive.to_bytes();
        let back = Archive::from_bytes(&bytes).expect("parse");
        assert_eq!(back.name(), name.as_str());
        assert_eq!(back.len(), entries.len());
        for (entry_name, data) in &entries {
            assert_eq!(back.entry(entry_name).expect("present").data(), &data[..]);
        }
    });
}

#[test]
fn parser_never_panics_on_garbage() {
    check_n("parser_never_panics", 64, |rng| {
        let len = rng.index(512);
        let bytes = rng.bytes(len);
        let _ = Archive::from_bytes(&bytes);
    });
}

#[test]
fn any_truncation_is_rejected() {
    check_n("truncation_rejected", 64, |rng| {
        let mut archive = Archive::new("t");
        for i in 0..1 + rng.index(4) {
            let len = 32 + rng.index(256);
            archive
                .add(format!("entry{i}"), rng.bytes(len))
                .expect("unique names");
        }
        let bytes = archive.to_bytes();
        // Every strict prefix must fail to parse: the header promises
        // entries the remaining input cannot supply.
        let cut = rng.index(bytes.len());
        assert!(
            Archive::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes parsed",
            bytes.len()
        );
    });
}

#[test]
fn hostile_declared_sizes_are_rejected_cheaply() {
    check_n("hostile_sizes", 32, |rng| {
        let mut archive = Archive::new("t");
        let len = 64 + rng.index(128);
        archive.add("entry", rng.bytes(len)).unwrap();
        let bytes = archive.to_bytes();
        // The entry's raw-length field sits right after the container
        // header and the entry name: magic(4) + version(1) +
        // name-len(2) + name(1) + count(4) + entry-name-len(2) +
        // "entry"(5).
        let raw_len_at = 4 + 1 + 2 + 1 + 4 + 2 + 5;
        for hostile in [u32::MAX, u32::MAX / 2, 1 << 30] {
            // Oversized declared raw length: must error, not allocate.
            let mut oversized = bytes.clone();
            oversized[raw_len_at..raw_len_at + 4].copy_from_slice(&hostile.to_le_bytes());
            assert!(Archive::from_bytes(&oversized).is_err());

            // Oversized declared entry count.
            let count_at = 4 + 1 + 2 + 1;
            let mut many = bytes.clone();
            many[count_at..count_at + 4].copy_from_slice(&hostile.to_le_bytes());
            assert!(Archive::from_bytes(&many).is_err());

            // Oversized length header inside the compressed stream
            // itself (the first 4 payload bytes after crc/lengths).
            let stream_at = raw_len_at + 12;
            let mut stream = bytes.clone();
            stream[stream_at..stream_at + 4].copy_from_slice(&hostile.to_le_bytes());
            assert!(Archive::from_bytes(&stream).is_err());
        }
    });
}

#[test]
fn any_corruption_of_payload_bytes_is_detected() {
    check_n("corruption_detected", 64, |rng| {
        let len = 64 + rng.index(448);
        let data = rng.bytes(len);
        let mut archive = Archive::new("a");
        archive.add("entry", data).expect("add");
        let mut bytes = archive.to_bytes();
        // Only corrupt past the fixed header (magic + version).
        let start = 5;
        let idx = start + rng.index(bytes.len() - start);
        let bit = rng.below(8) as u8;
        bytes[idx] ^= 1 << bit;
        match Archive::from_bytes(&bytes) {
            // Either detected...
            Err(
                PackError::ChecksumMismatch { .. }
                | PackError::CorruptStream { .. }
                | PackError::DuplicateEntry { .. }
                | PackError::MissingEntry { .. },
            ) => {}
            // ...or the flip only touched the archive/entry *name*
            // fields, which CRC does not cover — contents must still
            // be intact.
            Ok(parsed) => {
                assert_eq!(parsed.len(), 1);
                assert_eq!(parsed.entries()[0].data(), archive.entries()[0].data());
            }
            Err(_) => {}
        }
    });
}
