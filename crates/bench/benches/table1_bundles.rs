//! Table 1 — "JAR Files Used By Constant Multiplier Applet".
//!
//! Measures bundle construction/compression cost and prints the
//! reproduced size table once. Run `repro --table1` for the standalone
//! table.

use ipd_bench::harness::{black_box, Harness};
use ipd_pack::BundleSet;

fn main() {
    // Print the reproduced table once, alongside the paper's numbers.
    let set = BundleSet::jhdl_applet_set();
    println!("\n=== Table 1 reproduction (paper: 346/293/140/16 kB, total 795 kB) ===");
    println!("{set}");

    let mut c = Harness::new();
    let mut group = c.benchmark_group("table1");
    group.bench_function("build_applet_bundle_set", |b| {
        b.iter(|| black_box(BundleSet::jhdl_applet_set()))
    });
    group.bench_function("pack_all_bundles", |b| {
        let set = BundleSet::jhdl_applet_set();
        b.iter(|| {
            let total: usize = set
                .bundles()
                .iter()
                .map(|bundle| bundle.archive().to_bytes().len())
                .sum();
            black_box(total)
        })
    });
    group.bench_function("unpack_base_bundle", |b| {
        let set = BundleSet::jhdl_applet_set();
        let bytes = set.get("JHDLBase").expect("base").archive().to_bytes();
        b.iter(|| black_box(ipd_pack::Archive::from_bytes(&bytes).expect("parse")))
    });
    group.finish();
}
