//! Table 1 — "JAR Files Used By Constant Multiplier Applet".
//!
//! Measures bundle construction/compression cost and prints the
//! reproduced size table once. Run `repro --table1` for the standalone
//! table.

use criterion::{criterion_group, criterion_main, Criterion};
use ipd_pack::BundleSet;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the reproduced table once, alongside the paper's numbers.
    let set = BundleSet::jhdl_applet_set();
    println!("\n=== Table 1 reproduction (paper: 346/293/140/16 kB, total 795 kB) ===");
    println!("{set}");

    let mut group = c.benchmark_group("table1");
    group.bench_function("build_applet_bundle_set", |b| {
        b.iter(|| black_box(BundleSet::jhdl_applet_set()))
    });
    group.bench_function("pack_all_bundles", |b| {
        let set = BundleSet::jhdl_applet_set();
        b.iter(|| {
            let total: usize = set
                .bundles()
                .iter()
                .map(|bundle| bundle.archive().to_bytes().len())
                .sum();
            black_box(total)
        })
    });
    group.bench_function("unpack_base_bundle", |b| {
        let set = BundleSet::jhdl_applet_set();
        let bytes = set.get("JHDLBase").expect("base").archive().to_bytes();
        b.iter(|| black_box(ipd_pack::Archive::from_bytes(&bytes).expect("parse")))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
