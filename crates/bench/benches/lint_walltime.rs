//! X6 — static-analysis cost: wall time for a full `ipd-lint` run over
//! the largest KCM in the simulator sweep, versus one 64-lane
//! batch-simulation pass on the same circuit. The lint gate sits on the
//! delivery path (`seal_design` refuses unwaived errors), so it must be
//! cheap next to the work a vendor already does per request; the
//! acceptance shape is lint ≤ one batch pass.

use ipd_bench::harness::{black_box, Harness, Throughput};
use ipd_bench::{full_width_kcm, sim_workloads};
use ipd_hdl::{Circuit, FlatNetlist, LogicVec, PortDir};
use ipd_lint::{lint, Linter};
use ipd_sim::{Simulator, SweepEngine, VectorSweep};

/// One full shard of the 64-lane batch engine: the unit of
/// simulation work lint is measured against.
const LANES: usize = 64;

/// Cycles per vector, matching the X4 sweep setup.
const SWEEP_CYCLES: u64 = 2;

/// 64 stimulus vectors driving the first data input.
fn lane_stimuli(circuit: &Circuit) -> Vec<Vec<(String, LogicVec)>> {
    let sim = Simulator::new(circuit).expect("compile");
    let (input, width) = sim
        .ports()
        .into_iter()
        .find(|(n, d, _)| *d == PortDir::Input && n != "clk")
        .map(|(n, _, w)| (n, w as usize))
        .expect("a data input");
    (0..LANES)
        .map(|k| {
            vec![(
                input.clone(),
                LogicVec::from_u64(k as u64 * 0x9e37 % (1 << width.min(63)), width),
            )]
        })
        .collect()
}

fn main() {
    // The largest KCM in the sim sweep (kcm_w16: full product width).
    let circuit =
        Circuit::from_generator(&full_width_kcm(-12345, 16, true)).expect("kcm elaborates");
    let prims = circuit.primitive_count();
    let flat = FlatNetlist::build(&circuit).expect("flattens");

    let mut c = Harness::new();
    let mut group = c.benchmark_group("lint_walltime");

    // The full vendor-side gate: flatten + every default pass.
    group.bench_function(format!("lint_full/kcm_w16_{prims}prims"), |b| {
        b.iter(|| black_box(lint(&circuit).expect("lint").summary()))
    });

    // Analysis only, flattening amortized — what re-linting after a
    // config/waiver edit costs.
    group.bench_function(format!("lint_passes_only/kcm_w16_{prims}prims"), |b| {
        let linter = Linter::new();
        b.iter(|| black_box(linter.run_flat(&flat).summary()))
    });

    // The yardstick: one 64-lane batch-simulation pass (a single full
    // shard, single-threaded) on the same circuit.
    group.throughput(Throughput::Elements(LANES as u64));
    group.bench_function(format!("batch_sim_64lane/kcm_w16_{prims}prims"), |b| {
        let stimuli = lane_stimuli(&circuit);
        let runner = VectorSweep::new(&circuit)
            .expect("compile")
            .engine(SweepEngine::Interpreted)
            .cycles(SWEEP_CYCLES)
            .threads(1);
        b.iter(|| black_box(runner.run(&stimuli).expect("run").total_vectors()))
    });
    group.finish();

    // Context: lint cost across the whole sim sweep, so the scaling
    // with primitive count is visible alongside X2/X4.
    let mut sweep = c.benchmark_group("lint_sweep");
    for (name, circuit) in sim_workloads() {
        let prims = circuit.primitive_count();
        sweep.bench_function(format!("{name}_{prims}prims"), |b| {
            b.iter(|| black_box(lint(&circuit).expect("lint").summary()))
        });
    }
    sweep.finish();
}
