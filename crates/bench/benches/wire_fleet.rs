//! X9: event-loop fleet throughput — thousands of multiplexed logical
//! sessions over few sockets (EXPERIMENTS X9).
//!
//! The thread-per-session transport tops out near its thread count:
//! X7 measured ~45 k req/s at 16 sessions, and 4096 threads is not a
//! deployable answer. This bench drives the readiness-driven event
//! loop with [`MuxClient`] fleets — `conns` sockets × `channels`
//! logical sessions each, every round issuing one pipelined
//! [`MuxClient::call_batch`] across all of a connection's channels —
//! and reports aggregate requests/second plus p50/p99 round-trip
//! latency per batch, against a 16-session thread-per-session
//! baseline measured the X7 way.
//!
//! Every fleet ends with an **exact** server-vs-client reconciliation:
//! the server's request/byte totals must equal the sum of the clients'
//! own counters, and its session ledger must match the fleet shape.
//!
//! `IPD_BENCH_FAST=1` shrinks request budgets and skips the largest
//! fleet (used by the CI smoke + perf-gate step). The run always
//! writes a flat JSON summary (`IPD_BENCH_OUT`, default
//! `BENCH_wire.json`) for `bench_gate` to compare against the
//! committed baseline.

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ipd_wire::{
    ClientConfig, MuxClient, Reply, ServerMode, WireClient, WireConfig, WireError, WireServer,
    WireService, WireSession,
};

const ENDPOINT: u16 = 0x7E;
const PAYLOAD: &[u8] = &[0xA5; 64];

struct EchoService;

struct EchoSession;

impl WireSession for EchoSession {
    fn handle(&mut self, _endpoint: u16, body: &[u8]) -> Result<Reply, WireError> {
        Ok(Reply::body(body.to_vec()))
    }
}

impl WireService for EchoService {
    fn open_session(
        &self,
        _peer: SocketAddr,
        _token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        Ok(Box::new(EchoSession))
    }

    fn endpoint_name(&self, _endpoint: u16) -> String {
        "bench.echo".to_owned()
    }
}

struct Run {
    label: String,
    sessions: usize,
    requests: u64,
    reqs_per_sec: f64,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The X7-style baseline: one socket and one thread per session.
fn run_threaded(sessions: usize, per_session: usize) -> Run {
    let server = WireServer::bind(WireConfig {
        mode: ServerMode::Threaded,
        max_sessions: sessions + 1,
        ..WireConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let stats = server.stats();
    let handle = server.start(Arc::new(EchoService));

    let start = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client =
                    WireClient::connect(addr, &ClientConfig::default()).expect("connect");
                let mut latencies = Vec::with_capacity(per_session);
                for _ in 0..per_session {
                    let sent = Instant::now();
                    let response = client.call(ENDPOINT, PAYLOAD).expect("echo");
                    latencies.push(sent.elapsed());
                    assert_eq!(response, PAYLOAD, "echo must round-trip");
                }
                let totals = client.stats().totals();
                client.close();
                (latencies, totals)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(sessions * per_session);
    let mut client_requests = 0u64;
    let mut client_bytes_in = 0u64;
    for worker in workers {
        let (lat, totals) = worker.join().expect("session thread");
        latencies.extend(lat);
        client_requests += totals.requests;
        client_bytes_in += totals.bytes_in;
    }
    let wall = start.elapsed();

    let totals = stats.totals();
    assert_eq!(totals.requests, client_requests, "every request counted");
    assert_eq!(totals.bytes_in, client_bytes_in, "request bytes reconcile");
    assert_eq!(stats.sessions_opened(), sessions as u64);
    handle.shutdown().expect("shutdown");

    latencies.sort_unstable();
    Run {
        label: format!("threaded_{sessions}"),
        sessions,
        requests: client_requests,
        reqs_per_sec: client_requests as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

/// An event-loop fleet: `conns` sockets, each multiplexing `channels`
/// logical sessions, each round one pipelined batch over them all.
fn run_evloop(conns: usize, channels: usize, rounds: usize) -> Run {
    let sessions = conns * channels;
    let server = WireServer::bind(WireConfig {
        mode: ServerMode::EventLoop,
        max_sessions: conns * (channels + 1),
        ..WireConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let stats = server.stats();
    let handle = server.start(Arc::new(EchoService));

    let start = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client =
                    MuxClient::connect(addr, &ClientConfig::default()).expect("connect");
                let opened: Vec<u32> = client
                    .open_many(channels, None, false)
                    .expect("open batch")
                    .into_iter()
                    .map(|c| c.expect("channel opens"))
                    .collect();
                let calls: Vec<(u32, u16, Vec<u8>)> = opened
                    .iter()
                    .map(|&ch| (ch, ENDPOINT, PAYLOAD.to_vec()))
                    .collect();
                let mut latencies = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let sent = Instant::now();
                    let answers = client.call_batch(&calls).expect("batch");
                    latencies.push(sent.elapsed());
                    for answer in answers {
                        assert_eq!(answer.expect("echo"), PAYLOAD, "echo must round-trip");
                    }
                }
                let totals = client.stats().totals();
                client.close();
                (latencies, totals)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(conns * rounds);
    let mut client_requests = 0u64;
    let mut client_bytes_in = 0u64;
    let mut client_bytes_out = 0u64;
    for worker in workers {
        let (lat, totals) = worker.join().expect("connection thread");
        latencies.extend(lat);
        client_requests += totals.requests;
        client_bytes_in += totals.bytes_in;
        client_bytes_out += totals.bytes_out;
    }
    let wall = start.elapsed();

    // Exact reconciliation: the server saw precisely what the clients
    // observed, and its ledger matches the fleet shape.
    let totals = stats.totals();
    assert_eq!(totals.requests, client_requests, "every request counted");
    assert_eq!(totals.bytes_in, client_bytes_in, "request bytes reconcile");
    assert_eq!(
        totals.bytes_out, client_bytes_out,
        "response bytes reconcile"
    );
    assert_eq!(totals.errors, 0, "no errors under a clean fleet");
    assert_eq!(
        stats.sessions_opened(),
        (conns + sessions) as u64,
        "one hello session per socket plus every channel"
    );
    handle.shutdown().expect("shutdown");

    latencies.sort_unstable();
    Run {
        label: format!("evloop_{sessions}"),
        sessions,
        requests: client_requests,
        reqs_per_sec: client_requests as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn write_json(runs: &[Run]) {
    let path = std::env::var("IPD_BENCH_OUT").unwrap_or_else(|_| "BENCH_wire.json".to_owned());
    let mut out = String::from("{\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{label}_rps\": {rps:.1},\n  \"{label}_p99_us\": {p99}{comma}\n",
            label = run.label,
            rps = run.reqs_per_sec,
            p99 = run.p99.as_micros(),
        ));
    }
    out.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create bench JSON");
    file.write_all(out.as_bytes()).expect("write bench JSON");
    println!("wrote {path}");
}

fn main() {
    let fast = std::env::var_os("IPD_BENCH_FAST").is_some();

    // (connections, channels per connection, batch rounds)
    let fleets: &[(usize, usize, usize)] = if fast {
        &[(8, 32, 6), (16, 64, 6)]
    } else {
        &[(8, 32, 32), (16, 64, 16), (32, 128, 8)]
    };
    let per_session = if fast { 200 } else { 2_000 };

    let mut runs = vec![run_threaded(16, per_session)];
    for &(conns, channels, rounds) in fleets {
        runs.push(run_evloop(conns, channels, rounds));
    }

    println!("=== X9: event-loop fleet throughput (echo, 64 B payload) ===");
    println!(
        "mode                     : {}",
        if fast { "fast" } else { "full" }
    );
    println!(
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "fleet", "sessions", "requests", "req/s", "p50", "p99"
    );
    for run in &runs {
        println!(
            "{:<14} {:>9} {:>10} {:>12.0} {:>12} {:>12}",
            run.label,
            run.sessions,
            run.requests,
            run.reqs_per_sec,
            format!("{:?}", run.p50),
            format!("{:?}", run.p99),
        );
    }
    println!("(threaded latency is per request; evloop latency is per pipelined batch)");

    write_json(&runs);

    // The headline claim, asserted only under full measurement runs:
    // 1024 multiplexed sessions must beat the 16-thread ceiling by 2x.
    if !fast {
        let threaded = runs
            .iter()
            .find(|r| r.label == "threaded_16")
            .expect("baseline run");
        let evloop = runs
            .iter()
            .find(|r| r.label == "evloop_1024")
            .expect("1024-session fleet");
        assert!(
            evloop.reqs_per_sec >= 2.0 * threaded.reqs_per_sec,
            "evloop_1024 ({:.0} req/s) must be at least 2x threaded_16 ({:.0} req/s)",
            evloop.reqs_per_sec,
            threaded.reqs_per_sec
        );
        println!(
            "speedup at 1024 sessions : {:.1}x over the 16-thread baseline",
            evloop.reqs_per_sec / threaded.reqs_per_sec
        );
    }
}
