//! X3 — netlister throughput: generating EDIF/VHDL/Verilog text at the
//! sizes an applet displays in its netlist window.

use ipd_bench::full_width_kcm;
use ipd_bench::harness::{black_box, Harness, Throughput};
use ipd_hdl::Circuit;
use ipd_netlist::NetlistFormat;

fn main() {
    let mut c = Harness::new();
    let mut group = c.benchmark_group("netlist_gen");
    for width in [8u32, 16, 32] {
        let circuit = Circuit::from_generator(&full_width_kcm(-12345, width, true)).expect("kcm");
        let prims = circuit.primitive_count();
        for format in NetlistFormat::all() {
            let bytes = format.generate(&circuit).expect("generate").len();
            group.throughput(Throughput::Bytes(bytes as u64));
            group.bench_function(format!("{format}/w{width}_{prims}prims"), |b| {
                b.iter(|| black_box(format.generate(&circuit).expect("generate")))
            });
        }
    }
    group.finish();
}
