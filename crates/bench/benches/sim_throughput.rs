//! X2 — simulator scalability: cycles per second across circuit sizes,
//! supporting the paper's claim that in-browser simulation of
//! realistic IP is practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipd_bench::sim_workloads;
use ipd_sim::Simulator;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for (name, circuit) in sim_workloads() {
        let prims = circuit.primitive_count();
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(
            BenchmarkId::new("cycles_x100", format!("{name}_{prims}prims")),
            &circuit,
            |b, circuit| {
                let mut sim = Simulator::new(circuit).expect("compile");
                // Drive the first data input if present.
                let input = sim
                    .ports()
                    .into_iter()
                    .find(|(n, d, _)| {
                        *d == ipd_hdl::PortDir::Input && n != "clk"
                    })
                    .map(|(n, _, w)| (n, w));
                if let Some((name, width)) = &input {
                    sim.set(name, ipd_hdl::LogicVec::from_u64(1, *width as usize))
                        .expect("set");
                }
                b.iter(|| {
                    sim.cycle(100).expect("cycle");
                    black_box(sim.cycle_count())
                })
            },
        );
    }
    group.finish();

    let mut compile = c.benchmark_group("sim_compile");
    for (name, circuit) in sim_workloads() {
        compile.bench_with_input(BenchmarkId::from_parameter(&name), &circuit, |b, circuit| {
            b.iter(|| black_box(Simulator::new(circuit).expect("compile")))
        });
    }
    compile.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
