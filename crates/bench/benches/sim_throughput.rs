//! X2 — simulator scalability: cycles per second across circuit sizes,
//! supporting the paper's claim that in-browser simulation of
//! realistic IP is practical; plus X4 — vectors per second for the
//! scalar engine versus the bit-parallel batch engine on a
//! 256-vector verification sweep.

use ipd_bench::harness::{black_box, Harness, Throughput};
use ipd_bench::sim_workloads;
use ipd_hdl::{LogicVec, PortDir};
use ipd_sim::{Simulator, SweepEngine, VectorSweep};

/// Vectors per sweep in the scalar-vs-batch comparison (4 full
/// 64-lane shards).
const SWEEP_VECTORS: usize = 256;

/// Clock cycles per vector (covers the pipelined workloads' latency).
const SWEEP_CYCLES: u64 = 2;

/// The stimulus set: one value of the first data input per vector.
fn sweep_stimuli(circuit: &ipd_hdl::Circuit) -> Option<Vec<Vec<(String, LogicVec)>>> {
    let sim = Simulator::new(circuit).expect("compile");
    let (input, width) = sim
        .ports()
        .into_iter()
        .find(|(n, d, _)| *d == PortDir::Input && n != "clk")
        .map(|(n, _, w)| (n, w as usize))?;
    Some(
        (0..SWEEP_VECTORS)
            .map(|k| {
                vec![(
                    input.clone(),
                    LogicVec::from_u64(k as u64 * 0x9e37 % (1 << width.min(63)), width),
                )]
            })
            .collect(),
    )
}

fn main() {
    let mut c = Harness::new();
    let mut group = c.benchmark_group("sim_throughput");
    for (name, circuit) in sim_workloads() {
        let prims = circuit.primitive_count();
        group.throughput(Throughput::Elements(100));
        group.bench_function(format!("cycles_x100/{name}_{prims}prims"), |b| {
            let mut sim = Simulator::new(&circuit).expect("compile");
            // Drive the first data input if present.
            let input = sim
                .ports()
                .into_iter()
                .find(|(n, d, _)| *d == ipd_hdl::PortDir::Input && n != "clk")
                .map(|(n, _, w)| (n, w));
            if let Some((name, width)) = &input {
                sim.set(name, ipd_hdl::LogicVec::from_u64(1, *width as usize))
                    .expect("set");
            }
            b.iter(|| {
                sim.cycle(100).expect("cycle");
                black_box(sim.cycle_count())
            })
        });
    }
    group.finish();

    let mut compile = c.benchmark_group("sim_compile");
    for (name, circuit) in sim_workloads() {
        compile.bench_function(&name, |b| {
            b.iter(|| black_box(Simulator::new(&circuit).expect("compile")))
        });
    }
    compile.finish();

    // X4: a 256-vector verification sweep, scalar one-vector-at-a-time
    // versus the 64-lane batch engine (single-threaded for the pure
    // bit-parallel speedup, then multi-threaded shards on top).
    let mut sweep = c.benchmark_group("vector_sweep");
    for (name, circuit) in sim_workloads() {
        let Some(stimuli) = sweep_stimuli(&circuit) else {
            continue;
        };
        sweep.throughput(Throughput::Elements(SWEEP_VECTORS as u64));
        sweep.bench_function(format!("scalar/{name}"), |b| {
            let mut sim = Simulator::new(&circuit).expect("compile");
            let out_ports: Vec<String> = sim
                .ports()
                .into_iter()
                .filter(|(_, d, _)| *d == PortDir::Output)
                .map(|(n, _, _)| n)
                .collect();
            b.iter(|| {
                for stim in &stimuli {
                    sim.reset();
                    for (port, value) in stim {
                        sim.set(port, value.clone()).expect("set");
                    }
                    sim.cycle(SWEEP_CYCLES).expect("cycle");
                    for port in &out_ports {
                        black_box(sim.peek(port).expect("peek"));
                    }
                }
            })
        });
        // X4 measures the interpreted batch engine; the compiled
        // engine has its own suite (X10, sim_fleet.rs).
        sweep.bench_function(format!("batch_1thread/{name}"), |b| {
            let runner = VectorSweep::new(&circuit)
                .expect("compile")
                .engine(SweepEngine::Interpreted)
                .cycles(SWEEP_CYCLES)
                .threads(1);
            b.iter(|| black_box(runner.run(&stimuli).expect("run").total_vectors()))
        });
        sweep.bench_function(format!("batch_threaded/{name}"), |b| {
            let runner = VectorSweep::new(&circuit)
                .expect("compile")
                .engine(SweepEngine::Interpreted)
                .cycles(SWEEP_CYCLES);
            b.iter(|| black_box(runner.run(&stimuli).expect("run").total_vectors()))
        });
    }
    sweep.finish();
}
