//! X10: compiled-engine sweep throughput — scalar vs interpreted
//! batch vs compiled bytecode vs compiled + work stealing
//! (EXPERIMENTS X10).
//!
//! X4 established the 64-lane interpreted batch engine's bit-parallel
//! speedup over the scalar simulator. This bench measures the next
//! rung: the compiled bytecode engine (256-lane planes, struct-of-
//! arrays program, no per-node indirection) on the same 1024-vector
//! verification sweeps over the two hardest X4 workloads, single-
//! threaded for the pure engine speedup and then with the
//! work-stealing scheduler across all cores. All figures are
//! lane-normalized vectors per second, X4-style: wall clock over the
//! whole sweep divided into the vector count, so wider planes only
//! win by actually finishing sooner.
//!
//! `IPD_BENCH_FAST=1` shrinks the sweep and repeat counts and skips
//! the headline speedup assertion (used by the CI smoke + perf-gate
//! step). The run always writes a flat JSON summary (`IPD_BENCH_OUT`,
//! default `BENCH_sim.json`) with `*_vps` keys for `bench_gate` to
//! compare against the committed baseline.

use std::io::Write as _;
use std::time::Instant;

use ipd_bench::sim_workloads;
use ipd_hdl::{Circuit, LogicVec, PortDir};
use ipd_sim::{Simulator, SweepEngine, VectorSweep};

/// Clock cycles per vector (covers the pipelined workloads' latency).
const SWEEP_CYCLES: u64 = 2;

/// The X10 workloads: the largest FIR and the full-width KCM from the
/// X4 sweep.
const WORKLOADS: &[&str] = &["fir_t16", "kcm_w16"];

struct Run {
    label: String,
    vectors: usize,
    vectors_per_sec: f64,
}

/// One value of the first data input per vector, spread over the
/// input range.
fn sweep_stimuli(circuit: &Circuit, vectors: usize) -> Vec<Vec<(String, LogicVec)>> {
    let sim = Simulator::new(circuit).expect("compile");
    let (input, width) = sim
        .ports()
        .into_iter()
        .find(|(n, d, _)| *d == PortDir::Input && n != "clk")
        .map(|(n, _, w)| (n, w as usize))
        .expect("a data input");
    (0..vectors)
        .map(|k| {
            vec![(
                input.clone(),
                LogicVec::from_u64(k as u64 * 0x9e37 % (1 << width.min(63)), width),
            )]
        })
        .collect()
}

/// Times `repeats` full passes of `body` (after one warmup pass) and
/// reports lane-normalized vectors per second.
fn measure<F: FnMut() -> usize>(label: &str, repeats: usize, mut body: F) -> Run {
    let vectors = body();
    let start = Instant::now();
    let mut total = 0usize;
    for _ in 0..repeats {
        total += body();
    }
    let wall = start.elapsed();
    Run {
        label: label.to_owned(),
        vectors,
        vectors_per_sec: total as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn bench_workload(name: &str, circuit: &Circuit, vectors: usize, repeats: usize) -> Vec<Run> {
    let stimuli = sweep_stimuli(circuit, vectors);
    let mut runs = Vec::new();

    let mut scalar = Simulator::new(circuit).expect("compile");
    let out_ports: Vec<String> = scalar
        .ports()
        .into_iter()
        .filter(|(_, d, _)| *d == PortDir::Output)
        .map(|(n, _, _)| n)
        .collect();
    runs.push(measure(&format!("{name}_scalar"), repeats, || {
        for stim in &stimuli {
            scalar.reset();
            for (port, value) in stim {
                scalar.set(port, value.clone()).expect("set");
            }
            scalar.cycle(SWEEP_CYCLES).expect("cycle");
            for port in &out_ports {
                std::hint::black_box(scalar.peek(port).expect("peek"));
            }
        }
        stimuli.len()
    }));

    let interpreted = VectorSweep::new(circuit)
        .expect("compile")
        .engine(SweepEngine::Interpreted)
        .cycles(SWEEP_CYCLES)
        .threads(1);
    runs.push(measure(&format!("{name}_batch_1t"), repeats, || {
        interpreted.run(&stimuli).expect("run").total_vectors()
    }));

    let compiled = VectorSweep::new(circuit)
        .expect("compile")
        .cycles(SWEEP_CYCLES)
        .threads(1);
    runs.push(measure(&format!("{name}_compiled_1t"), repeats, || {
        compiled.run(&stimuli).expect("run").total_vectors()
    }));

    let stealing = VectorSweep::new(circuit)
        .expect("compile")
        .cycles(SWEEP_CYCLES);
    runs.push(measure(&format!("{name}_compiled_steal"), repeats, || {
        stealing.run(&stimuli).expect("run").total_vectors()
    }));

    // The engines must agree before any number is worth reporting.
    let fast = compiled.run(&stimuli).expect("run");
    let slow = interpreted.run(&stimuli).expect("run");
    assert_eq!(fast.outputs, slow.outputs, "engines diverge on {name}");

    runs
}

fn write_json(runs: &[Run]) {
    let path = std::env::var("IPD_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_owned());
    let mut out = String::from("{\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{label}_vps\": {vps:.1}{comma}\n",
            label = run.label,
            vps = run.vectors_per_sec,
        ));
    }
    out.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create bench JSON");
    file.write_all(out.as_bytes()).expect("write bench JSON");
    println!("wrote {path}");
}

fn lookup(runs: &[Run], label: &str) -> f64 {
    runs.iter()
        .find(|r| r.label == label)
        .map(|r| r.vectors_per_sec)
        .expect("measured run")
}

fn main() {
    let fast = std::env::var_os("IPD_BENCH_FAST").is_some();
    let vectors = if fast { 256 } else { 1024 };
    let repeats = if fast { 2 } else { 10 };

    let mut runs = Vec::new();
    for (name, circuit) in sim_workloads() {
        if WORKLOADS.contains(&name.as_str()) {
            runs.extend(bench_workload(&name, &circuit, vectors, repeats));
        }
    }

    println!("=== X10: compiled-engine sweep throughput ({SWEEP_CYCLES} cycles/vector) ===");
    println!(
        "mode                     : {}",
        if fast { "fast" } else { "full" }
    );
    println!("{:<26} {:>9} {:>14}", "run", "vectors", "vectors/s");
    for run in &runs {
        println!(
            "{:<26} {:>9} {:>14.0}",
            run.label, run.vectors, run.vectors_per_sec
        );
    }

    write_json(&runs);

    // The headline claim, asserted only under full measurement runs:
    // the compiled engine must beat the interpreted batch engine by 3x
    // on fir_t16, single-threaded and lane-normalized.
    if !fast {
        let batch = lookup(&runs, "fir_t16_batch_1t");
        let compiled = lookup(&runs, "fir_t16_compiled_1t");
        assert!(
            compiled >= 3.0 * batch,
            "compiled engine ({compiled:.0} vec/s) must be at least 3x \
             the interpreted batch engine ({batch:.0} vec/s) on fir_t16"
        );
        println!(
            "speedup on fir_t16       : {:.1}x compiled over interpreted (1 thread)",
            compiled / batch
        );
    }
}
