//! Delivery throughput — compress-once, serve-many (EXPERIMENTS X5).
//!
//! Four regimes, coldest to warmest:
//!
//! 1. cold sequential packing (compress every bundle on one thread),
//! 2. cold parallel packing (same work fanned across threads),
//! 3. warm serving from the content-addressed [`BundleStore`]
//!    (serialization is an `Arc` clone of cached segments),
//! 4. conditional revalidation (client holds every digest; the server
//!    answers with not-modified markers only).
//!
//! Prints an explicit cold-vs-warm speedup so the X5 acceptance bar
//! (warm ≥ 5× cold) is checkable from the bench output alone.

use std::time::Instant;

use ipd_bench::harness::{black_box, Harness, Throughput};
use ipd_core::AppletServer;
use ipd_pack::{BundleSet, PackedSet};

fn main() {
    let set = BundleSet::full_set();
    let wire_bytes: u64 = set
        .bundles()
        .iter()
        .map(|b| b.archive().to_bytes().len() as u64)
        .sum();
    let threads = ipd_pack::default_threads().max(2);

    let mut server = AppletServer::new("byu", b"bench-key".to_vec());
    server.enroll("acme", "kcm", ipd_core::CapabilitySet::licensed(), 0, 365);
    // Prime the store once so the warm benchmarks measure serving, not
    // the first compression.
    let warm = server.fetch("acme", 1, &[]).expect("prime");
    let held: Vec<_> = warm.items().iter().map(|i| *i.digest()).collect();

    let mut c = Harness::new();
    let mut group = c.benchmark_group("delivery");
    group.throughput(Throughput::Bytes(wire_bytes));
    group.bench_function("cold_pack_sequential", |b| {
        b.iter(|| black_box(PackedSet::with_threads(&set, 1).total_packed()))
    });
    group.bench_function(format!("cold_pack_parallel_{threads}t"), |b| {
        b.iter(|| black_box(PackedSet::with_threads(&set, threads).total_packed()))
    });
    group.bench_function("warm_store_fetch", |b| {
        b.iter(|| {
            let response = server.fetch("acme", 1, &[]).expect("warm fetch");
            black_box(response.bytes_transferred())
        })
    });
    group.bench_function("conditional_fetch_all_304", |b| {
        b.iter(|| {
            let response = server.fetch("acme", 1, &held).expect("revalidate");
            black_box(response.not_modified())
        })
    });
    group.finish();

    // Direct cold-vs-warm comparison over identical served bytes.
    let reps = 10u32;
    let cold_start = Instant::now();
    for _ in 0..reps {
        black_box(PackedSet::with_threads(&set, 1).total_packed());
    }
    let cold = cold_start.elapsed() / reps;
    let warm_start = Instant::now();
    for _ in 0..reps {
        black_box(
            server
                .fetch("acme", 1, &[])
                .expect("warm")
                .bytes_transferred(),
        );
    }
    let warm = warm_start.elapsed() / reps;
    let speedup = cold.as_nanos() as f64 / warm.as_nanos().max(1) as f64;
    println!("\n=== X5: compress-once delivery ===");
    println!("bundle set wire size     : {wire_bytes} bytes");
    println!("cold pack (1 thread)     : {cold:?}/set");
    println!("warm store fetch         : {warm:?}/set");
    println!("warm-vs-cold speedup     : {speedup:.0}x (acceptance: >= 5x)");
    println!("{}", server.store().stats());
}
