//! Figure 4 — black-box co-simulation, and the applet-local versus
//! remote-simulation comparison behind the paper's latency claim.
//!
//! Measures (a) the protocol cost in-process, (b) real localhost TCP
//! round trips, and (c) prints the modeled RTT sweep once (the full
//! sweep with real injected latency lives in `repro --fig4`).

use std::time::Duration;

use ipd_bench::harness::{black_box, Harness};
use ipd_bench::{fig4_rtts, fig4_scenario, paper_kcm_circuit};
use ipd_cosim::{
    measure_local_event_cost, Approach, BlackBoxClient, BlackBoxServer, InProcTransport,
    LocalSimModel, SimModel,
};
use ipd_hdl::LogicVec;

fn main() {
    let circuit = paper_kcm_circuit();

    // Print the modeled sweep once.
    let local_cost = measure_local_event_cost(&circuit, 2_000).expect("measure");
    println!("\n=== Figure 4 reproduction: simulation architectures vs RTT ===");
    println!("local event cost: {local_cost:?}");
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "rtt", "applet cyc/s", "web-cad cyc/s", "javacad cyc/s"
    );
    for rtt in fig4_rtts() {
        let s = fig4_scenario(rtt, local_cost);
        println!(
            "{:>6}ms {:>16.1} {:>16.1} {:>16.1}",
            rtt.as_millis(),
            s.throughput(Approach::AppletLocal),
            s.throughput(Approach::WebCadRemote),
            s.throughput(Approach::JavaCadRmi),
        );
    }

    let mut c = Harness::new();
    let mut group = c.benchmark_group("fig4_cosim");
    group.bench_function("local_simulator_event", |b| {
        let mut model = LocalSimModel::new(&circuit).expect("model");
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & 0xFF;
            model
                .set("multiplicand", LogicVec::from_u64(x, 8))
                .expect("set");
            model.cycle(1).expect("cycle");
            black_box(model.get("product").expect("get"))
        })
    });
    group.bench_function("in_proc_protocol_event", |b| {
        let model = LocalSimModel::new(&circuit).expect("model");
        let mut client = BlackBoxClient::over(InProcTransport::new(model));
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & 0xFF;
            client
                .set("multiplicand", LogicVec::from_u64(x, 8))
                .expect("set");
            client.cycle(1).expect("cycle");
            black_box(client.get("product").expect("get"))
        })
    });
    group.bench_function("tcp_loopback_event", |b| {
        let mut host = ipd_core::AppletHost::new();
        host.grant_network_permission();
        let server = BlackBoxServer::bind(&host).expect("bind");
        let addr = server.addr();
        let _thread = server.spawn(LocalSimModel::new(&circuit).expect("model"));
        let mut client = BlackBoxClient::connect(addr).expect("connect");
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & 0xFF;
            client
                .set("multiplicand", LogicVec::from_u64(x, 8))
                .expect("set");
            client.cycle(1).expect("cycle");
            black_box(client.get("product").expect("get"))
        })
    });
    group.finish();

    // One spot check with genuinely injected latency (small, so the
    // bench stays fast): the applet approach must beat it.
    let model = LocalSimModel::new(&circuit).expect("model");
    let mut slow = BlackBoxClient::over(ipd_cosim::LatencyTransport::new(
        InProcTransport::new(model),
        Duration::from_millis(2),
    ));
    let start = std::time::Instant::now();
    for i in 0..20u64 {
        slow.set("multiplicand", LogicVec::from_u64(i & 0xFF, 8))
            .expect("set");
        slow.cycle(1).expect("cycle");
        let _ = slow.get("product").expect("get");
    }
    let remote_60_events = start.elapsed();
    println!(
        "spot check: 60 events over a 2 ms-RTT link took {remote_60_events:?} \
         (applet-local equivalent: {:?})",
        local_cost * 60
    );
}
