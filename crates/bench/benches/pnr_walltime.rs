//! X12 — place-and-route cost: wall time for the full physical flow
//! (pinned placement → congestion-negotiated routing → routed STA) on
//! the pipelined kcm_w16, against one full `ipd-lint` suite run on the
//! same circuit. The physical gate rides the delivery path next to
//! lint and STA, so routing must stay in interactive territory.
//!
//! `IPD_BENCH_FAST=1` shrinks repeat counts (CI smoke). The run always
//! writes a flat JSON summary (`IPD_BENCH_OUT`, default
//! `BENCH_pnr.json`) with `*_pps` (passes/s) keys for `bench_gate` to
//! compare against the committed baseline.

use std::io::Write as _;
use std::time::Instant;

use ipd_bench::full_width_kcm;
use ipd_estimate::{
    estimate_timing_flat, place_and_route, route, PlacementStrategy, PnrConfig, TimingConstraints,
};
use ipd_hdl::{Circuit, FlatNetlist};
use ipd_lint::lint;
use ipd_modgen::FirFilter;

struct Run {
    label: String,
    passes_per_sec: f64,
}

/// Times `repeats` passes of `body` after one warmup pass.
fn measure<F: FnMut()>(label: &str, repeats: usize, mut body: F) -> Run {
    body();
    let start = Instant::now();
    for _ in 0..repeats {
        body();
    }
    let wall = start.elapsed();
    println!(
        "{label:<28} {repeats} pass(es) in {:>8.2?} ({:.2} passes/s)",
        wall,
        repeats as f64 / wall.as_secs_f64().max(1e-9)
    );
    Run {
        label: label.to_owned(),
        passes_per_sec: repeats as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn constraints_150mhz() -> TimingConstraints {
    let mut t = TimingConstraints::new();
    t.clock("clk", 1000.0 / 150.0, "clk");
    t.output_delay("clk", 0.0, "product");
    t
}

fn write_json(runs: &[Run], extras: &[(String, f64)]) {
    let path = std::env::var("IPD_BENCH_OUT").unwrap_or_else(|_| "BENCH_pnr.json".to_owned());
    let mut entries: Vec<(String, f64)> = runs
        .iter()
        .map(|r| (format!("{}_pps", r.label), r.passes_per_sec))
        .collect();
    entries.extend(extras.iter().cloned());
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("  \"{key}\": {value:.2}{comma}\n"));
    }
    out.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create bench JSON");
    file.write_all(out.as_bytes()).expect("write bench JSON");
    println!("wrote {path}");
}

/// The X12 three-way comparison: hand layout vs. annealed vs. the
/// unplaced heuristic, on *routed* timing where a placement exists.
/// Returns informational `*_ns` keys for the JSON (never gated).
fn routed_comparison() -> Vec<(String, f64)> {
    let fir_coeffs: Vec<i64> = (0..16i64).map(|i| (i % 7) - 3).collect();
    let designs = [
        (
            "kcm_w16",
            Circuit::from_generator(&full_width_kcm(-12345, 16, true).pipelined(true))
                .expect("kcm elaborates"),
        ),
        (
            "fir_t16",
            Circuit::from_generator(&FirFilter::new(fir_coeffs, 8).expect("fir params"))
                .expect("fir elaborates"),
        ),
    ];
    let mut extras = Vec::new();
    println!("\nrouted-timing comparison (critical path, ns):");
    println!(
        "{:<10} {:>10} {:>10} {:>10}  router",
        "design", "hand", "annealed", "unplaced"
    );
    for (name, circuit) in designs {
        let hand = place_and_route(&circuit, &PnrConfig::virtex()).expect("hand pnr");
        let mut anneal_cfg = PnrConfig::virtex();
        anneal_cfg.strategy = PlacementStrategy::Anneal;
        let anneal = place_and_route(&circuit, &anneal_cfg).expect("annealed pnr");
        let flat = FlatNetlist::build(&circuit).expect("flatten");
        let unplaced = estimate_timing_flat(&flat, &PnrConfig::virtex().model).expect("unplaced");

        let hand_ns = hand.timing().expect("hand timing").critical_path_ns;
        let anneal_ns = anneal.timing().expect("annealed timing").critical_path_ns;
        println!(
            "{name:<10} {hand_ns:>10.3} {anneal_ns:>10.3} {:>10.3}  {}",
            unplaced.critical_path_ns, hand.routing.stats
        );
        println!("{:<43} {}", "", anneal.routing.stats);
        extras.push((format!("{name}_hand_routed_ns"), hand_ns));
        extras.push((format!("{name}_anneal_routed_ns"), anneal_ns));
        extras.push((
            format!("{name}_unplaced_heuristic_ns"),
            unplaced.critical_path_ns,
        ));
    }
    extras
}

fn main() {
    let fast = std::env::var_os("IPD_BENCH_FAST").is_some();
    let repeats = if fast { 2 } else { 10 };

    let circuit = Circuit::from_generator(&full_width_kcm(-12345, 16, true).pipelined(true))
        .expect("kcm elaborates");
    let config = PnrConfig::virtex();

    // Shared fixtures for the split stages.
    let phys = place_and_route(&circuit, &config).expect("pnr");
    assert!(
        phys.routing.stats.converged,
        "kcm_w16 must route cleanly: {}",
        phys.routing.stats
    );
    let placed_flat = FlatNetlist::build(phys.circuit()).expect("flatten");

    let mut runs = Vec::new();

    // The full physical flow: pinned placement, routing, routed STA.
    runs.push(measure("pnr_full", repeats, || {
        let phys = place_and_route(&circuit, &config).expect("pnr");
        let report = phys.analyze(&constraints_150mhz()).expect("routed sta");
        assert_eq!(report.violations(), 0, "kcm_w16 closes 150 MHz routed");
    }));

    // Routing only, placement amortized.
    runs.push(measure("route_only", repeats, || {
        let routing = route(&placed_flat, &config.model, &config.router).expect("route");
        assert!(routing.stats.converged);
        std::hint::black_box(routing.stats.total_wirelength);
    }));

    // Routed STA only, placement and routing amortized.
    runs.push(measure("routed_sta", repeats, || {
        let report = phys.analyze(&constraints_150mhz()).expect("routed sta");
        std::hint::black_box(report.summary());
    }));

    // The yardstick: one full lint-suite run on the same circuit.
    runs.push(measure("lint_full", repeats, || {
        std::hint::black_box(lint(&circuit).expect("lint").summary());
    }));

    let extras = routed_comparison();
    write_json(&runs, &extras);
}
