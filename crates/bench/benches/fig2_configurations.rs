//! Figure 2 — "Two configurations of an IP delivery executable".
//!
//! Benchmarks assembling the passive and licensed executables and
//! loading them into a fresh applet host, printing the configuration
//! comparison once.

use ipd_bench::harness::{black_box, Harness};
use ipd_core::{AppletHost, CapabilitySet, IpExecutable};

fn main() {
    let passive = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::passive());
    let licensed = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::licensed());
    println!("\n=== Figure 2 reproduction: two executable configurations ===");
    println!("{passive}");
    println!("{licensed}");
    println!(
        "passive: {} caps, {} kB | licensed: {} caps, {} kB",
        passive.capabilities().len(),
        passive.download_size().div_ceil(1024),
        licensed.capabilities().len(),
        licensed.download_size().div_ceil(1024),
    );

    let mut c = Harness::new();
    let mut group = c.benchmark_group("fig2");
    group.bench_function("assemble_passive_executable", |b| {
        b.iter(|| {
            let exe = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
            black_box(exe.download_size())
        })
    });
    group.bench_function("assemble_licensed_executable", |b| {
        b.iter(|| {
            let exe = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
            black_box(exe.download_size())
        })
    });
    group.bench_function("cold_host_load_licensed", |b| {
        let exe = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        b.iter(|| {
            let mut host = AppletHost::new();
            black_box(host.load(&exe))
        })
    });
    group.finish();
}
