//! Wire transport throughput — request rate and tail latency under
//! concurrent sessions (EXPERIMENTS X7).
//!
//! A minimal echo service isolates the cost of the shared `ipd-wire`
//! layer itself: framing, envelopes, per-endpoint stats, the session
//! threads. Fleets of 1, 4 and 16 concurrent clients each issue a
//! fixed request count over loopback; the bench reports aggregate
//! requests/second plus p50/p99 per-request latency, and asserts the
//! server's byte counters reconcile against what the clients sent.
//!
//! `IPD_BENCH_FAST=1` shrinks the per-session request budget (used by
//! the CI smoke step).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ipd_wire::{
    ClientConfig, Reply, WireClient, WireConfig, WireError, WireServer, WireService, WireSession,
};

const ENDPOINT: u16 = 0x7E;
const PAYLOAD: &[u8] = &[0xA5; 64];

struct EchoService;

struct EchoSession;

impl WireSession for EchoSession {
    fn handle(&mut self, _endpoint: u16, body: &[u8]) -> Result<Reply, WireError> {
        Ok(Reply::body(body.to_vec()))
    }
}

impl WireService for EchoService {
    fn open_session(
        &self,
        _peer: SocketAddr,
        _token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        Ok(Box::new(EchoSession))
    }

    fn endpoint_name(&self, _endpoint: u16) -> String {
        "bench.echo".to_owned()
    }
}

struct Run {
    sessions: usize,
    reqs_per_sec: f64,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_fleet(addr: SocketAddr, sessions: usize, per_session: usize) -> Run {
    let start = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client =
                    WireClient::connect(addr, &ClientConfig::default()).expect("connect");
                let mut latencies = Vec::with_capacity(per_session);
                for _ in 0..per_session {
                    let sent = Instant::now();
                    let response = client.call(ENDPOINT, PAYLOAD).expect("echo");
                    latencies.push(sent.elapsed());
                    assert_eq!(response, PAYLOAD, "echo must round-trip");
                }
                client.close();
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(sessions * per_session);
    for worker in workers {
        latencies.extend(worker.join().expect("session thread"));
    }
    let wall = start.elapsed();
    latencies.sort_unstable();
    Run {
        sessions,
        reqs_per_sec: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn main() {
    let fast = std::env::var_os("IPD_BENCH_FAST").is_some();
    let per_session = if fast { 200 } else { 2_000 };

    let server = WireServer::bind(WireConfig {
        max_sessions: 32,
        ..WireConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let stats = server.stats();
    let handle = server.start(Arc::new(EchoService));

    let runs: Vec<Run> = [1usize, 4, 16]
        .into_iter()
        .map(|sessions| run_fleet(addr, sessions, per_session))
        .collect();

    println!("=== X7: wire transport throughput (echo, 64 B payload) ===");
    println!(
        "requests per session     : {per_session}{}",
        if fast { " (fast mode)" } else { "" }
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "sessions", "req/s", "p50", "p99"
    );
    for run in &runs {
        println!(
            "{:<10} {:>12.0} {:>12} {:>12}",
            run.sessions,
            run.reqs_per_sec,
            format!("{:?}", run.p50),
            format!("{:?}", run.p99),
        );
    }

    // The stats contract under load: every request and byte the
    // clients sent is accounted for, symmetrically.
    let expected_requests = (21 * per_session) as u64;
    let totals = stats.endpoint(ENDPOINT);
    assert_eq!(totals.requests, expected_requests, "every request counted");
    assert_eq!(
        totals.bytes_in,
        expected_requests * PAYLOAD.len() as u64,
        "request bytes reconcile"
    );
    assert_eq!(
        totals.bytes_out, totals.bytes_in,
        "echo responses mirror requests"
    );
    assert_eq!(stats.sessions_opened(), 21, "1 + 4 + 16 sessions");
    println!(
        "stats reconcile          : {} requests, {} B in == {} B out, 21 sessions",
        totals.requests, totals.bytes_in, totals.bytes_out
    );

    handle.shutdown().expect("shutdown");
}
