//! X8 — timing-analysis cost: wall time for a full constraint-evaluated
//! STA run over the pipelined kcm_w16, versus one full `ipd-lint` suite
//! run on the same circuit. The timing gate rides the lint gate on the
//! delivery path, so STA must stay in the same cost class; the
//! acceptance shape is STA ≤ 3× lint. Also measured: an incremental
//! re-analysis after a single constraint edit, which must repropagate
//! only the edited cone (≥ 5× cheaper than a cold analysis).

use ipd_bench::full_width_kcm;
use ipd_bench::harness::{black_box, Harness};
use ipd_estimate::{analyze_timing, Sta, TimingConstraints};
use ipd_hdl::{Circuit, FlatNetlist};
use ipd_lint::lint;
use ipd_techlib::DelayModel;

/// The 150 MHz scheme the KCM applet story closes with pipelining.
fn constraints(input_delay_ns: f64) -> TimingConstraints {
    let mut t = TimingConstraints::new();
    t.clock("clk", 1000.0 / 150.0, "clk");
    t.output_delay("clk", 0.0, "product");
    t.input_delay("clk", input_delay_ns, "multiplicand");
    t
}

fn main() {
    let circuit = Circuit::from_generator(&full_width_kcm(-12345, 16, true).pipelined(true))
        .expect("kcm elaborates");
    let prims = circuit.primitive_count();
    let flat = FlatNetlist::build(&circuit).expect("flattens");
    let model = DelayModel::virtex();

    let mut c = Harness::new();
    let mut group = c.benchmark_group("sta_walltime");

    // The full vendor-side timing gate: flatten + graph build + analyze.
    group.bench_function(format!("sta_full/kcm_w16_pipe_{prims}prims"), |b| {
        b.iter(|| {
            black_box(
                analyze_timing(&circuit, &constraints(0.0))
                    .expect("sta")
                    .summary(),
            )
        })
    });

    // Analysis only, graph amortized — what serving one slack summary
    // from an already-built session costs.
    group.bench_function(format!("sta_analyze_only/kcm_w16_pipe_{prims}prims"), |b| {
        let mut sta = Sta::build(&flat, &model).expect("build");
        b.iter(|| black_box(sta.analyze(&constraints(0.0)).summary()))
    });

    // Incremental: one constraint value edited since the last run, so
    // only the edited seed's cone repropagates.
    group.bench_function(format!("sta_reanalyze/kcm_w16_pipe_{prims}prims"), |b| {
        let mut sta = Sta::build(&flat, &model).expect("build");
        sta.analyze(&constraints(0.0));
        let mut flip = 0u32;
        b.iter(|| {
            flip ^= 1;
            black_box(sta.reanalyze(&constraints(f64::from(flip) * 0.5)).summary())
        })
    });

    // The yardstick: one full lint-suite run on the same circuit.
    group.bench_function(format!("lint_full/kcm_w16_pipe_{prims}prims"), |b| {
        b.iter(|| black_box(lint(&circuit).expect("lint").summary()))
    });
    group.finish();
}
