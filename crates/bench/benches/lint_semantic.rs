//! X13 — semantic-lint cost: wall time for the SAT-backed semantic
//! tier (`Linter::with_oracle`) over the largest KCM in the simulator
//! sweep, versus the structural tier on the same circuit. The semantic
//! tier runs a constant/equality/never-X oracle query per candidate on
//! top of everything the structural tier does, so it cannot be free —
//! the X13 acceptance shape is semantic ≤ 25× structural on kcm_w16.
//!
//! Measured figures, in lint passes per second. Both tiers measure a
//! full `run(&circuit)` — flatten included, exactly the X6
//! `lint_full` methodology and exactly what `ipd-lint` executes:
//!
//! * `lint_structural` — the default structural pass suite on kcm_w16.
//! * `lint_semantic` — the semantic tier on the same circuit:
//!   structural re-derivation, SAT confirmation of every dead/constant
//!   claim, dual-rail never-X refinement, redundant-logic and
//!   unreachable-state mining.
//! * `zoo_semantic` — the semantic tier across all ten example-zoo
//!   designs (the CI semantic gate's workload).
//!
//! `IPD_BENCH_FAST=1` shrinks repeat counts and skips the 25×
//! assertion (CI smoke). The run always writes a flat JSON summary
//! (`IPD_BENCH_OUT`, default `BENCH_lint.json`) with `*_pps` keys for
//! `bench_gate` to compare against the committed baseline.

use std::io::Write as _;
use std::time::Instant;

use ipd_bench::full_width_kcm;
use ipd_hdl::Circuit;
use ipd_lint::{LintConfig, Linter, OracleOptions};

struct Run {
    label: String,
    passes: usize,
    passes_per_sec: f64,
}

/// Times `repeats` passes of `body` (after one warmup pass); `body`
/// returns the number of lint passes it performed.
fn measure<F: FnMut() -> usize>(label: &str, repeats: usize, mut body: F) -> Run {
    let passes = body();
    let start = Instant::now();
    let mut total = 0usize;
    for _ in 0..repeats {
        total += body();
    }
    let wall = start.elapsed();
    Run {
        label: label.to_owned(),
        passes,
        passes_per_sec: total as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn write_json(runs: &[Run]) {
    let path = std::env::var("IPD_BENCH_OUT").unwrap_or_else(|_| "BENCH_lint.json".to_owned());
    let mut out = String::from("{\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{label}_pps\": {pps:.2}{comma}\n",
            label = run.label,
            pps = run.passes_per_sec,
        ));
    }
    out.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create bench JSON");
    file.write_all(out.as_bytes()).expect("write bench JSON");
    println!("wrote {path}");
}

fn main() {
    let fast = std::env::var_os("IPD_BENCH_FAST").is_some();
    let repeats = if fast { 2 } else { 10 };

    let kcm_w16 =
        Circuit::from_generator(&full_width_kcm(-12345, 16, true)).expect("kcm elaborates");
    let prims = kcm_w16.primitive_count();

    let zoo = ipd_modgen::example_zoo();

    let structural = Linter::new();
    let semantic = Linter::with_oracle(LintConfig::new(), OracleOptions::default());

    let mut runs = Vec::new();

    runs.push(measure("lint_structural", repeats, || {
        let report = structural.run(&kcm_w16).expect("structural lint runs");
        assert!(report.is_clean(), "kcm_w16 must stay clean:\n{report}");
        1
    }));

    runs.push(measure("lint_semantic", repeats, || {
        let report = semantic.run(&kcm_w16).expect("semantic lint runs");
        assert!(report.is_clean(), "kcm_w16 must stay clean:\n{report}");
        1
    }));

    runs.push(measure("zoo_semantic", repeats, || {
        for (name, circuit) in &zoo {
            let report = semantic.run(circuit).expect("semantic lint runs");
            assert!(report.is_clean(), "{name} must stay clean:\n{report}");
        }
        zoo.len()
    }));

    println!("=== X13: semantic-lint walltime ===");
    println!(
        "mode                     : {}",
        if fast { "fast" } else { "full" }
    );
    println!("workload                 : kcm_w16 ({prims} primitives)");
    println!("{:<26} {:>7} {:>14}", "run", "passes", "passes/s");
    for run in &runs {
        println!(
            "{:<26} {:>7} {:>14.2}",
            run.label, run.passes, run.passes_per_sec
        );
    }

    let structural_wall = 1.0 / runs[0].passes_per_sec.max(1e-9);
    let semantic_wall = 1.0 / runs[1].passes_per_sec.max(1e-9);
    let ratio = semantic_wall / structural_wall.max(1e-12);
    println!("semantic vs structural   : {ratio:.1}x");

    write_json(&runs);

    // The X13 acceptance claim, asserted only under full measurement
    // runs: the semantic tier on kcm_w16 costs at most 25× the
    // structural tier on the same netlist.
    if !fast {
        assert!(
            ratio <= 25.0,
            "kcm_w16 semantic lint ({:.2} ms) must stay within 25x the \
             structural tier ({:.2} ms), got {ratio:.1}x",
            semantic_wall * 1e3,
            structural_wall * 1e3,
        );
    }
}
