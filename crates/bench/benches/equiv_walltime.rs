//! X11 — formal-equivalence cost: wall time for full `check_equiv`
//! proofs (AIG lowering + fraig sweep + SAT miters + replay oracle)
//! against the yardstick of one 64-lane batch-simulation pass over the
//! same design (EXPERIMENTS X11).
//!
//! Measured figures, all in checks per second:
//!
//! * `kcm_w16_selfequiv` — the full-width 16-bit KCM proved equivalent
//!   to its own EDIF round-trip. The acceptance shape is wall time
//!   within 25× of one 64-lane batch-sim pass over the same netlist —
//!   a *proof over all 2^16 input values* must cost no more than a few
//!   random simulation passes.
//! * `zoo_sweep` — all ten example-zoo designs proved equivalent to
//!   their EDIF round-trips (the CI equivalence gate's workload).
//! * `mutation_detect` — latency to *refute* a single LUT INIT bit
//!   flip in the paper KCM, counterexample replay included.
//!
//! `IPD_BENCH_FAST=1` shrinks repeat counts and skips the 25×
//! assertion (CI smoke). The run always writes a flat JSON summary
//! (`IPD_BENCH_OUT`, default `BENCH_equiv.json`) with `*_cps` keys for
//! `bench_gate` to compare against the committed baseline.

use std::io::Write as _;
use std::time::Instant;

use ipd_bench::sim_workloads;
use ipd_hdl::{Circuit, FlatKind, FlatNetlist, PortDir};
use ipd_sim::BatchSimulator;
use ipd_verify::{check_equiv, EquivConfig, EquivVerdict};

struct Run {
    label: String,
    checks: usize,
    checks_per_sec: f64,
}

/// Times `repeats` passes of `body` (after one warmup pass); `body`
/// returns the number of equivalence checks it performed.
fn measure<F: FnMut() -> usize>(label: &str, repeats: usize, mut body: F) -> Run {
    let checks = body();
    let start = Instant::now();
    let mut total = 0usize;
    for _ in 0..repeats {
        total += body();
    }
    let wall = start.elapsed();
    Run {
        label: label.to_owned(),
        checks,
        checks_per_sec: total as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Flattens a circuit and its EDIF round-trip — the golden/revised
/// pair every fixture-gated delivery check proves.
fn round_trip_pair(circuit: &Circuit) -> (FlatNetlist, FlatNetlist) {
    let golden = FlatNetlist::build(circuit).expect("flattens");
    let edif = ipd_netlist::NetlistFormat::Edif
        .generate(circuit)
        .expect("netlists");
    let reread = ipd_netlist::read_edif(&edif).expect("rereads");
    let revised = FlatNetlist::build(&reread).expect("round trip flattens");
    (golden, revised)
}

/// One 64-lane batch-simulation pass: drive 64 random vectors into
/// every non-clock input and observe every output bit once.
fn batch_pass_64(flat: &FlatNetlist, clock: Option<&str>) -> usize {
    let mut sim = BatchSimulator::from_flat(flat, clock, 64).expect("sim");
    let inputs: Vec<(String, usize)> = flat
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Input && Some(p.name.as_str()) != clock)
        .map(|p| (p.name.clone(), p.nets.len()))
        .collect();
    let outputs: Vec<String> = flat
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Output)
        .map(|p| p.name.clone())
        .collect();
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    for lane in 0..64 {
        for (name, width) in &inputs {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mask = if *width >= 64 {
                u64::MAX
            } else {
                (1u64 << *width) - 1
            };
            sim.set_u64_lane(name, lane, seed & mask).expect("set");
        }
    }
    if clock.is_some() {
        sim.cycle(1).expect("cycle");
    }
    let mut observed = 0usize;
    for lane in 0..64 {
        for name in &outputs {
            std::hint::black_box(sim.peek_lane(name, lane).expect("peek"));
            observed += 1;
        }
    }
    observed
}

/// The paper KCM with one LUT truth-table bit flipped.
fn mutated(flat: &FlatNetlist) -> FlatNetlist {
    let mut out = flat.clone();
    let leaf = out
        .leaves_mut()
        .iter_mut()
        .find_map(|l| match &mut l.kind {
            FlatKind::Primitive(p) if p.name.starts_with("lut") && p.init.is_some() => Some(p),
            _ => None,
        })
        .expect("kcm has LUTs");
    *leaf.init.as_mut().expect("INIT") ^= 1;
    out
}

fn write_json(runs: &[Run]) {
    let path = std::env::var("IPD_BENCH_OUT").unwrap_or_else(|_| "BENCH_equiv.json".to_owned());
    let mut out = String::from("{\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{label}_cps\": {cps:.2}{comma}\n",
            label = run.label,
            cps = run.checks_per_sec,
        ));
    }
    out.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create bench JSON");
    file.write_all(out.as_bytes()).expect("write bench JSON");
    println!("wrote {path}");
}

fn main() {
    let fast = std::env::var_os("IPD_BENCH_FAST").is_some();
    let repeats = if fast { 2 } else { 10 };
    let cfg = EquivConfig::default();

    let kcm_w16 = sim_workloads()
        .into_iter()
        .find(|(name, _)| name == "kcm_w16")
        .map(|(_, c)| c)
        .expect("kcm_w16 workload");
    let (kcm_golden, kcm_revised) = round_trip_pair(&kcm_w16);

    let zoo: Vec<(FlatNetlist, FlatNetlist)> = ipd_modgen::example_zoo()
        .iter()
        .map(|(_, c)| round_trip_pair(c))
        .collect();

    let paper_kcm = ipd_bench::paper_kcm_circuit();
    let paper_flat = FlatNetlist::build(&paper_kcm).expect("paper kcm flattens");
    let paper_mutant = mutated(&paper_flat);

    let mut runs = Vec::new();

    runs.push(measure("kcm_w16_selfequiv", repeats, || {
        let report = check_equiv(&kcm_golden, &kcm_revised, &cfg).expect("check");
        assert!(report.is_equivalent(), "kcm_w16 round trip diverged");
        1
    }));

    runs.push(measure("zoo_sweep", repeats, || {
        for (golden, revised) in &zoo {
            let report = check_equiv(golden, revised, &cfg).expect("check");
            assert!(report.is_equivalent(), "zoo round trip diverged");
        }
        zoo.len()
    }));

    runs.push(measure("mutation_detect", repeats, || {
        let report = check_equiv(&paper_flat, &paper_mutant, &cfg).expect("check");
        assert!(
            matches!(report.verdict, EquivVerdict::NotEquivalent(_)),
            "mutant escaped"
        );
        1
    }));

    // The yardstick: one 64-lane batch-simulation pass over kcm_w16.
    let batch = measure("kcm_w16_batch64_pass", repeats, || {
        std::hint::black_box(batch_pass_64(&kcm_golden, None));
        1
    });

    println!("=== X11: formal-equivalence walltime ===");
    println!(
        "mode                     : {}",
        if fast { "fast" } else { "full" }
    );
    println!("{:<26} {:>7} {:>14}", "run", "checks", "checks/s");
    for run in runs.iter().chain([&batch]) {
        println!(
            "{:<26} {:>7} {:>14.2}",
            run.label, run.checks, run.checks_per_sec
        );
    }

    let proof_wall = 1.0 / runs[0].checks_per_sec.max(1e-9);
    let pass_wall = 1.0 / batch.checks_per_sec.max(1e-9);
    let ratio = proof_wall / pass_wall.max(1e-12);
    println!("proof vs 64-lane pass    : {ratio:.1}x");

    write_json(&runs);

    // The X11 acceptance claim, asserted only under full measurement
    // runs: a complete kcm_w16 equivalence proof costs at most 25× one
    // 64-lane batch-simulation pass.
    if !fast {
        assert!(
            ratio <= 25.0,
            "kcm_w16 equivalence proof ({:.2} ms) must stay within 25x one \
             64-lane batch pass ({:.2} ms), got {ratio:.1}x",
            proof_wall * 1e3,
            pass_wall * 1e3,
        );
    }
}
