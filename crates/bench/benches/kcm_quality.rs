//! X1 — the KCM quality evaluation from the authors' FPL 2001 paper
//! (their reference [9]), which supplies the numbers the applet's
//! estimate panel displays: constant-coefficient multipliers beat
//! general multipliers in area and delay, with the margin growing
//! with width.
//!
//! Benchmarks generator elaboration time and prints the area/timing
//! comparison table once (also available via `repro --kcm`).

use ipd_bench::harness::{black_box, Harness};
use ipd_bench::{baseline_multiplier, full_width_kcm, kcm_quality_widths, quality_constant};
use ipd_estimate::{estimate_area, estimate_timing};
use ipd_hdl::Circuit;

fn main() {
    println!("\n=== KCM vs array multiplier (shape target: ~2x area advantage) ===");
    println!(
        "{:>5} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
        "width", "kcm LUTs", "mult LUTs", "ratio", "kcm ns", "mult ns", "ratio"
    );
    for width in kcm_quality_widths() {
        let kcm = Circuit::from_generator(&full_width_kcm(quality_constant(width), width, false))
            .expect("kcm");
        let mult = Circuit::from_generator(&baseline_multiplier(width)).expect("mult");
        let (ka, ma) = (
            estimate_area(&kcm).expect("kcm area"),
            estimate_area(&mult).expect("mult area"),
        );
        let (kt, mt) = (
            estimate_timing(&kcm).expect("kcm timing"),
            estimate_timing(&mult).expect("mult timing"),
        );
        // Count carries as half a LUT-equivalent (they pack beside
        // LUTs in the slice) for a fair total.
        let k_cost = f64::from(ka.total.luts) + f64::from(ka.total.carries) * 0.5;
        let m_cost = f64::from(ma.total.luts) + f64::from(ma.total.carries) * 0.5;
        println!(
            "{width:>5} {k_cost:>10.1} {m_cost:>10.1} {:>8.2} | {:>10.2} {:>10.2} {:>8.2}",
            m_cost / k_cost,
            kt.critical_path_ns,
            mt.critical_path_ns,
            mt.critical_path_ns / kt.critical_path_ns,
        );
    }

    let mut c = Harness::new();
    let mut group = c.benchmark_group("kcm_quality_elaboration");
    for width in [8u32, 16, 32] {
        group.bench_function(format!("kcm/{width}"), |b| {
            b.iter(|| {
                black_box(
                    Circuit::from_generator(&full_width_kcm(quality_constant(width), width, false))
                        .expect("kcm"),
                )
            })
        });
        group.bench_function(format!("array_mult/{width}"), |b| {
            b.iter(|| {
                black_box(Circuit::from_generator(&baseline_multiplier(width)).expect("mult"))
            })
        });
    }
    group.finish();
}
