//! Figures 1 & 3 — the interactive applet flow: build, estimate, view,
//! simulate, netlist. Benchmarks each button of the KCM applet, since
//! in-browser responsiveness is the paper's usability argument.

use ipd_bench::harness::{black_box, Harness};
use ipd_bench::{paper_kcm, paper_kcm_circuit};
use ipd_core::{AppletHost, AppletSession, CapabilitySet, IpExecutable};
use ipd_hdl::Circuit;
use ipd_netlist::NetlistFormat;

fn main() {
    let mut c = Harness::new();
    let mut group = c.benchmark_group("fig3_applet");

    group.bench_function("build_button", |b| {
        b.iter(|| black_box(Circuit::from_generator(&paper_kcm()).expect("build")))
    });

    let circuit = paper_kcm_circuit();
    group.bench_function("estimate_panel", |b| {
        b.iter(|| {
            let area = ipd_estimate::estimate_area(&circuit).expect("area");
            let timing = ipd_estimate::estimate_timing(&circuit).expect("timing");
            black_box((area.total.luts, timing.critical_path_ns))
        })
    });
    group.bench_function("schematic_view", |b| {
        b.iter(|| black_box(ipd_viewer::schematic_text(&circuit, circuit.root())))
    });
    group.bench_function("layout_view", |b| {
        b.iter(|| black_box(ipd_viewer::layout_grid(&circuit).expect("layout")))
    });
    group.bench_function("netlist_button_edif", |b| {
        b.iter(|| black_box(ipd_netlist::edif_string(&circuit).expect("edif")))
    });

    group.bench_function("full_session_end_to_end", |b| {
        let exe = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let host = AppletHost::new();
        b.iter(|| {
            let mut session = AppletSession::new(&exe, &host, Box::new(paper_kcm()));
            session.build().expect("build");
            session.set_i64("multiplicand", -56).expect("set");
            session.cycle(2).expect("cycle");
            let product = session.peek("product").expect("peek");
            let netlist = session.netlist(NetlistFormat::Edif).expect("netlist");
            black_box((product, netlist.len()))
        })
    });
    group.finish();
}
