//! CI perf-regression gate for the fleet benches (X9 wire, X10 sim).
//!
//! Compares fresh bench JSON (written by `wire_fleet` /
//! `sim_fleet`) against the committed baselines and exits nonzero
//! when any throughput figure regresses by more than the allowed
//! fraction (default 30%). Only throughput keys gate — `*_rps`
//! (requests/s), `*_vps` (vectors/s), `*_cps` (equivalence checks/s)
//! and `*_pps` (place-and-route passes/s); latency figures
//! (`*_p99_us`) are reported but too noisy on shared CI runners to
//! fail a build on.
//!
//! Usage (repeat `--suite` for each baseline/current pair):
//!
//! ```text
//! bench_gate --suite crates/bench/baselines/wire_fleet.json:BENCH_wire.json \
//!            --suite crates/bench/baselines/sim_fleet.json:BENCH_sim.json \
//!            [--max-regress 0.30]
//! ```
//!
//! The JSON involved is the flat `{"key": number, ...}` shape the
//! benches emit; the parser below handles exactly that (no nesting,
//! no strings) so the gate needs no dependencies.

use std::process::ExitCode;

/// Key suffixes that gate the build (throughput: higher is better) —
/// requests/s, vectors/s, equivalence checks/s, place-and-route
/// passes/s.
const GATED_SUFFIXES: &[&str] = &["_rps", "_vps", "_cps", "_pps"];

/// Key suffixes shown for information only.
const INFO_SUFFIXES: &[&str] = &["_p99_us"];

/// Parses a flat `{"key": number, ...}` document.
fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut pairs = Vec::new();
    let mut rest = text.trim();
    rest = rest
        .strip_prefix('{')
        .ok_or("expected a JSON object")?
        .trim_end();
    rest = rest.strip_suffix('}').ok_or("unterminated object")?;
    for entry in rest.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed entry: {entry}"))?;
        let key = key.trim().trim_matches('"').to_owned();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key}: {e}"))?;
        pairs.push((key, value));
    }
    Ok(pairs)
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn lookup(pairs: &[(String, f64)], key: &str) -> Option<f64> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn has_suffix(key: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|s| key.ends_with(s))
}

/// Gates one baseline/current pair; returns false on any regression
/// or missing metric.
fn gate_suite(baseline_path: &str, current_path: &str, max_regress: f64) -> Result<bool, String> {
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;

    let mut ok = true;
    println!("suite: {baseline_path} vs {current_path}");
    println!(
        "{:<26} {:>12} {:>12} {:>9}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for (key, base) in baseline
        .iter()
        .filter(|(k, _)| has_suffix(k, GATED_SUFFIXES))
    {
        let Some(now) = lookup(&current, key) else {
            println!("{key:<26} {base:>12.0} {:>12} {:>9}  MISSING", "-", "-");
            ok = false;
            continue;
        };
        let delta = (now - base) / base;
        let floor = base * (1.0 - max_regress);
        let verdict = if now >= floor { "ok" } else { "REGRESSED" };
        if now < floor {
            ok = false;
        }
        println!(
            "{key:<26} {base:>12.0} {now:>12.0} {delta:>+8.1}%  {verdict}",
            delta = delta * 100.0
        );
    }
    for (key, base) in baseline
        .iter()
        .filter(|(k, _)| has_suffix(k, INFO_SUFFIXES))
    {
        let now = lookup(&current, key);
        let shown = now.map_or("-".to_owned(), |v| format!("{v:.0}"));
        println!("{key:<26} {base:>12.0} {shown:>12} {:>9}  info", "-");
    }
    Ok(ok)
}

fn run() -> Result<bool, String> {
    let mut suites: Vec<(String, String)> = Vec::new();
    let mut max_regress = 0.30f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--suite" => {
                let pair = value("--suite")?;
                let (baseline, current) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("--suite wants baseline:current, got {pair}"))?;
                suites.push((baseline.to_owned(), current.to_owned()));
            }
            "--max-regress" => {
                max_regress = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("bad --max-regress: {e}"))?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if suites.is_empty() {
        return Err("at least one --suite baseline:current is required".into());
    }

    let mut ok = true;
    for (baseline, current) in &suites {
        ok &= gate_suite(baseline, current, max_regress)?;
        println!();
    }
    if ok {
        println!(
            "gate: pass (allowed regression {:.0}%)",
            max_regress * 100.0
        );
    } else {
        println!(
            "gate: FAIL — throughput regressed more than {:.0}% (or a metric is missing)",
            max_regress * 100.0
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
