//! `repro` — regenerates every table and figure of the paper as text.
//!
//! Usage:
//!
//! ```text
//! repro [--table1] [--fig1] [--fig2] [--fig3] [--fig4] [--kcm] [--all]
//! ```
//!
//! With no flags (or `--all`), every artifact is reproduced in order.
//! `--fig4-measured` additionally runs the co-simulation sweep with
//! *real* localhost sockets and injected latency (slower).

use std::time::{Duration, Instant};

use ipd_bench::{
    baseline_multiplier, fig4_rtts, fig4_scenario, full_width_kcm, kcm_quality_widths, paper_kcm,
    paper_kcm_circuit, quality_constant,
};
use ipd_core::{AppletHost, AppletServer, AppletSession, CapabilitySet, IpExecutable};
use ipd_cosim::{
    measure_local_event_cost, Approach, BlackBoxClient, BlackBoxServer, LatencyTransport,
    LocalSimModel, SimModel,
};
use ipd_estimate::{estimate_area, estimate_timing};
use ipd_hdl::Circuit;
use ipd_netlist::NetlistFormat;
use ipd_pack::BundleSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    if want("--table1") {
        table1();
    }
    if want("--fig1") {
        fig1();
    }
    if want("--fig2") {
        fig2();
    }
    if want("--fig3") {
        fig3();
    }
    if want("--fig4") {
        fig4_modeled();
    }
    if args.iter().any(|a| a == "--fig4-measured") {
        fig4_measured();
    }
    if want("--kcm") {
        kcm_quality();
    }
}

fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Table 1: bundle sizes for the constant-multiplier applet.
fn table1() {
    heading("TABLE 1 — bundles used by the constant-multiplier applet");
    println!("paper: JHDLBase 346 kB, Virtex 293 kB, Viewer 140 kB, Applet 16 kB, total 795 kB");
    println!("(ours embed this workspace's real sources, so absolute sizes differ;");
    println!(" the partitioning *shape* is the reproduced claim)\n");
    let set = BundleSet::jhdl_applet_set();
    print!("{set}");
    let base = set.get("JHDLBase").expect("base").packed_size();
    let applet = set.get("Applet").expect("applet").packed_size();
    println!("\nshape check:");
    println!(
        "  base/applet size ratio: {:.1}x (paper: {:.1}x)",
        base as f64 / applet as f64,
        346.0 / 16.0
    );
    println!(
        "  compression saves {:.0}% of raw bytes",
        100.0 * (1.0 - set.total_packed() as f64 / set.total_raw() as f64)
    );
}

/// Figure 1: the KCM parameter panel with estimates.
fn fig1() {
    heading("FIGURE 1 — GUI for constant coefficient multiplier (parameter panel)");
    let kcm = paper_kcm();
    println!("  Constant Value : {}", kcm.constant());
    println!("  Input Width    : {} bits", kcm.input_width());
    println!(
        "  Output Width   : {} bits (top bits of {})",
        kcm.product_width(),
        kcm.full_product_width()
    );
    println!("  Signed         : {}", kcm.is_signed());
    println!(
        "  Pipelined      : {} (latency {} cycles)",
        kcm.is_pipelined(),
        kcm.latency()
    );
    let circuit = paper_kcm_circuit();
    println!("\n  [Build] pressed:");
    print!("{}", estimate_area(&circuit).expect("area"));
    print!("{}", estimate_timing(&circuit).expect("timing"));
}

/// Figure 2: the two executable configurations.
fn fig2() {
    heading("FIGURE 2 — two configurations of an IP delivery executable");
    let passive = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::passive());
    let licensed = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::licensed());
    println!("--- passive customer (browse + estimate) ---");
    print!("{passive}");
    println!("--- licensed customer (full visibility + netlist) ---");
    print!("{licensed}");
    println!(
        "shape check: licensed grants {} vs {} operations and downloads {} vs {} kB",
        licensed.capabilities().len(),
        passive.capabilities().len(),
        licensed.download_size().div_ceil(1024),
        passive.download_size().div_ceil(1024),
    );
}

/// Figure 3: a full applet session transcript.
fn fig3() {
    heading("FIGURE 3 — applet session: build, browse, simulate, netlist");
    let mut server = AppletServer::new("byu", b"vendor-key".to_vec());
    server.enroll("customer", "virtex-kcm", CapabilitySet::licensed(), 0, 365);
    let exe = server.serve("customer", 1).expect("serve");
    let mut host = AppletHost::new();
    let downloaded = host.load(&exe);
    println!(
        "downloaded {} kB: {:?}",
        downloaded.div_ceil(1024),
        host.cached()
    );
    let kcm = paper_kcm();
    let latency = kcm.latency();
    let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
    session.build().expect("[Build]");
    println!("\n[Build] -> {}", session.generator_name());
    println!("\nschematic browser (excerpt):");
    for line in session.schematic().expect("schematic").lines().take(12) {
        println!("  {line}");
    }
    println!("\n[Cycle]/[Reset] simulation:");
    for x in [-128i64, -56, 0, 77, 127] {
        session.set_i64("multiplicand", x).expect("set");
        session.cycle(u64::from(latency)).expect("cycle");
        let p = session.peek("product").expect("peek");
        println!("  multiplicand {x:>5} -> product {:>6?}", p.to_i64());
    }
    let edif = session.netlist(NetlistFormat::Edif).expect("[Netlist]");
    println!(
        "\n[Netlist] -> {} bytes of EDIF (scrollable window)",
        edif.len()
    );
    for line in edif.lines().take(4) {
        println!("  {line}");
    }
}

/// Figure 4, modeled: throughput vs RTT for the three architectures.
fn fig4_modeled() {
    heading("FIGURE 4 — black-box co-simulation vs remote simulation (modeled)");
    let circuit = paper_kcm_circuit();
    let local_cost = measure_local_event_cost(&circuit, 5_000).expect("measure");
    println!("measured applet-local event cost: {local_cost:?}\n");
    println!(
        "{:>8} | {:>13} {:>13} {:>13} | {:>10} {:>10}",
        "RTT", "applet cyc/s", "webcad cyc/s", "rmi cyc/s", "cross(web)", "cross(rmi)"
    );
    for rtt in fig4_rtts() {
        let s = fig4_scenario(rtt, local_cost);
        let fmt_cross = |c: Option<u64>| c.map_or_else(|| "never".into(), |v: u64| v.to_string());
        println!(
            "{:>6}ms | {:>13.0} {:>13.0} {:>13.0} | {:>10} {:>10}",
            rtt.as_millis(),
            s.throughput(Approach::AppletLocal),
            s.throughput(Approach::WebCadRemote),
            s.throughput(Approach::JavaCadRmi),
            fmt_cross(s.crossover_cycles(Approach::WebCadRemote)),
            fmt_cross(s.crossover_cycles(Approach::JavaCadRmi)),
        );
    }
    println!("\nshape check: applet-local is RTT-independent; remote degrades ~1/RTT;");
    println!("the one-time download amortizes within ~10^2-10^3 cycles at WAN latency.");
}

/// Figure 4, measured: real sockets, really injected latency.
fn fig4_measured() {
    heading("FIGURE 4 (measured) — real TCP + injected RTT");
    let circuit = paper_kcm_circuit();
    println!(
        "{:>8} | {:>16} {:>16}",
        "RTT", "local cyc/s", "remote cyc/s"
    );
    for rtt_ms in [0u64, 1, 2, 5, 10] {
        // Local path.
        let mut local = LocalSimModel::new(&circuit).expect("model");
        let cycles = 300u64;
        let start = Instant::now();
        for i in 0..cycles {
            local
                .set("multiplicand", ipd_hdl::LogicVec::from_u64(i & 0xFF, 8))
                .expect("set");
            local.cycle(1).expect("cycle");
            let _ = local.get("product").expect("get");
        }
        let local_rate = cycles as f64 / start.elapsed().as_secs_f64();

        // Remote path over real TCP with injected latency.
        let mut host = AppletHost::new();
        host.grant_network_permission();
        let server = BlackBoxServer::bind(&host).expect("bind");
        let addr = server.addr();
        let _thread = server.spawn(LocalSimModel::new(&circuit).expect("model"));
        let tcp = ipd_cosim::TcpTransport::connect(addr).expect("connect");
        let mut remote =
            BlackBoxClient::over(LatencyTransport::new(tcp, Duration::from_millis(rtt_ms)));
        let remote_cycles = if rtt_ms == 0 {
            300u64
        } else {
            60 / rtt_ms.max(1) + 10
        };
        let start = Instant::now();
        for i in 0..remote_cycles {
            remote
                .set("multiplicand", ipd_hdl::LogicVec::from_u64(i & 0xFF, 8))
                .expect("set");
            remote.cycle(1).expect("cycle");
            let _ = remote.get("product").expect("get");
        }
        let remote_rate = remote_cycles as f64 / start.elapsed().as_secs_f64();
        let _ = remote.close();
        println!("{rtt_ms:>6}ms | {local_rate:>16.0} {remote_rate:>16.0}");
    }
}

/// X1: the KCM quality table (the authors' FPL 2001 evaluation).
fn kcm_quality() {
    heading("X1 — KCM vs general array multiplier (ref [9] evaluation)");
    println!(
        "{:>5} {:>10} {:>10} {:>8} | {:>9} {:>9} {:>8}",
        "width", "kcm cost", "mult cost", "ratio", "kcm ns", "mult ns", "ratio"
    );
    for width in kcm_quality_widths() {
        let kcm = Circuit::from_generator(&full_width_kcm(quality_constant(width), width, false))
            .expect("kcm");
        let mult = Circuit::from_generator(&baseline_multiplier(width)).expect("mult");
        let ka = estimate_area(&kcm).expect("area");
        let ma = estimate_area(&mult).expect("area");
        let kt = estimate_timing(&kcm).expect("timing");
        let mt = estimate_timing(&mult).expect("timing");
        let k_cost = f64::from(ka.total.luts) + f64::from(ka.total.carries) * 0.5;
        let m_cost = f64::from(ma.total.luts) + f64::from(ma.total.carries) * 0.5;
        println!(
            "{width:>5} {k_cost:>10.1} {m_cost:>10.1} {:>8.2} | {:>9.2} {:>9.2} {:>8.2}",
            m_cost / k_cost,
            kt.critical_path_ns,
            mt.critical_path_ns,
            mt.critical_path_ns / kt.critical_path_ns,
        );
    }
    println!("\nshape check: the constant folds into LUT tables, so the KCM stays");
    println!("several times cheaper and faster than the general multiplier at every");
    println!("width (paper [9] reports a ~2x area advantage on real Virtex parts).");

    // Placement ablation: the same netlist with RLOCs stripped pays
    // the unplaced-routing penalty — the quantified value of the
    // paper's preplaced macros and layout viewer.
    println!("\nablation: relative placement (paper KCM)");
    let placed = paper_kcm_circuit();
    let mut unplaced = placed.clone();
    unplaced.strip_placement();
    let tp = estimate_timing(&placed).expect("timing");
    let tu = estimate_timing(&unplaced).expect("timing");
    println!(
        "  placed:   {:.2} ns ({:.0} MHz), {:.0}% of leaves placed",
        tp.critical_path_ns,
        tp.fmax_mhz,
        tp.placed_fraction * 100.0
    );
    println!(
        "  stripped: {:.2} ns ({:.0} MHz) — {:.1}x slower without RLOCs",
        tu.critical_path_ns,
        tu.fmax_mhz,
        tu.critical_path_ns / tp.critical_path_ns
    );
    let auto = ipd_estimate::auto_place(&placed, &ipd_estimate::PlacerConfig::default())
        .expect("auto place");
    let ta = estimate_timing(&auto.circuit).expect("timing");
    println!(
        "  annealed: {:.2} ns ({:.0} MHz) — wirelength {:.0} -> {:.0} over a {}x{} grid",
        ta.critical_path_ns,
        ta.fmax_mhz,
        auto.initial_wirelength,
        auto.final_wirelength,
        auto.grid_side,
        auto.grid_side
    );

    // Pipelining ablation.
    println!("\nablation: pipelining the paper KCM");
    for pipelined in [false, true] {
        let kcm = if pipelined {
            ipd_modgen::KcmMultiplier::new(-56, 8, 12)
                .signed(true)
                .pipelined(true)
        } else {
            ipd_modgen::KcmMultiplier::new(-56, 8, 12).signed(true)
        };
        let latency = kcm.latency();
        let circuit = Circuit::from_generator(&kcm).expect("kcm");
        let area = estimate_area(&circuit).expect("area");
        let timing = estimate_timing(&circuit).expect("timing");
        println!(
            "  pipelined={pipelined:<5} latency={latency} LUTs={:<3} FFs={:<3} {:.2} ns ({:.0} MHz)",
            area.total.luts, area.total.ffs, timing.critical_path_ns, timing.fmax_mhz
        );
    }
}
