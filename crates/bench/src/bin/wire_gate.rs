//! CI perf-regression gate for the X9 wire fleet bench.
//!
//! Compares a fresh `BENCH_wire.json` (written by the `wire_fleet`
//! bench) against the committed baseline and exits nonzero when any
//! throughput figure regresses by more than the allowed fraction
//! (default 30%). Only `*_rps` keys gate — latency figures are
//! reported but too noisy on shared CI runners to fail a build on.
//!
//! Usage:
//!
//! ```text
//! wire_gate --baseline crates/bench/baselines/wire_fleet.json \
//!           --current BENCH_wire.json [--max-regress 0.30]
//! ```
//!
//! The JSON involved is the flat `{"key": number, ...}` shape the
//! bench emits; the parser below handles exactly that (no nesting, no
//! strings) so the gate needs no dependencies.

use std::process::ExitCode;

/// Parses a flat `{"key": number, ...}` document.
fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut pairs = Vec::new();
    let mut rest = text.trim();
    rest = rest
        .strip_prefix('{')
        .ok_or("expected a JSON object")?
        .trim_end();
    rest = rest.strip_suffix('}').ok_or("unterminated object")?;
    for entry in rest.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed entry: {entry}"))?;
        let key = key.trim().trim_matches('"').to_owned();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key}: {e}"))?;
        pairs.push((key, value));
    }
    Ok(pairs)
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn lookup(pairs: &[(String, f64)], key: &str) -> Option<f64> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn run() -> Result<bool, String> {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut max_regress = 0.30f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")?),
            "--current" => current_path = Some(value("--current")?),
            "--max-regress" => {
                max_regress = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("bad --max-regress: {e}"))?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let baseline = load(&baseline_path.ok_or("--baseline is required")?)?;
    let current = load(&current_path.ok_or("--current is required")?)?;

    let mut ok = true;
    println!(
        "{:<22} {:>12} {:>12} {:>9}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for (key, base) in baseline.iter().filter(|(k, _)| k.ends_with("_rps")) {
        let Some(now) = lookup(&current, key) else {
            println!("{key:<22} {base:>12.0} {:>12} {:>9}  MISSING", "-", "-");
            ok = false;
            continue;
        };
        let delta = (now - base) / base;
        let floor = base * (1.0 - max_regress);
        let verdict = if now >= floor { "ok" } else { "REGRESSED" };
        if now < floor {
            ok = false;
        }
        println!(
            "{key:<22} {base:>12.0} {now:>12.0} {delta:>+8.1}%  {verdict}",
            delta = delta * 100.0
        );
    }
    for (key, base) in baseline.iter().filter(|(k, _)| k.ends_with("_p99_us")) {
        let now = lookup(&current, key);
        let shown = now.map_or("-".to_owned(), |v| format!("{v:.0}"));
        println!("{key:<22} {base:>12.0} {shown:>12} {:>9}  info", "-");
    }
    if ok {
        println!(
            "gate: pass (allowed regression {:.0}%)",
            max_regress * 100.0
        );
    } else {
        println!(
            "gate: FAIL — throughput regressed more than {:.0}% (or a metric is missing)",
            max_regress * 100.0
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("wire_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
