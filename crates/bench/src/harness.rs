//! A small self-contained benchmark harness (criterion replacement).
//!
//! The workspace builds with zero registry dependencies so the tier-1
//! verify runs offline; this module supplies the subset of the
//! criterion API the bench targets need: named groups, per-benchmark
//! timing loops with warmup and automatic iteration scaling, and
//! element/byte throughput reporting.
//!
//! Timing model: each benchmark warms up for a short fixed budget,
//! estimates the per-iteration cost, then measures batches sized to
//! fill the measurement budget and reports the mean and best batch
//! average. Set `IPD_BENCH_FAST=1` to shrink both budgets (used by CI
//! smoke runs, where only "does it run" matters).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work amount, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes produced/consumed per iteration.
    Bytes(u64),
}

/// Measurement budgets (warmup, measure) per benchmark.
fn budgets() -> (Duration, Duration) {
    if std::env::var_os("IPD_BENCH_FAST").is_some() {
        (Duration::from_millis(5), Duration::from_millis(20))
    } else {
        (Duration::from_millis(60), Duration::from_millis(300))
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    best: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly — warmup, then timed batches — recording
    /// elapsed wall-clock per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let (warmup, measure) = budgets();

        // Warmup + cost estimate.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
        }
        let est = start.elapsed() / u32::try_from(warm_iters).unwrap_or(u32::MAX);

        // Batch size targeting ~10 batches inside the budget.
        let per_batch = (measure.as_nanos() / 10).max(1);
        let batch = (per_batch / est.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

        let deadline = Instant::now() + measure;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            let avg = dt / u32::try_from(batch).unwrap_or(u32::MAX);
            self.total += dt;
            self.iters += batch;
            self.best = Some(self.best.map_or(avg, |b| b.min(avg)));
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

/// A named collection of benchmarks printed as one block.
#[derive(Debug)]
pub struct Group {
    name: String,
    throughput: Option<Throughput>,
}

impl Group {
    /// Sets the per-iteration work amount for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints its report line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        let mean = b.mean();
        let best = b.best.unwrap_or(mean);
        let mut line = format!(
            "{:<52} {:>12}/iter (best {:>10}, {} iters)",
            format!("{}/{}", self.name, id.as_ref()),
            fmt_duration(mean),
            fmt_duration(best),
            b.iters,
        );
        if let Some(t) = self.throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>12.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>9.2} MB/s", n as f64 / secs / 1e6));
                }
            }
        }
        println!("{line}");
    }

    /// Ends the group (printing nothing extra; kept for call-site
    /// symmetry with criterion).
    pub fn finish(self) {}
}

/// Entry point: construct one per bench target.
#[derive(Debug, Default)]
pub struct Harness {}

impl Harness {
    /// Creates a harness.
    #[must_use]
    pub fn new() -> Self {
        Self {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group {
        let name = name.into();
        println!("\n-- {name} --");
        Group {
            name,
            throughput: None,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        std::env::set_var("IPD_BENCH_FAST", "1");
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters >= 3);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn group_reports_without_panicking() {
        std::env::set_var("IPD_BENCH_FAST", "1");
        let mut h = Harness::new();
        let mut g = h.benchmark_group("selftest");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(42)));
        g.finish();
    }
}
