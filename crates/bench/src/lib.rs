//! Shared workloads for the benchmark harness.
//!
//! Every table and figure of the paper has a bench target in
//! `benches/` and a row-for-row textual reproduction in the `repro`
//! binary; this library holds the circuit builders and scenario
//! parameters they share.

pub mod harness;

use std::time::Duration;

use ipd_cosim::DeliveryScenario;
use ipd_hdl::Circuit;
use ipd_modgen::{ArrayMultiplier, FirFilter, KcmMultiplier, RippleAdder};

/// The paper's running example: −56 × x, 8-bit input, 12-bit product,
/// signed, pipelined.
#[must_use]
pub fn paper_kcm() -> KcmMultiplier {
    KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true)
}

/// A KCM at full product width for a given constant/width.
#[must_use]
pub fn full_width_kcm(constant: i64, width: u32, signed: bool) -> KcmMultiplier {
    let full = KcmMultiplier::new(constant, width, 1)
        .signed(signed)
        .full_product_width();
    KcmMultiplier::new(constant, width, full).signed(signed)
}

/// Builds the paper KCM's circuit.
///
/// # Panics
///
/// Panics if elaboration fails (it cannot for these parameters).
#[must_use]
pub fn paper_kcm_circuit() -> Circuit {
    Circuit::from_generator(&paper_kcm()).expect("paper KCM builds")
}

/// A circuit sweep for simulator-throughput benches: name plus circuit.
///
/// # Panics
///
/// Panics if any generator fails to elaborate.
#[must_use]
pub fn sim_workloads() -> Vec<(String, Circuit)> {
    let mut out = Vec::new();
    for width in [8u32, 16, 32] {
        out.push((
            format!("adder_w{width}"),
            Circuit::from_generator(&RippleAdder::new(width)).expect("adder"),
        ));
    }
    for width in [8u32, 16] {
        out.push((
            format!("kcm_w{width}"),
            Circuit::from_generator(&full_width_kcm(-12345, width, true)).expect("kcm"),
        ));
    }
    for taps in [4usize, 16] {
        let coeffs: Vec<i64> = (0..taps as i64).map(|i| (i % 7) - 3).collect();
        out.push((
            format!("fir_t{taps}"),
            Circuit::from_generator(&FirFilter::new(coeffs, 8).expect("fir params")).expect("fir"),
        ));
    }
    out
}

/// KCM-vs-array-multiplier comparison points (the paper's ref \[9\]
/// evaluation): widths to sweep.
#[must_use]
pub fn kcm_quality_widths() -> Vec<u32> {
    vec![4, 8, 12, 16, 20, 24, 28, 32]
}

/// A representative constant with bits spread across the word, masked
/// to `width` bits (so the KCM tables stay dense).
#[must_use]
pub fn quality_constant(width: u32) -> i64 {
    let pattern = 0xB6D5_A4E3_97C1_5AB7u64;
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    ((pattern & mask) | 1) as i64
}

/// An array-multiplier baseline matching a KCM comparison width.
#[must_use]
pub fn baseline_multiplier(width: u32) -> ArrayMultiplier {
    ArrayMultiplier::new(width, width)
}

/// The Figure 4 scenario at a given round-trip time, with a measured
/// local event cost plugged in.
#[must_use]
pub fn fig4_scenario(rtt: Duration, local_event_cost: Duration) -> DeliveryScenario {
    DeliveryScenario {
        cycles: 10_000,
        events_per_cycle: 3,
        // The paper's Table 1 total: 795 kB of applet bundles over a
        // 2002-era ~1 Mb/s link.
        download_bytes: 795 * 1024,
        bandwidth_bytes_per_s: 128.0 * 1024.0,
        rtt,
        local_event_cost,
    }
}

/// The RTT sweep for Figure 4.
#[must_use]
pub fn fig4_rtts() -> Vec<Duration> {
    [0u64, 1, 2, 5, 10, 20, 50]
        .into_iter()
        .map(Duration::from_millis)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        assert!(!sim_workloads().is_empty());
        assert!(paper_kcm_circuit().primitive_count() > 0);
        for width in kcm_quality_widths() {
            assert!(quality_constant(width) > 0);
            let _ = Circuit::from_generator(&full_width_kcm(quality_constant(width), width, false))
                .expect("quality kcm builds");
        }
    }
}
