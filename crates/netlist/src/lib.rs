//! # ipd-netlist — EDIF, VHDL and Verilog netlist generation
//!
//! JHDL exposes an open netlister API so a circuit data structure can be
//! regenerated "in one of many possible formats"; the paper's applets
//! use it to deliver instance-specific netlists to licensed customers.
//! This crate provides that capability:
//!
//! - [`edif_string`] / [`write_edif`] — hierarchical EDIF 2.0.0, the
//!   format behind the applet's *Netlist* button, with `rename`
//!   constructs preserving original JHDL names and `INIT`/`RLOC`
//!   properties on primitive instances.
//! - [`vhdl_string`] / [`write_vhdl`] — flat structural VHDL-93.
//! - [`verilog_string`] / [`write_verilog`] — flat structural
//!   Verilog-2001.
//! - [`SExpr`] — an s-expression reader used to verify generated EDIF
//!   round-trips (and usable for custom interchange formats).
//! - [`NameTable`] — injective identifier legalization per dialect.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, PortSpec};
//! use ipd_netlist::{edif_string, SExpr};
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("top");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.inv(a, y)?;
//!
//! let edif = edif_string(&circuit)?;
//! let parsed = SExpr::parse(&edif)?; // generated EDIF always reparses
//! assert_eq!(parsed.head(), Some("edif"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod edif;
mod edif_read;
mod error;
mod names;
mod sexpr;
mod testbench;
mod verilog;
mod vhdl;

pub use edif::{edif_string, write_edif};
pub use edif_read::read_edif;
pub use error::NetlistError;
pub use names::{Dialect, NameTable};
pub use sexpr::SExpr;
pub use testbench::{testbench_verilog, TestVector};
pub use verilog::{verilog_from_flat, verilog_string, write_verilog};
pub use vhdl::{vhdl_from_flat, vhdl_string, write_vhdl};

/// The netlist formats an IP delivery executable can offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetlistFormat {
    /// Hierarchical EDIF 2.0.0.
    Edif,
    /// Flat structural VHDL-93.
    Vhdl,
    /// Flat structural Verilog-2001.
    Verilog,
}

impl NetlistFormat {
    /// All supported formats.
    #[must_use]
    pub fn all() -> [NetlistFormat; 3] {
        [
            NetlistFormat::Edif,
            NetlistFormat::Vhdl,
            NetlistFormat::Verilog,
        ]
    }

    /// Conventional file extension.
    #[must_use]
    pub fn extension(&self) -> &'static str {
        match self {
            NetlistFormat::Edif => "edf",
            NetlistFormat::Vhdl => "vhd",
            NetlistFormat::Verilog => "v",
        }
    }

    /// Generates a netlist in this format.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's errors.
    pub fn generate(&self, circuit: &ipd_hdl::Circuit) -> Result<String, NetlistError> {
        match self {
            NetlistFormat::Edif => edif_string(circuit),
            NetlistFormat::Vhdl => vhdl_string(circuit),
            NetlistFormat::Verilog => verilog_string(circuit),
        }
    }
}

impl std::fmt::Display for NetlistFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NetlistFormat::Edif => "EDIF",
            NetlistFormat::Vhdl => "VHDL",
            NetlistFormat::Verilog => "Verilog",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{Circuit, PortSpec};
    use ipd_techlib::LogicCtx;

    #[test]
    fn all_formats_generate() {
        let mut c = Circuit::new("fmt");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        for fmt in NetlistFormat::all() {
            let text = fmt.generate(&c).expect("generate");
            assert!(!text.is_empty(), "{fmt} output empty");
        }
        assert_eq!(NetlistFormat::Edif.extension(), "edf");
        assert_eq!(NetlistFormat::Vhdl.to_string(), "VHDL");
    }
}
