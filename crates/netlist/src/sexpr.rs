//! A small s-expression reader used to verify generated EDIF.
//!
//! JHDL's netlister API is open so users can build importers for their
//! own flows; this reader plays that role in tests and in the applet's
//! netlist-window previewer.

use std::fmt;

use crate::error::NetlistError;

/// One node of an s-expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExpr {
    /// A bare token.
    Atom(String),
    /// A quoted string literal.
    Str(String),
    /// A parenthesized list.
    List(Vec<SExpr>),
}

impl SExpr {
    /// Parses a complete s-expression document (one top-level form).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ParseEdif`] on malformed input: unmatched
    /// parentheses, unterminated strings, or trailing garbage.
    pub fn parse(text: &str) -> Result<SExpr, NetlistError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let expr = parser.parse_expr()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing input after top-level form"));
        }
        Ok(expr)
    }

    /// The head symbol of a list, e.g. `cell` for `(cell foo ...)`.
    #[must_use]
    pub fn head(&self) -> Option<&str> {
        match self {
            SExpr::List(items) => match items.first() {
                Some(SExpr::Atom(a)) => Some(a),
                _ => None,
            },
            _ => None,
        }
    }

    /// The list elements (empty for atoms).
    #[must_use]
    pub fn items(&self) -> &[SExpr] {
        match self {
            SExpr::List(items) => items,
            _ => &[],
        }
    }

    /// The atom or string payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SExpr::Atom(s) | SExpr::Str(s) => Some(s),
            SExpr::List(_) => None,
        }
    }

    /// Recursively collects every list whose head symbol is `head`.
    #[must_use]
    pub fn find_all(&self, head: &str) -> Vec<&SExpr> {
        let mut out = Vec::new();
        self.walk(&mut |node| {
            if node.head() == Some(head) {
                out.push(node);
            }
        });
        out
    }

    /// The first direct child list with the given head symbol.
    #[must_use]
    pub fn child(&self, head: &str) -> Option<&SExpr> {
        self.items().iter().find(|n| n.head() == Some(head))
    }

    /// The *name* of a named EDIF construct: either the bare atom after
    /// the head, or the first element of a `(rename legal "orig")`.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        match self.items().get(1)? {
            SExpr::Atom(a) => Some(a),
            SExpr::List(items) => match (items.first(), items.get(1)) {
                (Some(SExpr::Atom(h)), Some(SExpr::Atom(n))) if h == "rename" => Some(n),
                _ => None,
            },
            SExpr::Str(_) => None,
        }
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SExpr)) {
        f(self);
        if let SExpr::List(items) = self {
            for item in items {
                item.walk(f);
            }
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Atom(a) => f.write_str(a),
            SExpr::Str(s) => write!(f, "\"{s}\""),
            SExpr::List(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> NetlistError {
        NetlistError::ParseEdif {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn parse_expr(&mut self) -> Result<SExpr, NetlistError> {
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'(') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        None => return Err(self.error("unclosed list")),
                        Some(b')') => {
                            self.pos += 1;
                            return Ok(SExpr::List(items));
                        }
                        Some(_) => items.push(self.parse_expr()?),
                    }
                }
            }
            Some(b')') => Err(self.error("unexpected closing parenthesis")),
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b == b'"' {
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?
                            .to_owned();
                        self.pos += 1;
                        return Ok(SExpr::Str(s));
                    }
                    self.pos += 1;
                }
                Err(self.error("unterminated string literal"))
            }
            Some(_) => {
                let start = self.pos;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b.is_ascii_whitespace() || b == b'(' || b == b')' || b == b'"' {
                        break;
                    }
                    self.pos += 1;
                }
                let atom = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in atom"))?
                    .to_owned();
                Ok(SExpr::Atom(atom))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists() {
        let e = SExpr::parse("(a (b c) \"d e\")").expect("parse");
        assert_eq!(e.head(), Some("a"));
        assert_eq!(e.items().len(), 3);
        assert_eq!(e.items()[2].as_str(), Some("d e"));
    }

    #[test]
    fn round_trip_display() {
        let text = "(edif top (edifVersion 2 0 0))";
        let e = SExpr::parse(text).expect("parse");
        assert_eq!(e.to_string(), text);
    }

    #[test]
    fn find_all_recurses() {
        let e =
            SExpr::parse("(a (cell x) (b (cell y) (cell (rename z_1 \"z[1]\"))))").expect("parse");
        let cells = e.find_all("cell");
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[2].name(), Some("z_1"));
        assert_eq!(cells[0].name(), Some("x"));
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(
            SExpr::parse("(a (b)"),
            Err(NetlistError::ParseEdif { .. })
        ));
        assert!(matches!(
            SExpr::parse("(a) junk"),
            Err(NetlistError::ParseEdif { .. })
        ));
        assert!(matches!(
            SExpr::parse("\"unterminated"),
            Err(NetlistError::ParseEdif { .. })
        ));
        assert!(matches!(
            SExpr::parse(")"),
            Err(NetlistError::ParseEdif { .. })
        ));
    }
}
