//! Netlisting errors.

use std::fmt;

/// Errors raised while generating or parsing netlists.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// The circuit failed to flatten or contained stale references.
    Hdl(ipd_hdl::HdlError),
    /// An output error from the destination writer.
    Io(std::io::Error),
    /// EDIF text failed to parse.
    ParseEdif {
        /// Byte offset of the failure.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Hdl(e) => write!(f, "circuit error: {e}"),
            NetlistError::Io(e) => write!(f, "output error: {e}"),
            NetlistError::ParseEdif { offset, message } => {
                write!(f, "EDIF parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Hdl(e) => Some(e),
            NetlistError::Io(e) => Some(e),
            NetlistError::ParseEdif { .. } => None,
        }
    }
}

impl From<ipd_hdl::HdlError> for NetlistError {
    fn from(e: ipd_hdl::HdlError) -> Self {
        NetlistError::Hdl(e)
    }
}

impl From<std::io::Error> for NetlistError {
    fn from(e: std::io::Error) -> Self {
        NetlistError::Io(e)
    }
}
