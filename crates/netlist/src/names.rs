//! Identifier legalization for the supported netlist dialects.
//!
//! Hierarchical JHDL-style names (`top/u0/t1[3]`) are not legal VHDL,
//! Verilog or EDIF identifiers. A [`NameTable`] maps arbitrary source
//! names to legal, *injective* (collision-free) identifiers per dialect.

use std::collections::{HashMap, HashSet};

/// Target netlist dialect for identifier legalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// EDIF 2.0.0 identifiers (alphanumeric + `_`, must not start with
    /// a digit; originals preserved via `rename`).
    Edif,
    /// VHDL-93 basic identifiers (case-insensitive, no leading/trailing
    /// `_`, no `__`, reserved words).
    Vhdl,
    /// Verilog-2001 simple identifiers.
    Verilog,
}

const VHDL_KEYWORDS: &[&str] = &[
    "abs",
    "access",
    "after",
    "alias",
    "all",
    "and",
    "architecture",
    "array",
    "assert",
    "attribute",
    "begin",
    "block",
    "body",
    "buffer",
    "bus",
    "case",
    "component",
    "configuration",
    "constant",
    "disconnect",
    "downto",
    "else",
    "elsif",
    "end",
    "entity",
    "exit",
    "file",
    "for",
    "function",
    "generate",
    "generic",
    "group",
    "guarded",
    "if",
    "impure",
    "in",
    "inertial",
    "inout",
    "is",
    "label",
    "library",
    "linkage",
    "literal",
    "loop",
    "map",
    "mod",
    "nand",
    "new",
    "next",
    "nor",
    "not",
    "null",
    "of",
    "on",
    "open",
    "or",
    "others",
    "out",
    "package",
    "port",
    "postponed",
    "procedure",
    "process",
    "pure",
    "range",
    "record",
    "register",
    "reject",
    "rem",
    "report",
    "return",
    "rol",
    "ror",
    "select",
    "severity",
    "signal",
    "shared",
    "sla",
    "sll",
    "sra",
    "srl",
    "subtype",
    "then",
    "to",
    "transport",
    "type",
    "unaffected",
    "units",
    "until",
    "use",
    "variable",
    "wait",
    "when",
    "while",
    "with",
    "xnor",
    "xor",
];

const VERILOG_KEYWORDS: &[&str] = &[
    "always",
    "and",
    "assign",
    "begin",
    "buf",
    "bufif0",
    "bufif1",
    "case",
    "casex",
    "casez",
    "cmos",
    "deassign",
    "default",
    "defparam",
    "disable",
    "edge",
    "else",
    "end",
    "endcase",
    "endfunction",
    "endmodule",
    "endprimitive",
    "endspecify",
    "endtable",
    "endtask",
    "event",
    "for",
    "force",
    "forever",
    "fork",
    "function",
    "highz0",
    "highz1",
    "if",
    "ifnone",
    "initial",
    "inout",
    "input",
    "integer",
    "join",
    "large",
    "macromodule",
    "medium",
    "module",
    "nand",
    "negedge",
    "nmos",
    "nor",
    "not",
    "notif0",
    "notif1",
    "or",
    "output",
    "parameter",
    "pmos",
    "posedge",
    "primitive",
    "pull0",
    "pull1",
    "pulldown",
    "pullup",
    "rcmos",
    "real",
    "realtime",
    "reg",
    "release",
    "repeat",
    "rnmos",
    "rpmos",
    "rtran",
    "rtranif0",
    "rtranif1",
    "scalared",
    "signed",
    "small",
    "specify",
    "specparam",
    "strong0",
    "strong1",
    "supply0",
    "supply1",
    "table",
    "task",
    "time",
    "tran",
    "tranif0",
    "tranif1",
    "tri",
    "tri0",
    "tri1",
    "triand",
    "trior",
    "trireg",
    "vectored",
    "wait",
    "wand",
    "weak0",
    "weak1",
    "while",
    "wire",
    "wor",
    "xnor",
    "xor",
];

/// A per-output-file table mapping source names to unique legal
/// identifiers.
///
/// # Examples
///
/// ```
/// use ipd_netlist::{Dialect, NameTable};
///
/// let mut table = NameTable::new(Dialect::Vhdl);
/// let a = table.legalize("top/u0/t1[3]").to_owned();
/// let b = table.legalize("top/u0/t1_3").to_owned();
/// assert_ne!(a, b, "legalization is injective");
/// assert_eq!(table.legalize("top/u0/t1[3]"), a, "stable per source name");
/// ```
#[derive(Debug, Clone)]
pub struct NameTable {
    dialect: Dialect,
    map: HashMap<String, String>,
    used: HashSet<String>,
}

impl NameTable {
    /// An empty table for one dialect.
    #[must_use]
    pub fn new(dialect: Dialect) -> Self {
        NameTable {
            dialect,
            map: HashMap::new(),
            used: HashSet::new(),
        }
    }

    /// The table's dialect.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Returns the legal identifier for `source`, allocating one on
    /// first use. The mapping is stable and injective for the lifetime
    /// of the table.
    pub fn legalize(&mut self, source: &str) -> &str {
        if !self.map.contains_key(source) {
            let base = sanitize(source, self.dialect);
            let unique = self.uniquify(base);
            self.used.insert(unique.clone());
            self.map.insert(source.to_owned(), unique);
        }
        &self.map[source]
    }

    /// Looks up a previously legalized name.
    #[must_use]
    pub fn get(&self, source: &str) -> Option<&str> {
        self.map.get(source).map(String::as_str)
    }

    fn uniquify(&self, base: String) -> String {
        let key = |s: &str| match self.dialect {
            Dialect::Vhdl => s.to_ascii_lowercase(),
            _ => s.to_owned(),
        };
        if !self.used.contains(&key(&base)) {
            return match self.dialect {
                Dialect::Vhdl => key(&base),
                _ => base,
            };
        }
        let mut n = 2usize;
        loop {
            let candidate = format!("{base}_{n}");
            if !self.used.contains(&key(&candidate)) {
                return match self.dialect {
                    Dialect::Vhdl => key(&candidate),
                    _ => candidate,
                };
            }
            n += 1;
        }
    }
}

fn sanitize(source: &str, dialect: Dialect) -> String {
    let mut out = String::with_capacity(source.len());
    for ch in source.chars() {
        let legal =
            ch.is_ascii_alphanumeric() || ch == '_' || (dialect == Dialect::Verilog && ch == '$');
        out.push(if legal { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('n');
    }
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    match dialect {
        Dialect::Vhdl => {
            // No leading/trailing underscore, no double underscores,
            // no reserved words (case-insensitive).
            while out.starts_with('_') {
                out.remove(0);
            }
            while out.ends_with('_') {
                out.pop();
            }
            while out.contains("__") {
                out = out.replace("__", "_");
            }
            if out.is_empty() {
                out.push('n');
            }
            let lower = out.to_ascii_lowercase();
            if VHDL_KEYWORDS.contains(&lower.as_str()) {
                out = format!("{out}_i");
            }
            out
        }
        Dialect::Verilog => {
            if out.starts_with('$') {
                out.insert(0, 'n');
            }
            if VERILOG_KEYWORDS.contains(&out.as_str()) {
                out = format!("{out}_i");
            }
            out
        }
        Dialect::Edif => out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_names_become_legal() {
        let mut t = NameTable::new(Dialect::Vhdl);
        let n = t.legalize("top/u0/bus[3]").to_owned();
        assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        assert!(!n.starts_with(|c: char| c.is_ascii_digit()));
        assert!(!n.contains("__"));
        assert!(!n.ends_with('_'));
    }

    #[test]
    fn keywords_are_avoided() {
        let mut v = NameTable::new(Dialect::Vhdl);
        assert_ne!(v.legalize("signal"), "signal");
        let mut ver = NameTable::new(Dialect::Verilog);
        assert_ne!(ver.legalize("module"), "module");
        assert_ne!(ver.legalize("wire"), "wire");
    }

    #[test]
    fn vhdl_case_insensitive_collisions() {
        let mut t = NameTable::new(Dialect::Vhdl);
        let a = t.legalize("Net").to_owned();
        let b = t.legalize("net").to_owned();
        assert_ne!(a.to_ascii_lowercase(), b.to_ascii_lowercase());
    }

    #[test]
    fn leading_digit_handled() {
        let mut t = NameTable::new(Dialect::Verilog);
        let n = t.legalize("3state").to_owned();
        assert!(n.starts_with('n'));
    }

    #[test]
    fn injective_over_colliding_sources() {
        let mut t = NameTable::new(Dialect::Edif);
        let names = ["a[0]", "a_0", "a 0", "a/0"];
        let mut legal: Vec<String> = names.iter().map(|n| t.legalize(n).to_owned()).collect();
        legal.sort();
        legal.dedup();
        assert_eq!(legal.len(), names.len());
    }

    #[test]
    fn empty_and_symbolic_sources() {
        let mut t = NameTable::new(Dialect::Vhdl);
        assert!(!t.legalize("").is_empty());
        assert!(!t.legalize("___").is_empty());
        assert!(!t.legalize("[]").is_empty());
    }
}
