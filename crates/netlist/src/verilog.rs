//! Flat structural Verilog-2001 netlist generation.
//!
//! The paper notes JHDL was gaining Verilog output alongside EDIF and
//! VHDL; this writer completes that set. Output is a single flattened
//! module instantiating technology primitives.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;

use ipd_hdl::{Circuit, FlatKind, FlatNetlist, PortDir};

use crate::error::NetlistError;
use crate::names::{Dialect, NameTable};

/// Generates flat structural Verilog for a circuit as a `String`.
///
/// # Errors
///
/// Propagates flattening errors.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, PortSpec};
/// use ipd_netlist::verilog_string;
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("top");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// ctx.inv(a, y)?;
/// let verilog = verilog_string(&circuit)?;
/// assert!(verilog.contains("module top"));
/// # Ok(())
/// # }
/// ```
pub fn verilog_string(circuit: &Circuit) -> Result<String, NetlistError> {
    let flat = FlatNetlist::build(circuit)?;
    Ok(emit(&flat))
}

/// Writes flat structural Verilog for a circuit.
///
/// A mut reference can be passed as the writer.
///
/// # Errors
///
/// Propagates flattening and I/O errors.
pub fn write_verilog<W: Write>(circuit: &Circuit, mut writer: W) -> Result<(), NetlistError> {
    let text = verilog_string(circuit)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Emits Verilog from an already-flattened design.
#[must_use]
pub fn verilog_from_flat(flat: &FlatNetlist) -> String {
    emit(flat)
}

fn emit(flat: &FlatNetlist) -> String {
    let mut names = NameTable::new(Dialect::Verilog);
    let module = names.legalize(flat.design_name()).to_owned();
    let mut out = String::new();

    let mut port_names = Vec::new();
    for port in flat.ports() {
        port_names.push(names.legalize(&port.name).to_owned());
    }
    let _ = writeln!(out, "module {module} ({});", port_names.join(", "));
    for (port, pname) in flat.ports().iter().zip(&port_names) {
        let dir = match port.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        };
        if port.nets.len() == 1 {
            let _ = writeln!(out, "  {dir} {pname};");
        } else {
            let _ = writeln!(out, "  {dir} [{}:0] {pname};", port.nets.len() - 1);
        }
    }

    // Net wires.
    let mut net_names = Vec::with_capacity(flat.net_count());
    for net in flat.nets() {
        net_names.push(names.legalize(&net.name).to_owned());
    }
    for chunk in net_names.chunks(8) {
        let _ = writeln!(out, "  wire {};", chunk.join(", "));
    }

    // Glue.
    for (port, pname) in flat.ports().iter().zip(&port_names) {
        for (bit, net) in port.nets.iter().enumerate() {
            let sel = if port.nets.len() == 1 {
                pname.clone()
            } else {
                format!("{pname}[{bit}]")
            };
            let net = &net_names[net.index()];
            match port.dir {
                PortDir::Input => {
                    let _ = writeln!(out, "  assign {net} = {sel};");
                }
                PortDir::Output => {
                    let _ = writeln!(out, "  assign {sel} = {net};");
                }
                PortDir::Inout => {}
            }
        }
    }

    // Instances.
    let mut type_names: BTreeMap<String, String> = BTreeMap::new();
    let mut inst_table = NameTable::new(Dialect::Verilog);
    for leaf in flat.leaves() {
        match &leaf.kind {
            FlatKind::Primitive(p) if p.name == "gnd" => {
                let o = &leaf.conn("o").expect("gnd output").nets[0];
                let _ = writeln!(out, "  assign {} = 1'b0;", net_names[o.index()]);
                continue;
            }
            FlatKind::Primitive(p) if p.name == "vcc" => {
                let o = &leaf.conn("o").expect("vcc output").nets[0];
                let _ = writeln!(out, "  assign {} = 1'b1;", net_names[o.index()]);
                continue;
            }
            _ => {}
        }
        let (type_name, init) = match &leaf.kind {
            FlatKind::Primitive(p) => (p.name.clone(), p.init),
            FlatKind::BlackBox(name) => (name.clone(), None),
        };
        let tname = type_names
            .entry(type_name.clone())
            .or_insert_with(|| {
                let mut t = NameTable::new(Dialect::Verilog);
                t.legalize(&type_name).to_owned()
            })
            .clone();
        let iname = inst_table.legalize(&leaf.path).to_owned();
        let mut assoc = Vec::new();
        for conn in &leaf.conns {
            if conn.nets.len() == 1 {
                assoc.push(format!(
                    ".{}({})",
                    conn.port,
                    net_names[conn.nets[0].index()]
                ));
            } else {
                // Concatenation, MSB first.
                let bits: Vec<&str> = conn
                    .nets
                    .iter()
                    .rev()
                    .map(|n| net_names[n.index()].as_str())
                    .collect();
                assoc.push(format!(".{}({{{}}})", conn.port, bits.join(", ")));
            }
        }
        let param = match init {
            Some(v) => format!(" #(.INIT(16'h{v:04X}))"),
            None => String::new(),
        };
        let _ = writeln!(out, "  {tname}{param} {iname} ({});", assoc.join(", "));
    }

    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn sample() -> Circuit {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.and2(
            ipd_hdl::Signal::bit_of(a, 0),
            ipd_hdl::Signal::bit_of(a, 1),
            y,
        )
        .unwrap();
        c
    }

    #[test]
    fn module_structure() {
        let text = verilog_string(&sample()).expect("emit");
        assert!(text.contains("module top (a, y);"));
        assert!(text.contains("input [1:0] a;"));
        assert!(text.contains("output y;"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn glue_and_instance() {
        let text = verilog_string(&sample()).expect("emit");
        assert!(text.contains("assign"));
        assert!(text.contains("and2"));
        assert!(text.contains(".i0("));
        assert!(text.contains(".o("));
    }

    #[test]
    fn init_becomes_parameter() {
        let mut c = Circuit::new("lt");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.lut(0x2, &[a.into()], y).unwrap();
        let text = verilog_string(&c).expect("emit");
        assert!(text.contains("#(.INIT(16'h0002))"), "{text}");
    }

    #[test]
    fn multibit_port_concatenation_is_msb_first() {
        let mut c = Circuit::new("mt");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.rom16x1(0x0001, a, y).unwrap();
        let text = verilog_string(&c).expect("emit");
        // .a({a3, a2, a1, a0}) — MSB first means last listed is bit 0.
        let pos3 = text.find("a_3").expect("bit 3 present");
        let pos0 = text.rfind("a_0").expect("bit 0 present");
        assert!(text.contains(".a({"));
        assert!(pos3 < pos0, "MSB listed before LSB inside concat");
    }

    #[test]
    fn constants_become_assigns() {
        let mut c = Circuit::new("ct");
        let mut ctx = c.root_ctx();
        let y = ctx.add_port(PortSpec::output("y", 2)).unwrap();
        ctx.constant(y, &ipd_hdl::LogicVec::from_u64(0b10, 2))
            .unwrap();
        let text = verilog_string(&c).expect("emit");
        assert!(text.contains("1'b0"));
        assert!(text.contains("1'b1"));
    }
}
