//! Hierarchical EDIF 2.0.0 netlist generation.
//!
//! EDIF is the primary interchange format of the paper's applets: the
//! *Netlist* button generates EDIF text into a browsable window. Output
//! is hierarchical — every composite cell becomes an EDIF `cell`
//! definition in the `work` library, technology primitives and black
//! boxes are declared in `external` libraries, and original JHDL names
//! are preserved through EDIF `rename` constructs.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write;

use ipd_hdl::{CellId, CellKind, Circuit, PortDir, WireId};

use crate::error::NetlistError;
use crate::names::{Dialect, NameTable};

/// Generates the EDIF netlist for a circuit as a `String`.
///
/// # Errors
///
/// Fails only on internal formatting errors; see [`write_edif`].
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, PortSpec};
/// use ipd_netlist::edif_string;
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("top");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// ctx.inv(a, y)?;
/// let edif = edif_string(&circuit)?;
/// assert!(edif.starts_with("(edif"));
/// # Ok(())
/// # }
/// ```
pub fn edif_string(circuit: &Circuit) -> Result<String, NetlistError> {
    let mut buf = Vec::new();
    write_edif(circuit, &mut buf)?;
    Ok(String::from_utf8(buf).expect("EDIF output is ASCII"))
}

/// Writes the EDIF netlist for a circuit.
///
/// A mut reference can be passed as the writer.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] on writer failure.
pub fn write_edif<W: Write>(circuit: &Circuit, mut writer: W) -> Result<(), NetlistError> {
    let text = Emitter::new(circuit).emit();
    writer.write_all(text.as_bytes())?;
    Ok(())
}

fn dir_keyword(dir: PortDir) -> &'static str {
    match dir {
        PortDir::Input => "INPUT",
        PortDir::Output => "OUTPUT",
        PortDir::Inout => "INOUT",
    }
}

/// Expanded single-bit port name.
fn bit_port_source(port: &str, bit: u32, width: u32) -> String {
    if width == 1 {
        port.to_owned()
    } else {
        format!("{port}[{bit}]")
    }
}

struct Emitter<'a> {
    circuit: &'a Circuit,
    out: String,
    indent: usize,
    /// Per-cell map from expanded port source name to legal EDIF name.
    port_names: HashMap<CellId, HashMap<String, String>>,
    /// Def name per composite/leaf cell type.
    def_names: HashMap<CellId, String>,
    /// Wires grouped by owning scope.
    wires_by_scope: Vec<Vec<WireId>>,
}

impl<'a> Emitter<'a> {
    fn new(circuit: &'a Circuit) -> Self {
        let mut wires_by_scope = vec![Vec::new(); circuit.cell_count()];
        for wid in circuit.wire_ids() {
            wires_by_scope[circuit.wire(wid).scope().index()].push(wid);
        }
        Emitter {
            circuit,
            out: String::new(),
            indent: 0,
            port_names: HashMap::new(),
            def_names: HashMap::new(),
            wires_by_scope,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, extra: &str) {
        self.indent -= 1;
        self.line(&format!("){extra}"));
    }

    /// `name` or `(rename legal "orig")`.
    fn named(legal: &str, source: &str) -> String {
        if legal == source {
            legal.to_owned()
        } else {
            format!("(rename {legal} \"{source}\")")
        }
    }

    fn emit(mut self) -> String {
        let circuit = self.circuit;
        // Assign port names for every cell and def names.
        let mut def_table = NameTable::new(Dialect::Edif);
        // Reserve primitive names first so leaf defs keep their
        // canonical names.
        let mut prim_defs: Vec<(String, CellId)> = Vec::new();
        let mut bbox_defs: Vec<(String, CellId)> = Vec::new();
        let mut seen_prims: HashMap<String, CellId> = HashMap::new();
        let mut seen_bbox: HashMap<String, CellId> = HashMap::new();
        for id in circuit.cell_ids() {
            let cell = circuit.cell(id);
            match cell.kind() {
                CellKind::Primitive(p) => {
                    let rep = *seen_prims.entry(p.name.clone()).or_insert(id);
                    if rep == id {
                        let legal = def_table.legalize(&p.name).to_owned();
                        prim_defs.push((legal.clone(), id));
                        self.def_names.insert(id, legal);
                    } else {
                        let legal = self.def_names[&rep].clone();
                        self.def_names.insert(id, legal);
                    }
                }
                CellKind::BlackBox => {
                    let rep = *seen_bbox.entry(cell.type_name().to_owned()).or_insert(id);
                    if rep == id {
                        let legal = def_table.legalize(cell.type_name()).to_owned();
                        bbox_defs.push((legal.clone(), id));
                        self.def_names.insert(id, legal);
                    } else {
                        let legal = self.def_names[&rep].clone();
                        self.def_names.insert(id, legal);
                    }
                }
                CellKind::Composite => {
                    let legal = def_table.legalize(cell.type_name()).to_owned();
                    self.def_names.insert(id, legal);
                }
            }
            // Port-bit names per cell.
            let mut table = NameTable::new(Dialect::Edif);
            let mut map = HashMap::new();
            for port in cell.ports() {
                for bit in 0..port.spec.width {
                    let source = bit_port_source(&port.spec.name, bit, port.spec.width);
                    let legal = table.legalize(&source).to_owned();
                    map.insert(source, legal);
                }
            }
            self.port_names.insert(id, map);
        }
        // Share port tables across identical prim/bbox defs: all
        // instances of one primitive have the same interface, so the
        // representative's table applies. (They were built identically
        // above, so nothing to do.)

        let top = def_table.legalize(circuit.name()).to_owned();
        self.open(&format!("(edif {top}"));
        self.line("(edifVersion 2 0 0)");
        self.line("(edifLevel 0)");
        self.line("(keywordMap (keywordLevel 0))");
        self.line("(status (written (timeStamp 2002 6 10 0 0 0) (program \"ipd-netlist\")))");

        // External technology library.
        if !prim_defs.is_empty() {
            self.open("(external virtex");
            self.line("(edifLevel 0)");
            self.line("(technology (numberDefinition))");
            for (legal, rep) in &prim_defs {
                self.emit_interface_only_cell(legal, *rep);
            }
            self.close("");
        }
        // External hidden library for protected black boxes.
        if !bbox_defs.is_empty() {
            self.open("(external hidden");
            self.line("(edifLevel 0)");
            self.line("(technology (numberDefinition))");
            for (legal, rep) in &bbox_defs {
                self.emit_interface_only_cell(legal, *rep);
            }
            self.close("");
        }

        // Work library: composite defs, children before parents.
        self.open("(library work");
        self.line("(edifLevel 0)");
        self.line("(technology (numberDefinition))");
        let mut order = Vec::new();
        post_order(circuit, circuit.root(), &mut order);
        for id in order {
            if circuit.cell(id).kind().is_composite() {
                self.emit_composite_cell(id);
            }
        }
        self.close("");

        let topdef = self.def_names[&circuit.root()].clone();
        self.line(&format!(
            "(design {top} (cellRef {topdef} (libraryRef work)))"
        ));
        self.close("");
        self.out
    }

    fn emit_interface_only_cell(&mut self, legal: &str, rep: CellId) {
        let cell = self.circuit.cell(rep);
        self.open(&format!("(cell {}", Self::named(legal, cell.type_name())));
        self.line("(cellType GENERIC)");
        self.open("(view netlist");
        self.line("(viewType NETLIST)");
        self.open("(interface");
        for port in cell.ports() {
            for bit in 0..port.spec.width {
                let source = bit_port_source(&port.spec.name, bit, port.spec.width);
                let pname = self.port_names[&rep][&source].clone();
                self.line(&format!(
                    "(port {} (direction {}))",
                    Self::named(&pname, &source),
                    dir_keyword(port.spec.dir)
                ));
            }
        }
        self.close(""); // interface
        self.close(""); // view
        self.close(""); // cell
    }

    fn emit_composite_cell(&mut self, id: CellId) {
        let circuit = self.circuit;
        let cell = circuit.cell(id);
        let def = self.def_names[&id].clone();
        self.open(&format!("(cell {}", Self::named(&def, cell.type_name())));
        self.line("(cellType GENERIC)");
        self.open("(view netlist");
        self.line("(viewType NETLIST)");
        // Interface.
        self.open("(interface");
        for port in cell.ports() {
            for bit in 0..port.spec.width {
                let source = bit_port_source(&port.spec.name, bit, port.spec.width);
                let pname = self.port_names[&id][&source].clone();
                self.line(&format!(
                    "(port {} (direction {}))",
                    Self::named(&pname, &source),
                    dir_keyword(port.spec.dir)
                ));
            }
        }
        self.close("");
        // Contents.
        self.open("(contents");
        let mut inst_table = NameTable::new(Dialect::Edif);
        let mut inst_names: HashMap<CellId, String> = HashMap::new();
        for &child in cell.children() {
            let child_cell = circuit.cell(child);
            let iname = inst_table.legalize(child_cell.name()).to_owned();
            inst_names.insert(child, iname.clone());
            let child_def = self.def_names[&child].clone();
            let lib = match child_cell.kind() {
                CellKind::Primitive(_) => "virtex",
                CellKind::BlackBox => "hidden",
                CellKind::Composite => "work",
            };
            let mut inst = format!(
                "(instance {} (viewRef netlist (cellRef {child_def} (libraryRef {lib})))",
                Self::named(&iname, child_cell.name())
            );
            if let CellKind::Primitive(p) = child_cell.kind() {
                if let Some(init) = p.init {
                    let _ = write!(inst, " (property INIT (string \"{init:X}\"))");
                }
            }
            if let Some(rloc) = child_cell.rloc() {
                let _ = write!(inst, " (property RLOC (string \"{rloc}\"))");
            }
            inst.push(')');
            self.line(&inst);
        }
        // Connectivity: for every wire bit in this scope, collect the
        // port references that join it.
        let mut joins: HashMap<(WireId, u32), Vec<String>> = HashMap::new();
        // The cell's own ports connect through their inner wires.
        for port in cell.ports() {
            let Some(inner) = port.inner else { continue };
            for bit in 0..port.spec.width {
                let source = bit_port_source(&port.spec.name, bit, port.spec.width);
                let pname = self.port_names[&id][&source].clone();
                joins
                    .entry((inner, bit))
                    .or_default()
                    .push(format!("(portRef {pname})"));
            }
        }
        // Child ports connect through their outer bindings.
        for &child in cell.children() {
            let child_cell = circuit.cell(child);
            let iname = &inst_names[&child];
            // Representative cell for the port-name table: prim/bbox
            // instances share their representative's interface, which
            // was built identically, so the child's own table works.
            for port in child_cell.ports() {
                let Some(outer) = port.outer.as_ref() else {
                    continue;
                };
                for (k, (w, b)) in outer.bits().enumerate() {
                    let source = bit_port_source(&port.spec.name, k as u32, port.spec.width);
                    let pname = self.port_names[&child][&source].clone();
                    joins
                        .entry((w, b))
                        .or_default()
                        .push(format!("(portRef {pname} (instanceRef {iname}))"));
                }
            }
        }
        let mut net_table = NameTable::new(Dialect::Edif);
        let scope_wires = self.wires_by_scope[id.index()].clone();
        for wid in scope_wires {
            let wire = circuit.wire(wid);
            for bit in 0..wire.width() {
                let Some(refs) = joins.get(&(wid, bit)) else {
                    continue;
                };
                if refs.is_empty() {
                    continue;
                }
                let source = if wire.width() == 1 {
                    wire.name().to_owned()
                } else {
                    format!("{}[{bit}]", wire.name())
                };
                let nname = net_table.legalize(&source).to_owned();
                self.line(&format!(
                    "(net {} (joined {}))",
                    Self::named(&nname, &source),
                    refs.join(" ")
                ));
            }
        }
        self.close(""); // contents
        self.close(""); // view
        self.close(""); // cell
    }
}

fn post_order(circuit: &Circuit, id: CellId, out: &mut Vec<CellId>) {
    for &child in circuit.cell(id).children() {
        post_order(circuit, child, out);
    }
    out.push(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexpr::SExpr;
    use ipd_hdl::{FnGenerator, PortSpec, Signal};
    use ipd_techlib::LogicCtx;

    fn two_level() -> Circuit {
        let inner = FnGenerator::new(
            "stage",
            vec![PortSpec::input("i", 2), PortSpec::output("o", 1)],
            |ctx| {
                let i = ctx.port("i")?;
                let o = ctx.port("o")?;
                ctx.and2(Signal::bit_of(i, 0), Signal::bit_of(i, 1), o)?;
                Ok(())
            },
        );
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.instantiate(&inner, "u0", &[("i", a.into()), ("o", y.into())])
            .unwrap();
        c
    }

    #[test]
    fn edif_reparses() {
        let edif = edif_string(&two_level()).expect("emit");
        let tree = SExpr::parse(&edif).expect("parse generated EDIF");
        assert_eq!(tree.head(), Some("edif"));
    }

    #[test]
    fn edif_structure_matches_circuit() {
        let c = two_level();
        let edif = edif_string(&c).expect("emit");
        let tree = SExpr::parse(&edif).expect("parse");
        // One external prim def (and2) + two work defs (stage, top).
        let cells = tree.find_all("cell");
        assert_eq!(cells.len(), 3);
        let instances = tree.find_all("instance");
        assert_eq!(instances.len(), 2); // u0 in top, and2 in stage
                                        // Primitive instance references virtex library.
        let libs: Vec<_> = tree
            .find_all("libraryRef")
            .iter()
            .map(|l| l.items()[1].as_str().unwrap().to_owned())
            .collect();
        assert!(libs.contains(&"virtex".to_owned()));
        assert!(libs.contains(&"work".to_owned()));
        // Design points at top.
        let design = tree.find_all("design");
        assert_eq!(design.len(), 1);
    }

    #[test]
    fn multibit_ports_expand_with_rename() {
        let edif = edif_string(&two_level()).expect("emit");
        assert!(edif.contains("(rename a_0_ \"a[0]\")") || edif.contains("\"a[0]\""));
        let tree = SExpr::parse(&edif).expect("parse");
        let ports = tree.find_all("port");
        // top: a[0], a[1], y ; stage: i[0], i[1], o ; and2: i0, i1, o
        assert_eq!(ports.len(), 9);
    }

    #[test]
    fn init_property_emitted() {
        let mut c = Circuit::new("lut_top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.lut(0x2, &[a.into()], y).unwrap();
        let edif = edif_string(&c).expect("emit");
        assert!(edif.contains("(property INIT (string \"2\"))"), "{edif}");
    }

    #[test]
    fn nets_join_parent_and_child_ports() {
        let edif = edif_string(&two_level()).expect("emit");
        let tree = SExpr::parse(&edif).expect("parse");
        let nets = tree.find_all("net");
        // stage def: i[0], i[1], o nets; top def: a[0], a[1], y nets.
        assert_eq!(nets.len(), 6);
        for net in nets {
            let joined = net.child("joined").expect("joined");
            assert!(!joined.items().is_empty());
        }
    }

    #[test]
    fn black_box_goes_to_hidden_library() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.black_box(
            "secret_ip",
            vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
            "u0",
            &[("i", a.into()), ("o", y.into())],
        )
        .unwrap();
        let edif = edif_string(&c).expect("emit");
        assert!(edif.contains("(external hidden"));
        assert!(edif.contains("secret_ip"));
    }
}
