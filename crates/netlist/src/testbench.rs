//! Verilog testbench generation — the bridge into a customer's
//! conventional simulation flow.
//!
//! The paper integrates the JHDL black-box simulator with a Verilog
//! simulation through a PLI wrapper (§4.2, ref [8]). This generator is
//! the static counterpart: from a circuit and a set of recorded
//! stimulus/response vectors it emits a self-checking Verilog
//! testbench that replays the applet session inside the customer's own
//! simulator, against the delivered structural netlist.

use std::fmt::Write as _;

use ipd_hdl::{Circuit, FlatNetlist, LogicVec, PortDir};

use crate::error::NetlistError;
use crate::names::{Dialect, NameTable};

/// One recorded testbench vector: values to apply, values to expect.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestVector {
    /// `(port, value)` pairs applied before the clock edge.
    pub inputs: Vec<(String, LogicVec)>,
    /// `(port, value)` pairs checked after settling.
    pub expected: Vec<(String, LogicVec)>,
}

impl TestVector {
    /// An empty vector.
    #[must_use]
    pub fn new() -> Self {
        TestVector::default()
    }

    /// Adds an input assignment.
    #[must_use]
    pub fn set(mut self, port: impl Into<String>, value: LogicVec) -> Self {
        self.inputs.push((port.into(), value));
        self
    }

    /// Adds an expected output.
    #[must_use]
    pub fn expect(mut self, port: impl Into<String>, value: LogicVec) -> Self {
        self.expected.push((port.into(), value));
        self
    }
}

/// Generates a self-checking Verilog testbench for a circuit.
///
/// The testbench declares the DUT's ports, instantiates the module the
/// Verilog netlister emits for the same circuit, applies each vector
/// on successive clock cycles, `$display`s mismatches and finishes
/// with a pass/fail summary. `clock_port` names the clock input, if
/// any.
///
/// # Errors
///
/// Propagates flattening failures.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, LogicVec, PortSpec};
/// use ipd_netlist::{testbench_verilog, TestVector};
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("dut");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// ctx.inv(a, y)?;
/// let vectors = vec![
///     TestVector::new().set("a", LogicVec::from_u64(0, 1)).expect("y", LogicVec::from_u64(1, 1)),
///     TestVector::new().set("a", LogicVec::from_u64(1, 1)).expect("y", LogicVec::from_u64(0, 1)),
/// ];
/// let tb = testbench_verilog(&circuit, &vectors, None)?;
/// assert!(tb.contains("module dut_tb"));
/// assert!(tb.contains("$finish"));
/// # Ok(())
/// # }
/// ```
pub fn testbench_verilog(
    circuit: &Circuit,
    vectors: &[TestVector],
    clock_port: Option<&str>,
) -> Result<String, NetlistError> {
    let flat = FlatNetlist::build(circuit)?;
    let mut names = NameTable::new(Dialect::Verilog);
    let dut = names.legalize(flat.design_name()).to_owned();
    let mut out = String::new();
    let _ = writeln!(out, "`timescale 1ns/1ps");
    let _ = writeln!(out, "module {dut}_tb;");
    // Port declarations.
    let mut port_names = Vec::new();
    for port in flat.ports() {
        let pname = names.legalize(&port.name).to_owned();
        let width = port.nets.len();
        let range = if width == 1 {
            String::new()
        } else {
            format!("[{}:0] ", width - 1)
        };
        match port.dir {
            PortDir::Input => {
                let _ = writeln!(out, "  reg {range}{pname};");
            }
            _ => {
                let _ = writeln!(out, "  wire {range}{pname};");
            }
        }
        port_names.push((port.name.clone(), pname, port.dir));
    }
    let _ = writeln!(out, "  integer errors = 0;");
    // DUT instance.
    let assoc: Vec<String> = port_names
        .iter()
        .map(|(_, p, _)| format!(".{p}({p})"))
        .collect();
    let _ = writeln!(out, "  {dut} dut ({});", assoc.join(", "));
    // Clock.
    let clock = clock_port.map(|c| {
        port_names
            .iter()
            .find(|(orig, _, _)| orig == c)
            .map_or_else(|| c.to_owned(), |(_, legal, _)| legal.clone())
    });
    if let Some(clock) = &clock {
        let _ = writeln!(out, "  always #5 {clock} = ~{clock};");
    }
    // Stimulus.
    let _ = writeln!(out, "  initial begin");
    let _ = writeln!(out, "    $dumpfile(\"{dut}_tb.vcd\");");
    let _ = writeln!(out, "    $dumpvars(0, {dut}_tb);");
    if let Some(clock) = &clock {
        let _ = writeln!(out, "    {clock} = 0;");
    }
    let lookup = |orig: &str| -> Option<&(String, String, PortDir)> {
        port_names.iter().find(|(o, _, _)| o == orig)
    };
    for (i, vector) in vectors.iter().enumerate() {
        let _ = writeln!(out, "    // vector {i}");
        for (port, value) in &vector.inputs {
            if let Some((_, legal, _)) = lookup(port) {
                let _ = writeln!(out, "    {legal} = {}'b{value};", value.width());
            }
        }
        // One clock period (or a settle delay for pure combinational).
        let _ = writeln!(out, "    #10;");
        for (port, value) in &vector.expected {
            if let Some((_, legal, _)) = lookup(port) {
                let _ = writeln!(out, "    if ({legal} !== {}'b{value}) begin", value.width());
                let _ = writeln!(
                    out,
                    "      $display(\"FAIL vector {i}: {legal} = %b (expected {value})\", {legal});"
                );
                let _ = writeln!(out, "      errors = errors + 1;");
                let _ = writeln!(out, "    end");
            }
        }
    }
    let _ = writeln!(
        out,
        "    if (errors == 0) $display(\"PASS: {} vectors\");",
        vectors.len()
    );
    let _ = writeln!(out, "    else $display(\"FAIL: %0d error(s)\", errors);");
    let _ = writeln!(out, "    $finish;");
    let _ = writeln!(out, "  end");
    let _ = writeln!(out, "endmodule");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn dut() -> Circuit {
        let mut c = Circuit::new("and_dut");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        let t = ctx.wire("t", 1);
        ctx.and2(
            ipd_hdl::Signal::bit_of(a, 0),
            ipd_hdl::Signal::bit_of(a, 1),
            t,
        )
        .unwrap();
        ctx.fd(clk, t, y).unwrap();
        c
    }

    #[test]
    fn testbench_structure() {
        let vectors = vec![
            TestVector::new()
                .set("a", LogicVec::from_u64(0b11, 2))
                .expect("y", LogicVec::from_u64(1, 1)),
            TestVector::new()
                .set("a", LogicVec::from_u64(0b01, 2))
                .expect("y", LogicVec::from_u64(0, 1)),
        ];
        let tb = testbench_verilog(&dut(), &vectors, Some("clk")).unwrap();
        assert!(tb.contains("module and_dut_tb;"));
        assert!(tb.contains("reg [1:0] a;"));
        assert!(tb.contains("wire y;"));
        assert!(tb.contains("and_dut dut (.clk(clk), .a(a), .y(y));"));
        assert!(tb.contains("always #5 clk = ~clk;"));
        assert!(tb.contains("a = 2'b11;"));
        assert!(tb.contains("if (y !== 1'b1)"));
        assert!(tb.contains("$dumpvars"));
        assert!(tb.contains("$finish"));
        // Balanced begin/end (lines that are exactly `end`).
        let ends = tb.lines().filter(|l| l.trim() == "end").count();
        assert_eq!(tb.matches("begin").count(), ends);
    }

    #[test]
    fn combinational_testbench_has_no_clock() {
        let mut c = Circuit::new("inv_dut");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        let tb = testbench_verilog(&c, &[], None).unwrap();
        assert!(!tb.contains("always #5"));
        assert!(tb.contains("PASS: 0 vectors"));
    }

    #[test]
    fn unknown_ports_are_skipped_silently() {
        let vectors = vec![TestVector::new()
            .set("missing", LogicVec::from_u64(1, 1))
            .expect("also_missing", LogicVec::from_u64(1, 1))];
        let tb = testbench_verilog(&dut(), &vectors, Some("clk")).unwrap();
        assert!(!tb.contains("missing"));
    }
}
