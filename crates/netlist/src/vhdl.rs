//! Flat structural VHDL-93 netlist generation.
//!
//! JHDL generated structural VHDL alongside EDIF; this writer emits a
//! single flattened architecture (one component instance per technology
//! primitive) which is the form most easily imported into a customer's
//! conventional tool chain.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;

use ipd_hdl::{Circuit, FlatKind, FlatNetlist, PortDir};

use crate::error::NetlistError;
use crate::names::{Dialect, NameTable};

/// Generates flat structural VHDL for a circuit as a `String`.
///
/// # Errors
///
/// Propagates flattening errors.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, PortSpec};
/// use ipd_netlist::vhdl_string;
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("top");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// ctx.inv(a, y)?;
/// let vhdl = vhdl_string(&circuit)?;
/// assert!(vhdl.contains("entity top is"));
/// # Ok(())
/// # }
/// ```
pub fn vhdl_string(circuit: &Circuit) -> Result<String, NetlistError> {
    let flat = FlatNetlist::build(circuit)?;
    Ok(emit(&flat))
}

/// Writes flat structural VHDL for a circuit.
///
/// A mut reference can be passed as the writer.
///
/// # Errors
///
/// Propagates flattening and I/O errors.
pub fn write_vhdl<W: Write>(circuit: &Circuit, mut writer: W) -> Result<(), NetlistError> {
    let text = vhdl_string(circuit)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Emits VHDL from an already-flattened design.
#[must_use]
pub fn vhdl_from_flat(flat: &FlatNetlist) -> String {
    emit(flat)
}

/// `(has INIT generic, ports as (name, dir, width))` per component.
type ComponentInterface = (bool, Vec<(String, PortDir, usize)>);

fn emit(flat: &FlatNetlist) -> String {
    let mut names = NameTable::new(Dialect::Vhdl);
    let entity = names.legalize(flat.design_name()).to_owned();
    let mut out = String::new();
    out.push_str("library ieee;\nuse ieee.std_logic_1164.all;\n\n");

    // Entity.
    let _ = writeln!(out, "entity {entity} is");
    out.push_str("  port (\n");
    let mut port_names: Vec<String> = Vec::new();
    for (i, port) in flat.ports().iter().enumerate() {
        let pname = names.legalize(&port.name).to_owned();
        port_names.push(pname.clone());
        let dir = match port.dir {
            PortDir::Input => "in",
            PortDir::Output => "out",
            PortDir::Inout => "inout",
        };
        let ty = if port.nets.len() == 1 {
            "std_logic".to_owned()
        } else {
            format!("std_logic_vector({} downto 0)", port.nets.len() - 1)
        };
        let sep = if i + 1 == flat.ports().len() { "" } else { ";" };
        let _ = writeln!(out, "    {pname} : {dir} {ty}{sep}");
    }
    out.push_str("  );\n");
    let _ = writeln!(out, "end entity {entity};\n");

    // Architecture.
    let _ = writeln!(out, "architecture structural of {entity} is");

    // Component declarations, one per distinct leaf type.
    let mut components: BTreeMap<String, ComponentInterface> = BTreeMap::new();
    for leaf in flat.leaves() {
        let (type_name, has_init) = match &leaf.kind {
            FlatKind::Primitive(p) => {
                if p.name == "gnd" || p.name == "vcc" {
                    continue; // emitted as constant assignments
                }
                (p.name.clone(), p.init.is_some())
            }
            FlatKind::BlackBox(name) => (name.clone(), false),
        };
        components.entry(type_name).or_insert_with(|| {
            (
                has_init,
                leaf.conns
                    .iter()
                    .map(|c| (c.port.clone(), c.dir, c.nets.len()))
                    .collect(),
            )
        });
    }
    let mut comp_names: BTreeMap<String, String> = BTreeMap::new();
    for (type_name, (has_init, ports)) in &components {
        let cname = names.legalize(type_name).to_owned();
        comp_names.insert(type_name.clone(), cname.clone());
        let _ = writeln!(out, "  component {cname}");
        if *has_init {
            out.push_str("    generic ( init : integer := 0 );\n");
        }
        out.push_str("    port (\n");
        for (i, (pname, dir, width)) in ports.iter().enumerate() {
            let dir = match dir {
                PortDir::Input => "in",
                PortDir::Output => "out",
                PortDir::Inout => "inout",
            };
            let ty = if *width == 1 {
                "std_logic".to_owned()
            } else {
                format!("std_logic_vector({} downto 0)", width - 1)
            };
            let sep = if i + 1 == ports.len() { "" } else { ";" };
            let _ = writeln!(out, "      {pname} : {dir} {ty}{sep}");
        }
        out.push_str("    );\n");
        let _ = writeln!(out, "  end component;");
    }

    // Net signals.
    let mut net_names = Vec::with_capacity(flat.net_count());
    for net in flat.nets() {
        net_names.push(names.legalize(&net.name).to_owned());
    }
    if !net_names.is_empty() {
        // Declare in ranks of 8 per line for readability.
        for chunk in net_names.chunks(8) {
            let _ = writeln!(out, "  signal {} : std_logic;", chunk.join(", "));
        }
    }

    out.push_str("begin\n");

    // Glue: entity ports to/from net signals.
    for (port, pname) in flat.ports().iter().zip(&port_names) {
        for (bit, net) in port.nets.iter().enumerate() {
            let sel = if port.nets.len() == 1 {
                pname.clone()
            } else {
                format!("{pname}({bit})")
            };
            let net = &net_names[net.index()];
            match port.dir {
                PortDir::Input => {
                    let _ = writeln!(out, "  {net} <= {sel};");
                }
                PortDir::Output => {
                    let _ = writeln!(out, "  {sel} <= {net};");
                }
                PortDir::Inout => {}
            }
        }
    }

    // Instances and constant drivers.
    let mut inst_table = NameTable::new(Dialect::Vhdl);
    for leaf in flat.leaves() {
        match &leaf.kind {
            FlatKind::Primitive(p) if p.name == "gnd" => {
                let o = &leaf.conn("o").expect("gnd output").nets[0];
                let _ = writeln!(out, "  {} <= '0';", net_names[o.index()]);
                continue;
            }
            FlatKind::Primitive(p) if p.name == "vcc" => {
                let o = &leaf.conn("o").expect("vcc output").nets[0];
                let _ = writeln!(out, "  {} <= '1';", net_names[o.index()]);
                continue;
            }
            _ => {}
        }
        let (type_name, init) = match &leaf.kind {
            FlatKind::Primitive(p) => (p.name.clone(), p.init),
            FlatKind::BlackBox(name) => (name.clone(), None),
        };
        let cname = &comp_names[&type_name];
        let iname = inst_table.legalize(&leaf.path).to_owned();
        let mut assoc = Vec::new();
        for conn in &leaf.conns {
            if conn.nets.len() == 1 {
                assoc.push(format!(
                    "{} => {}",
                    conn.port,
                    net_names[conn.nets[0].index()]
                ));
            } else {
                for (bit, net) in conn.nets.iter().enumerate() {
                    assoc.push(format!(
                        "{}({bit}) => {}",
                        conn.port,
                        net_names[net.index()]
                    ));
                }
            }
        }
        let generic = match init {
            Some(v) => format!(" generic map ( init => {v} )"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  {iname} : {cname}{generic} port map ( {} );",
            assoc.join(", ")
        );
    }

    out.push_str("end architecture structural;\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn sample() -> Circuit {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.and2(
            ipd_hdl::Signal::bit_of(a, 0),
            ipd_hdl::Signal::bit_of(a, 1),
            y,
        )
        .unwrap();
        c
    }

    #[test]
    fn entity_and_architecture_present() {
        let text = vhdl_string(&sample()).expect("emit");
        assert!(text.contains("entity top is"));
        assert!(text.contains("architecture structural of top is"));
        assert!(text.contains("a : in std_logic_vector(1 downto 0)"));
        assert!(text.contains("y : out std_logic"));
        assert!(text.contains("component and2"));
        assert!(text.contains("end architecture structural;"));
    }

    #[test]
    fn glue_assignments_wire_ports() {
        let text = vhdl_string(&sample()).expect("emit");
        assert!(text.contains("<= a(0);"));
        assert!(text.contains("<= a(1);"));
        assert!(text.contains("y <= "));
    }

    #[test]
    fn init_becomes_generic() {
        let mut c = Circuit::new("lt");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.lut(0x1, &[a.into()], y).unwrap();
        let text = vhdl_string(&c).expect("emit");
        assert!(text.contains("generic ( init : integer := 0 )"));
        assert!(text.contains("generic map ( init => 1 )"));
    }

    #[test]
    fn constants_become_assignments() {
        let mut c = Circuit::new("ct");
        let mut ctx = c.root_ctx();
        let y = ctx.add_port(PortSpec::output("y", 2)).unwrap();
        ctx.constant(y, &ipd_hdl::LogicVec::from_u64(0b01, 2))
            .unwrap();
        let text = vhdl_string(&c).expect("emit");
        assert!(text.contains("<= '0';"));
        assert!(text.contains("<= '1';"));
        assert!(!text.contains("component gnd"));
        assert!(!text.contains("component vcc"));
    }

    #[test]
    fn multibit_prim_ports_use_subelement_association() {
        let mut c = Circuit::new("mt");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.rom16x1(0xBEEF, a, y).unwrap();
        let text = vhdl_string(&c).expect("emit");
        assert!(text.contains("a(0) =>"));
        assert!(text.contains("a(3) =>"));
    }
}
