//! Multi-IP catalogs — the paper's future-work item "developing
//! applets that deliver more than one IP module".
//!
//! A vendor groups several module generators into one [`IpCatalog`];
//! a catalog applet lists them and opens a capability-gated
//! [`AppletSession`] for whichever module the customer selects.

use std::fmt;

use ipd_hdl::Generator;

use crate::deliver::IpExecutable;
use crate::error::CoreError;
use crate::host::AppletHost;
use crate::session::AppletSession;

/// A factory producing fresh generator instances (each session gets
/// its own, so parameter experiments are independent).
pub type GeneratorFactory = Box<dyn Fn() -> Box<dyn Generator> + Send + Sync>;

/// One catalog listing.
pub struct CatalogEntry {
    name: String,
    description: String,
    factory: GeneratorFactory,
}

impl fmt::Debug for CatalogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CatalogEntry")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

impl CatalogEntry {
    /// Module name shown in the catalog page.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }
}

/// A vendor's multi-module IP catalog.
///
/// # Examples
///
/// ```
/// use ipd_core::{AppletHost, CapabilitySet, IpCatalog, IpExecutable};
/// use ipd_modgen::{KcmMultiplier, RippleAdder};
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let mut catalog = IpCatalog::new("byu-arith");
/// catalog.add("kcm8", "8-bit constant multiplier", || {
///     Box::new(KcmMultiplier::new(-56, 8, 12).signed(true))
/// });
/// catalog.add("add16", "16-bit carry-chain adder", || {
///     Box::new(RippleAdder::new(16).with_cout())
/// });
///
/// let exe = IpExecutable::new("byu-arith", "byu", CapabilitySet::evaluation());
/// let host = AppletHost::new();
/// let mut session = catalog.open("add16", &exe, &host)?;
/// session.build()?;
/// assert!(session.schematic()?.contains("muxcy"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct IpCatalog {
    name: String,
    entries: Vec<CatalogEntry>,
}

impl IpCatalog {
    /// An empty catalog.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        IpCatalog {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// The catalog name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a module under a unique name.
    pub fn add<F>(&mut self, name: impl Into<String>, description: impl Into<String>, factory: F)
    where
        F: Fn() -> Box<dyn Generator> + Send + Sync + 'static,
    {
        self.entries.push(CatalogEntry {
            name: name.into(),
            description: description.into(),
            factory: Box::new(factory),
        });
    }

    /// The listings, in registration order.
    #[must_use]
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Renders the catalog page.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = format!("IP catalog: {}\n", self.name);
        for entry in &self.entries {
            out.push_str(&format!("  {:<12} {}\n", entry.name, entry.description));
        }
        out
    }

    /// Opens a session for one module under an executable's capability
    /// set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownModule`] when no entry has the
    /// requested name.
    pub fn open(
        &self,
        module: &str,
        executable: &IpExecutable,
        host: &AppletHost,
    ) -> Result<AppletSession, CoreError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == module)
            .ok_or_else(|| CoreError::UnknownModule {
                module: module.to_owned(),
            })?;
        Ok(AppletSession::new(executable, host, (entry.factory)()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use ipd_modgen::{CountDirection, Counter, KcmMultiplier};

    fn catalog() -> IpCatalog {
        let mut c = IpCatalog::new("byu-lib");
        c.add("kcm", "constant multiplier", || {
            Box::new(KcmMultiplier::new(7, 4, 7))
        });
        c.add("counter", "8-bit up counter", || {
            Box::new(Counter::new(8, CountDirection::Up))
        });
        c
    }

    #[test]
    fn listing_shows_all_modules() {
        let c = catalog();
        let text = c.listing();
        assert!(text.contains("kcm"));
        assert!(text.contains("counter"));
        assert_eq!(c.entries().len(), 2);
        assert_eq!(c.entries()[0].name(), "kcm");
        assert!(!c.entries()[1].description().is_empty());
    }

    #[test]
    fn open_builds_independent_sessions() {
        let c = catalog();
        let exe = IpExecutable::new("byu-lib", "byu", CapabilitySet::evaluation());
        let host = AppletHost::new();
        let mut s1 = c.open("kcm", &exe, &host).unwrap();
        let mut s2 = c.open("counter", &exe, &host).unwrap();
        s1.build().unwrap();
        s2.build().unwrap();
        s1.set_u64("multiplicand", 3).unwrap();
        assert_eq!(s1.peek("product").unwrap().to_u64(), Some(21));
        s2.set_u64("rst", 1).unwrap();
        s2.set_u64("ce", 1).unwrap();
        s2.cycle(1).unwrap();
        s2.set_u64("rst", 0).unwrap();
        s2.cycle(3).unwrap();
        assert_eq!(s2.peek("q").unwrap().to_u64(), Some(3));
    }

    #[test]
    fn unknown_module_rejected() {
        let c = catalog();
        let exe = IpExecutable::new("byu-lib", "byu", CapabilitySet::evaluation());
        let host = AppletHost::new();
        assert!(matches!(
            c.open("nope", &exe, &host),
            Err(CoreError::UnknownModule { .. })
        ));
    }

    #[test]
    fn capability_gating_applies_per_catalog_session() {
        let c = catalog();
        let exe = IpExecutable::new("byu-lib", "byu", CapabilitySet::passive());
        let host = AppletHost::new();
        let mut s = c.open("kcm", &exe, &host).unwrap();
        s.build().unwrap();
        assert!(s.schematic().is_err());
    }
}
