//! Capabilities: what an IP delivery executable lets a customer do.
//!
//! The paper's central idea is that a vendor composes the applet from
//! JHDL tools "on a customer by customer basis", trading customer
//! *visibility* against vendor *protection* (its §3.2 and Figure 2).
//! A [`CapabilitySet`] is that composition, and every operation of an
//! applet session is gated on one [`Capability`].

use std::fmt;

/// One grantable applet function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// Set generator parameters and build instances (the programmatic
    /// circuit generator interface).
    Configure,
    /// Obtain area and timing estimates.
    Estimate,
    /// Browse the circuit structure and hierarchy (schematic viewer).
    StructuralView,
    /// View the relative placement footprint (layout viewer).
    LayoutView,
    /// Run the embedded simulator on the generated circuit.
    Simulate,
    /// Record and view waveforms.
    WaveformView,
    /// Inspect memory contents during simulation.
    MemoryView,
    /// Generate netlists (EDIF/VHDL/Verilog) — actually taking the IP.
    Netlist,
    /// Expose the port-level simulation interface over a socket for
    /// system co-simulation (paper §4.2).
    BlackBoxExport,
    /// View constraint-evaluated timing slack (per-clock summaries and
    /// histograms) without seeing the paths that produce it.
    TimingView,
}

impl Capability {
    /// Every capability, in display order.
    #[must_use]
    pub fn all() -> [Capability; 10] {
        [
            Capability::Configure,
            Capability::Estimate,
            Capability::StructuralView,
            Capability::LayoutView,
            Capability::Simulate,
            Capability::WaveformView,
            Capability::MemoryView,
            Capability::Netlist,
            Capability::BlackBoxExport,
            Capability::TimingView,
        ]
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Capability::Configure => "configure",
            Capability::Estimate => "estimate",
            Capability::StructuralView => "structural-view",
            Capability::LayoutView => "layout-view",
            Capability::Simulate => "simulate",
            Capability::WaveformView => "waveform-view",
            Capability::MemoryView => "memory-view",
            Capability::Netlist => "netlist",
            Capability::BlackBoxExport => "black-box-export",
            Capability::TimingView => "timing-view",
        })
    }
}

/// A set of granted capabilities.
///
/// # Examples
///
/// ```
/// use ipd_core::{Capability, CapabilitySet};
///
/// let passive = CapabilitySet::passive();
/// assert!(passive.allows(Capability::Estimate));
/// assert!(!passive.allows(Capability::Netlist));
/// let licensed = CapabilitySet::licensed();
/// assert!(licensed.is_superset_of(&passive));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapabilitySet(u16);

impl CapabilitySet {
    /// The empty set.
    #[must_use]
    pub fn none() -> Self {
        CapabilitySet(0)
    }

    /// A set from individual capabilities.
    #[must_use]
    pub fn of(caps: &[Capability]) -> Self {
        let mut set = CapabilitySet(0);
        for &c in caps {
            set.0 |= c.bit();
        }
        set
    }

    /// The *passive customer* configuration of the paper's Figure 2
    /// (left): the generator interface plus the circuit estimator.
    #[must_use]
    pub fn passive() -> Self {
        CapabilitySet::of(&[Capability::Configure, Capability::Estimate])
    }

    /// The *evaluation* configuration: everything except taking the
    /// netlist — structure, layout, simulation and waveforms are
    /// visible, but the IP cannot leave the applet.
    #[must_use]
    pub fn evaluation() -> Self {
        CapabilitySet::of(&[
            Capability::Configure,
            Capability::Estimate,
            Capability::StructuralView,
            Capability::LayoutView,
            Capability::Simulate,
            Capability::WaveformView,
            Capability::MemoryView,
            Capability::TimingView,
        ])
    }

    /// The *licensed customer* configuration of the paper's Figure 2
    /// (right): every capability including netlist generation.
    #[must_use]
    pub fn licensed() -> Self {
        CapabilitySet::of(&Capability::all())
    }

    /// The *black-box* configuration of the paper's §4.2: parameters
    /// may be chosen and the simulator driven (locally or over a
    /// socket), but no structure, layout or netlist is exposed.
    #[must_use]
    pub fn black_box() -> Self {
        CapabilitySet::of(&[
            Capability::Configure,
            Capability::Estimate,
            Capability::Simulate,
            Capability::BlackBoxExport,
            Capability::TimingView,
        ])
    }

    /// Whether a capability is granted.
    #[must_use]
    pub fn allows(&self, cap: Capability) -> bool {
        self.0 & cap.bit() != 0
    }

    /// Adds a capability, returning the extended set.
    #[must_use]
    pub fn with(mut self, cap: Capability) -> Self {
        self.0 |= cap.bit();
        self
    }

    /// Removes a capability, returning the reduced set.
    #[must_use]
    pub fn without(mut self, cap: Capability) -> Self {
        self.0 &= !cap.bit();
        self
    }

    /// Whether every capability of `other` is also granted here.
    #[must_use]
    pub fn is_superset_of(&self, other: &CapabilitySet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of granted capabilities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when nothing is granted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over granted capabilities in display order.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        Capability::all().into_iter().filter(|c| self.allows(*c))
    }

    /// Canonical wire encoding for license signing.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Decodes a wire encoding (unknown bits are dropped).
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        let mask: u16 = Capability::all().iter().map(|c| c.bit()).sum();
        CapabilitySet(bits & mask)
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        let names: Vec<String> = self.iter().map(|c| c.to_string()).collect();
        f.write_str(&names.join(", "))
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> Self {
        let mut set = CapabilitySet::none();
        for c in iter {
            set = set.with(c);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_visibility() {
        let passive = CapabilitySet::passive();
        let evaluation = CapabilitySet::evaluation();
        let licensed = CapabilitySet::licensed();
        assert!(evaluation.is_superset_of(&passive));
        assert!(licensed.is_superset_of(&evaluation));
        assert!(!passive.is_superset_of(&evaluation));
        assert!(passive.len() < evaluation.len());
        assert!(evaluation.len() < licensed.len());
    }

    #[test]
    fn black_box_hides_structure() {
        let bb = CapabilitySet::black_box();
        assert!(bb.allows(Capability::Simulate));
        assert!(bb.allows(Capability::BlackBoxExport));
        assert!(!bb.allows(Capability::StructuralView));
        assert!(!bb.allows(Capability::Netlist));
    }

    #[test]
    fn with_without() {
        let set = CapabilitySet::none().with(Capability::Simulate);
        assert!(set.allows(Capability::Simulate));
        assert!(set.without(Capability::Simulate).is_empty());
    }

    #[test]
    fn bits_round_trip() {
        for set in [
            CapabilitySet::passive(),
            CapabilitySet::evaluation(),
            CapabilitySet::licensed(),
            CapabilitySet::black_box(),
        ] {
            assert_eq!(CapabilitySet::from_bits(set.to_bits()), set);
        }
        // Unknown high bits are dropped.
        assert_eq!(CapabilitySet::from_bits(0xFFFF), CapabilitySet::licensed());
    }

    #[test]
    fn display_lists_names() {
        let text = CapabilitySet::passive().to_string();
        assert!(text.contains("configure"));
        assert!(text.contains("estimate"));
        assert_eq!(CapabilitySet::none().to_string(), "(none)");
    }

    #[test]
    fn collect_from_iterator() {
        let set: CapabilitySet = [Capability::Simulate, Capability::Netlist]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
