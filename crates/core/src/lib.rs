//! # ipd-core — capability-gated FPGA IP evaluation and delivery
//!
//! The primary contribution of *IP Delivery for FPGAs Using Applets and
//! JHDL* (Wirthlin & McMurtrey, DAC 2002): vendors deliver FPGA IP as
//! web executables whose functionality — simulation, structural and
//! layout viewing, estimation, netlist generation — is composed per
//! customer, balancing customer *visibility* against vendor
//! *protection*.
//!
//! The pieces, mapped to the paper:
//!
//! - [`Capability`] / [`CapabilitySet`] — the visibility knobs of §3.2,
//!   with the Figure 2 presets ([`CapabilitySet::passive`],
//!   [`CapabilitySet::licensed`]) plus [`CapabilitySet::black_box`]
//!   for §4.2.
//! - [`License`] / [`LicenseAuthority`] — signed capability grants
//!   (HMAC-SHA-256; [`sha256`] and [`hmac_sha256`] are in-repo).
//! - [`AppletServer`] — the vendor web server that serves a
//!   per-profile [`IpExecutable`] and meters access.
//! - [`IpExecutable`] — an executable configuration: capabilities plus
//!   the code bundles they require (the Table 1 partitioning).
//! - [`BundleStore`] / [`AppletServer::fetch`] — compress-once,
//!   content-addressed delivery: bundles are packed at most once per
//!   server, keyed by SHA-256 content digest, and clients revalidate
//!   with digests (HTTP-304 semantics) so repeat visits transfer
//!   nothing.
//! - [`AppletHost`] — the browser sandbox: bundle cache, resource
//!   limits, and the explicit network-permission gate of §4.2.
//! - [`DeliveryService`] / [`DeliveryClient`] — the vendor web server
//!   on a real socket: manifest, conditional fetch, sealed bundles,
//!   lint reports and sealed designs served over the shared
//!   `ipd-wire` transport to many concurrent customers, with the
//!   customer id authenticated in the wire handshake
//!   ([`AppletHost::sync_wire`] drives the same HTTP-304 flow
//!   remotely).
//! - [`AppletSession`] — the Figure 3 interaction surface: *build*,
//!   browse, *cycle*/*reset*, *netlist*; every operation capability
//!   checked.
//! - [`obfuscate`] / [`embed_watermark`] / [`verify_watermark`] — the
//!   §4.3 protection measures.
//! - [`seal_design`] / [`AppletServer::serve_design_sealed`] — the
//!   lint-gated delivery path: a design netlist is sealed to the
//!   customer key only after the `ipd-lint` static analyzer finds no
//!   unwaived error-severity problems, and the surviving
//!   [`SealedDesign`] carries the report for audit.
//! - [`seal_design_verified`] — the equivalence-gated delivery path:
//!   the `ipd-verify` engine proves the design functionally equivalent
//!   to a golden reference netlist before sealing, and the
//!   [`VerifiedDesign`] ships a digest-bound [`EquivCertificate`];
//!   a counterexample refuses delivery with the distinguishing vector.
//!
//! # Example
//!
//! ```
//! use ipd_core::{
//!     AppletHost, AppletServer, AppletSession, Capability, CapabilitySet,
//! };
//! use ipd_modgen::KcmMultiplier;
//!
//! # fn main() -> Result<(), ipd_core::CoreError> {
//! // Vendor side: enroll a passive evaluator and serve their applet.
//! let mut server = AppletServer::new("byu", b"vendor-key".to_vec());
//! server.enroll("acme", "virtex-kcm", CapabilitySet::passive(), 0, 365);
//! let executable = server.serve("acme", 30)?;
//!
//! // Customer side: run the applet in the browser sandbox.
//! let mut host = AppletHost::new();
//! host.load(&executable);
//! let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
//! let mut session = AppletSession::new(&executable, &host, Box::new(kcm));
//! session.build()?;
//! let area = session.estimate_area()?;        // allowed: estimation
//! assert!(area.total.luts > 0);
//! assert!(session.netlist(ipd_netlist::NetlistFormat::Edif).is_err());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capability;
mod catalog;
mod deliver;
mod error;
mod host;
mod license;
mod page;
mod protect;
mod remote;
mod seal;
mod session;
mod sha;
mod store;
mod verified;

pub use capability::{Capability, CapabilitySet};
pub use catalog::{CatalogEntry, GeneratorFactory, IpCatalog};
pub use deliver::{AppletServer, AuditRecord, IpExecutable};
pub use error::CoreError;
pub use host::{AppletHost, ResourceLimits};
pub use license::{License, LicenseAuthority};
pub use page::applet_page;
pub use protect::{embed_watermark, obfuscate, verify_watermark};
pub use remote::{
    delivery_endpoint_name, endpoints as delivery_endpoints, DeliveryClient, DeliveryService,
    RemoteLintReport, RemoteSealedDesign, RunningDelivery,
};
pub use seal::{
    bundle_key, seal, seal_design, seal_design_semantic, seal_design_timed, unseal, SealedDesign,
};
pub use session::AppletSession;
pub use sha::{hmac_sha256, sha256, sha256_parts, to_hex};
pub use store::{
    bundle_digest, BundleDelivery, BundleStore, DeliveryManifest, DeliveryResponse, Digest,
    ManifestEntry, StoreStats,
};
pub use verified::{seal_design_verified, EquivCertificate, VerifiedDesign};
