//! Capability licenses signed by the vendor.
//!
//! "Based on the user's license, a custom applet is presented that
//! offers the appropriate IP evaluation and delivery functionality"
//! (paper §1.1). A [`License`] binds a customer to a capability set and
//! expiry; the [`LicenseAuthority`] holds the vendor key and issues or
//! verifies signatures (HMAC-SHA-256 over a canonical encoding).

use std::fmt;

use crate::capability::CapabilitySet;
use crate::error::CoreError;
use crate::sha::{hmac_sha256, to_hex};

/// A signed capability grant for one customer and one IP product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct License {
    customer: String,
    product: String,
    capabilities: CapabilitySet,
    issued_day: u32,
    expiry_day: u32,
    signature: [u8; 32],
}

impl License {
    /// Customer identifier.
    #[must_use]
    pub fn customer(&self) -> &str {
        &self.customer
    }

    /// Product (IP) identifier, e.g. `"virtex-kcm"`.
    #[must_use]
    pub fn product(&self) -> &str {
        &self.product
    }

    /// The granted capabilities.
    #[must_use]
    pub fn capabilities(&self) -> CapabilitySet {
        self.capabilities
    }

    /// Issue day (days since an arbitrary vendor epoch).
    #[must_use]
    pub fn issued_day(&self) -> u32 {
        self.issued_day
    }

    /// Expiry day (days since the vendor epoch).
    #[must_use]
    pub fn expiry_day(&self) -> u32 {
        self.expiry_day
    }

    /// The signature in hex, for display and audit logs.
    #[must_use]
    pub fn signature_hex(&self) -> String {
        to_hex(&self.signature)
    }

    /// The canonical byte string that is signed.
    fn canonical(&self) -> Vec<u8> {
        format!(
            "license|customer={}|product={}|caps={:#06x}|issued={}|expires={}",
            self.customer,
            self.product,
            self.capabilities.to_bits(),
            self.issued_day,
            self.expiry_day
        )
        .into_bytes()
    }
}

impl fmt::Display for License {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "license for {} on {} [{}] days {}..{} sig {}",
            self.customer,
            self.product,
            self.capabilities,
            self.issued_day,
            self.expiry_day,
            &self.signature_hex()[..16]
        )
    }
}

/// The vendor-side signer and verifier.
///
/// # Examples
///
/// ```
/// use ipd_core::{CapabilitySet, LicenseAuthority};
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let authority = LicenseAuthority::new(b"vendor-secret".to_vec());
/// let license = authority.issue("acme", "virtex-kcm", CapabilitySet::licensed(), 100, 465);
/// authority.verify(&license, 200)?; // valid on day 200
/// assert!(authority.verify(&license, 500).is_err()); // expired
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LicenseAuthority {
    key: Vec<u8>,
}

impl LicenseAuthority {
    /// An authority holding the vendor signing key.
    #[must_use]
    pub fn new(key: Vec<u8>) -> Self {
        LicenseAuthority { key }
    }

    /// Issues a signed license.
    #[must_use]
    pub fn issue(
        &self,
        customer: impl Into<String>,
        product: impl Into<String>,
        capabilities: CapabilitySet,
        issued_day: u32,
        expiry_day: u32,
    ) -> License {
        let mut license = License {
            customer: customer.into(),
            product: product.into(),
            capabilities,
            issued_day,
            expiry_day,
            signature: [0; 32],
        };
        license.signature = hmac_sha256(&self.key, &license.canonical());
        license
    }

    /// Verifies a license's signature and expiry as of `today`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LicenseInvalid`] for bad signatures and
    /// [`CoreError::LicenseExpired`] past expiry.
    pub fn verify(&self, license: &License, today: u32) -> Result<(), CoreError> {
        let expected = hmac_sha256(&self.key, &license.canonical());
        // Constant-time-ish comparison (not security-critical in a
        // reproduction, but cheap to do right).
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(&license.signature) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(CoreError::LicenseInvalid {
                reason: "signature mismatch".to_owned(),
            });
        }
        if today > license.expiry_day {
            return Err(CoreError::LicenseExpired {
                expiry_day: license.expiry_day,
                today,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::Capability;

    fn authority() -> LicenseAuthority {
        LicenseAuthority::new(b"the-vendor-key".to_vec())
    }

    #[test]
    fn issue_and_verify() {
        let auth = authority();
        let lic = auth.issue("acme", "kcm", CapabilitySet::evaluation(), 10, 100);
        auth.verify(&lic, 50).expect("valid");
        assert_eq!(lic.customer(), "acme");
        assert!(lic.capabilities().allows(Capability::Simulate));
    }

    #[test]
    fn tampered_capabilities_rejected() {
        let auth = authority();
        let lic = auth.issue("acme", "kcm", CapabilitySet::passive(), 10, 100);
        // Forge: claim licensed capabilities with the old signature.
        let mut forged = lic.clone();
        forged.capabilities = CapabilitySet::licensed();
        assert!(matches!(
            auth.verify(&forged, 50),
            Err(CoreError::LicenseInvalid { .. })
        ));
    }

    #[test]
    fn tampered_customer_rejected() {
        let auth = authority();
        let lic = auth.issue("acme", "kcm", CapabilitySet::licensed(), 10, 100);
        let mut forged = lic.clone();
        forged.customer = "evil".to_owned();
        assert!(auth.verify(&forged, 50).is_err());
    }

    #[test]
    fn expiry_enforced() {
        let auth = authority();
        let lic = auth.issue("acme", "kcm", CapabilitySet::licensed(), 10, 100);
        assert!(matches!(
            auth.verify(&lic, 101),
            Err(CoreError::LicenseExpired { .. })
        ));
        auth.verify(&lic, 100).expect("valid on the last day");
    }

    #[test]
    fn wrong_key_rejects() {
        let lic = authority().issue("acme", "kcm", CapabilitySet::licensed(), 10, 100);
        let other = LicenseAuthority::new(b"other-key".to_vec());
        assert!(other.verify(&lic, 50).is_err());
    }

    #[test]
    fn display_is_informative() {
        let lic = authority().issue("acme", "kcm", CapabilitySet::passive(), 10, 100);
        let text = lic.to_string();
        assert!(text.contains("acme"));
        assert!(text.contains("configure"));
    }
}
