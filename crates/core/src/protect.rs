//! IP protection passes: obfuscation and watermarking.
//!
//! The paper (§4.3) lists class-file obfuscation and watermarking [7]
//! as measures a vendor adds when shipping IP in applet form. Here the
//! corresponding circuit-level passes are:
//!
//! - [`obfuscate`] — rebuilds the circuit as a flat, generically-named
//!   netlist: hierarchy, instance names, wire names and properties all
//!   disappear; only the primary interface and the logic remain (with
//!   absolute placement preserved so timing is unaffected).
//! - [`embed_watermark`] / [`verify_watermark`] — hides a keyed
//!   customer fingerprint in ROM primitive contents. The mark is
//!   function-neutral, survives obfuscation (primitive `INIT`s are
//!   preserved) and netlist regeneration, and identifies the customer
//!   a leaked netlist was delivered to.

use ipd_hdl::{CellKind, Circuit, FlatKind, FlatNetlist, LogicVec, PortDir, PortSpec, Signal};
use ipd_techlib::LogicCtx;

use crate::error::CoreError;
use crate::sha::hmac_sha256;

/// Rebuilds a circuit as a flat netlist with meaningless names.
///
/// The result is functionally identical (same ports, same logic, same
/// placement) but exposes no hierarchy, no generator names and no
/// properties — what a customer of a protected executable would see if
/// they reverse-engineered the delivered instance.
///
/// # Errors
///
/// Propagates flattening and reconstruction errors.
///
/// # Examples
///
/// ```
/// use ipd_core::obfuscate;
/// use ipd_hdl::Circuit;
/// use ipd_modgen::KcmMultiplier;
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
/// let clear = Circuit::from_generator(&kcm)?;
/// let hidden = obfuscate(&clear)?;
/// assert_eq!(hidden.depth(), 2); // ports + primitives, nothing else
/// # Ok(())
/// # }
/// ```
pub fn obfuscate(circuit: &Circuit) -> Result<Circuit, CoreError> {
    let flat = FlatNetlist::build(circuit)?;
    let mut out = Circuit::new("ip");
    let mut ctx = out.root_ctx();
    // Primary interface is preserved verbatim (the customer integrates
    // against it).
    let mut port_wires = Vec::new();
    for port in flat.ports() {
        let wire = ctx.add_port(PortSpec::new(
            port.name.clone(),
            port.dir,
            port.nets.len() as u32,
        ))?;
        port_wires.push(wire);
    }
    // One anonymous wire per net.
    let mut net_wires = Vec::with_capacity(flat.net_count());
    for k in 0..flat.net_count() {
        net_wires.push(ctx.wire(&format!("n{k}"), 1));
    }
    // Port glue through buffers, so port nets and internal nets stay
    // single-driver.
    for (port, &wire) in flat.ports().iter().zip(&port_wires) {
        for (bit, net) in port.nets.iter().enumerate() {
            let pbit = Signal::bit_of(wire, bit as u32);
            let nbit: Signal = net_wires[net.index()].into();
            match port.dir {
                PortDir::Input => {
                    ctx.buffer(pbit, nbit)?;
                }
                PortDir::Output => {
                    ctx.buffer(nbit, pbit)?;
                }
                PortDir::Inout => {}
            }
        }
    }
    // Leaves with generic names; absolute placement preserved.
    for (k, leaf) in flat.leaves().iter().enumerate() {
        let ports: Vec<PortSpec> = leaf
            .conns
            .iter()
            .map(|c| PortSpec::new(c.port.clone(), c.dir, c.nets.len() as u32))
            .collect();
        let conns: Vec<(String, Signal)> = leaf
            .conns
            .iter()
            .map(|c| {
                let sig = Signal::concat(c.nets.iter().map(|n| Signal::from(net_wires[n.index()])));
                (c.port.clone(), sig)
            })
            .collect();
        let conn_refs: Vec<(&str, Signal)> =
            conns.iter().map(|(n, s)| (n.as_str(), s.clone())).collect();
        let cell = match &leaf.kind {
            FlatKind::Primitive(prim) => {
                ctx.leaf(prim.clone(), ports, &format!("u{k}"), &conn_refs)?
            }
            FlatKind::BlackBox(_) => ctx.black_box("bb", ports, &format!("u{k}"), &conn_refs)?,
        };
        if let Some(loc) = leaf.loc {
            ctx.set_rloc(cell, loc);
        }
    }
    Ok(out)
}

/// Derives the four 16-bit ROM words that fingerprint a customer.
fn watermark_words(customer: &str, product: &str, key: &[u8]) -> [u16; 4] {
    let mac = hmac_sha256(key, format!("wm|{customer}|{product}").as_bytes());
    [
        u16::from_be_bytes([mac[0], mac[1]]),
        u16::from_be_bytes([mac[2], mac[3]]),
        u16::from_be_bytes([mac[4], mac[5]]),
        u16::from_be_bytes([mac[6], mac[7]]),
    ]
}

/// Embeds a keyed customer watermark into a circuit.
///
/// Four `ROM16X1` primitives with constant addresses are added; their
/// `INIT` contents carry an HMAC of the customer and product ids. The
/// extra logic never affects the IP's outputs.
///
/// # Errors
///
/// Propagates construction errors.
pub fn embed_watermark(
    circuit: &mut Circuit,
    customer: &str,
    product: &str,
    key: &[u8],
) -> Result<(), CoreError> {
    let words = watermark_words(customer, product, key);
    let mut ctx = circuit.root_ctx();
    let addr = ctx.wire("wm_addr", 4);
    ctx.constant(addr, &LogicVec::zeros(4))?;
    let taps = ctx.wire("wm", 4);
    for (k, &word) in words.iter().enumerate() {
        ctx.rom16x1(word, addr, Signal::bit_of(taps, k as u32))?;
    }
    Ok(())
}

/// Checks whether a circuit carries the watermark of a given customer.
///
/// Works on the original, on an [`obfuscate`]d rebuild, and on a
/// circuit reconstructed from a regenerated netlist, because only
/// primitive kinds and `INIT` contents are consulted.
#[must_use]
pub fn verify_watermark(circuit: &Circuit, customer: &str, product: &str, key: &[u8]) -> bool {
    let words = watermark_words(customer, product, key);
    let mut found = [false; 4];
    for id in circuit.cell_ids() {
        if let CellKind::Primitive(p) = circuit.cell(id).kind() {
            if p.name == "rom16x1" {
                if let Some(init) = p.init {
                    for (k, &w) in words.iter().enumerate() {
                        if init == u64::from(w) {
                            found[k] = true;
                        }
                    }
                }
            }
        }
    }
    found.iter().all(|&f| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_modgen::KcmMultiplier;
    use ipd_sim::Simulator;

    fn kcm_circuit() -> Circuit {
        Circuit::from_generator(&KcmMultiplier::new(-56, 8, 12).signed(true)).unwrap()
    }

    #[test]
    fn obfuscation_preserves_function() {
        let clear = kcm_circuit();
        let hidden = obfuscate(&clear).unwrap();
        let mut s1 = Simulator::new(&clear).unwrap();
        let mut s2 = Simulator::new(&hidden).unwrap();
        for x in [-128i64, -1, 0, 5, 127] {
            s1.set_i64("multiplicand", x).unwrap();
            s2.set_i64("multiplicand", x).unwrap();
            assert_eq!(
                s1.peek("product").unwrap(),
                s2.peek("product").unwrap(),
                "x={x}"
            );
        }
    }

    #[test]
    fn obfuscation_hides_structure() {
        // The FIR instantiates KCM children, so the clear netlist is
        // hierarchical (the KCM alone is a flat carry-chain design).
        let clear =
            Circuit::from_generator(&ipd_modgen::FirFilter::new(vec![-2, 5, 9], 6).unwrap())
                .unwrap();
        let hidden = obfuscate(&clear).unwrap();
        assert!(clear.depth() > 2, "original is hierarchical");
        assert_eq!(hidden.depth(), 2, "obfuscated is flat");
        // No original names survive.
        for id in hidden.cell_ids() {
            let name = hidden.cell(id).name().to_owned();
            assert!(
                !name.contains("kcm") && !name.contains("pp") && !name.contains("sum"),
                "leaked name {name}"
            );
            assert!(
                hidden.cell(id).properties().is_empty(),
                "properties stripped"
            );
        }
    }

    #[test]
    fn obfuscation_preserves_interface_and_placement() {
        let clear = kcm_circuit();
        let hidden = obfuscate(&clear).unwrap();
        let ports: Vec<_> = hidden
            .cell(hidden.root())
            .ports()
            .iter()
            .map(|p| p.spec.name.clone())
            .collect();
        assert_eq!(ports, ["multiplicand", "product"]);
        let placed = |c: &Circuit| {
            c.cell_ids()
                .filter(|&id| c.cell(id).is_primitive() && c.absolute_rloc(id).is_some())
                .count()
        };
        assert_eq!(placed(&hidden), placed(&clear));
    }

    #[test]
    fn pipelined_circuit_survives_obfuscation() {
        let kcm = KcmMultiplier::new(77, 8, 15).pipelined(true);
        let clear = Circuit::from_generator(&kcm).unwrap();
        let hidden = obfuscate(&clear).unwrap();
        let mut sim = Simulator::new(&hidden).unwrap();
        sim.set_u64("multiplicand", 9).unwrap();
        sim.cycle(u64::from(kcm.latency())).unwrap();
        assert_eq!(sim.peek("product").unwrap().to_u64(), Some(77 * 9));
    }

    #[test]
    fn watermark_embeds_and_verifies() {
        let mut circuit = kcm_circuit();
        embed_watermark(&mut circuit, "acme", "kcm", b"key").unwrap();
        assert!(verify_watermark(&circuit, "acme", "kcm", b"key"));
        assert!(!verify_watermark(&circuit, "other", "kcm", b"key"));
        assert!(!verify_watermark(&circuit, "acme", "kcm", b"wrong-key"));
        assert!(!verify_watermark(&kcm_circuit(), "acme", "kcm", b"key"));
    }

    #[test]
    fn watermark_is_function_neutral() {
        let clear = kcm_circuit();
        let mut marked = kcm_circuit();
        embed_watermark(&mut marked, "acme", "kcm", b"key").unwrap();
        let mut s1 = Simulator::new(&clear).unwrap();
        let mut s2 = Simulator::new(&marked).unwrap();
        for x in [-77i64, 0, 33] {
            s1.set_i64("multiplicand", x).unwrap();
            s2.set_i64("multiplicand", x).unwrap();
            assert_eq!(s1.peek("product").unwrap(), s2.peek("product").unwrap());
        }
    }

    #[test]
    fn watermark_survives_obfuscation() {
        let mut circuit = kcm_circuit();
        embed_watermark(&mut circuit, "acme", "kcm", b"key").unwrap();
        let hidden = obfuscate(&circuit).unwrap();
        assert!(verify_watermark(&hidden, "acme", "kcm", b"key"));
        assert!(!verify_watermark(&hidden, "mallory", "kcm", b"key"));
    }

    #[test]
    fn distinct_customers_get_distinct_marks() {
        let a = watermark_words("acme", "kcm", b"key");
        let b = watermark_words("bolt", "kcm", b"key");
        assert_ne!(a, b);
    }
}
