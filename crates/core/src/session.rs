//! The applet session: the interactive surface of an IP delivery
//! executable, with every operation gated by the executable's
//! capability set.
//!
//! This is the paper's Figure 3 made programmatic: choose parameters,
//! press *build*, browse the schematic, *cycle*/*reset* the simulator,
//! and — for licensed users — press *netlist*.

use ipd_estimate::{AreaReport, SlackSummary, StaReport, TimingConstraints, TimingReport};
use ipd_hdl::{Circuit, Generator, LogicVec};
use ipd_netlist::NetlistFormat;
use ipd_sim::Simulator;

use crate::capability::Capability;
use crate::deliver::IpExecutable;
use crate::error::CoreError;
use crate::host::{AppletHost, ResourceLimits};

/// An interactive IP evaluation session inside an applet host.
///
/// # Examples
///
/// The paper's KCM applet flow:
///
/// ```
/// use ipd_core::{AppletHost, AppletSession, CapabilitySet, IpExecutable};
/// use ipd_modgen::KcmMultiplier;
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let exe = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::licensed());
/// let mut host = AppletHost::new();
/// host.load(&exe);
/// let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
/// let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
/// session.build()?;
/// let schematic = session.schematic()?;          // structural view
/// session.set_i64("multiplicand", 3)?;           // simulate
/// let product = session.peek("product")?;
/// let edif = session.netlist(ipd_netlist::NetlistFormat::Edif)?;
/// assert!(schematic.contains("kcm"));
/// assert!(edif.starts_with("(edif"));
/// assert_eq!(product.to_i64(), Some(-42)); // (-56 × 3) >> 2: top 12 of 14 bits
/// # Ok(())
/// # }
/// ```
pub struct AppletSession {
    executable: IpExecutable,
    limits: ResourceLimits,
    generator: Box<dyn Generator>,
    circuit: Option<Circuit>,
    simulator: Option<Simulator>,
}

impl std::fmt::Debug for AppletSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppletSession")
            .field("executable", &self.executable)
            .field("generator", &self.generator.type_name())
            .field("built", &self.circuit.is_some())
            .finish()
    }
}

impl AppletSession {
    /// Opens a session for a generator under an executable's
    /// capability set, inside a host's sandbox limits.
    #[must_use]
    pub fn new(
        executable: &IpExecutable,
        host: &AppletHost,
        generator: Box<dyn Generator>,
    ) -> Self {
        AppletSession {
            executable: executable.clone(),
            limits: host.limits(),
            generator,
            circuit: None,
            simulator: None,
        }
    }

    /// The executable configuration this session runs under.
    #[must_use]
    pub fn executable(&self) -> &IpExecutable {
        &self.executable
    }

    /// The generator's type name (shown in the applet's title bar).
    #[must_use]
    pub fn generator_name(&self) -> String {
        self.generator.type_name()
    }

    /// The IP's port interface — always visible; it is what the
    /// customer integrates against.
    #[must_use]
    pub fn interface(&self) -> Vec<ipd_hdl::PortSpec> {
        self.generator.ports()
    }

    fn require(&self, cap: Capability) -> Result<(), CoreError> {
        if self.executable.capabilities().allows(cap) {
            Ok(())
        } else {
            Err(CoreError::CapabilityDenied { capability: cap })
        }
    }

    fn circuit(&self) -> Result<&Circuit, CoreError> {
        self.circuit.as_ref().ok_or(CoreError::NotBuilt)
    }

    fn simulator(&mut self) -> Result<&mut Simulator, CoreError> {
        self.require(Capability::Simulate)?;
        if self.simulator.is_none() {
            let circuit = self.circuit.as_ref().ok_or(CoreError::NotBuilt)?;
            self.simulator = Some(Simulator::new(circuit)?);
        }
        Ok(self.simulator.as_mut().expect("just created"))
    }

    /// The *build* button: elaborates the generator into a circuit.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Configure`]; fails on generator errors or
    /// when the result exceeds the sandbox's cell limit.
    pub fn build(&mut self) -> Result<(), CoreError> {
        self.require(Capability::Configure)?;
        let circuit = Circuit::from_generator(self.generator.as_ref())?;
        let cells = circuit.cell_count() as u64;
        if cells > self.limits.max_cells {
            return Err(CoreError::ResourceLimit {
                limit: "max_cells",
                max: self.limits.max_cells,
                requested: cells,
            });
        }
        self.circuit = Some(circuit);
        self.simulator = None;
        Ok(())
    }

    /// `true` once a circuit instance exists.
    #[must_use]
    pub fn is_built(&self) -> bool {
        self.circuit.is_some()
    }

    /// Area estimate (the evaluation panel of the paper's Figure 1).
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Estimate`] and a built circuit.
    pub fn estimate_area(&self) -> Result<AreaReport, CoreError> {
        self.require(Capability::Estimate)?;
        Ok(ipd_estimate::estimate_area(self.circuit()?)?)
    }

    /// Timing estimate.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Estimate`] and a built circuit.
    pub fn estimate_timing(&self) -> Result<TimingReport, CoreError> {
        self.require(Capability::Estimate)?;
        Ok(ipd_estimate::estimate_timing(self.circuit()?)?)
    }

    /// The schematic view of the top level.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::StructuralView`] and a built circuit.
    pub fn schematic(&self) -> Result<String, CoreError> {
        self.require(Capability::StructuralView)?;
        let circuit = self.circuit()?;
        Ok(ipd_viewer::schematic_text(circuit, circuit.root()))
    }

    /// The schematic as SVG (for the web page around the applet).
    ///
    /// # Errors
    ///
    /// Requires [`Capability::StructuralView`] and a built circuit.
    pub fn schematic_svg(&self) -> Result<String, CoreError> {
        self.require(Capability::StructuralView)?;
        let circuit = self.circuit()?;
        Ok(ipd_viewer::schematic_svg(circuit, circuit.root()))
    }

    /// The full hierarchy browser.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::StructuralView`] and a built circuit.
    pub fn hierarchy(&self) -> Result<String, CoreError> {
        self.require(Capability::StructuralView)?;
        Ok(ipd_viewer::hierarchy_tree(self.circuit()?))
    }

    /// The relative-layout occupancy view.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::LayoutView`] and a built circuit.
    pub fn layout(&self) -> Result<String, CoreError> {
        self.require(Capability::LayoutView)?;
        Ok(ipd_viewer::layout_grid(self.circuit()?)?)
    }

    /// Drives a primary input (simulator panel).
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Simulate`]; propagates simulator errors.
    pub fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CoreError> {
        self.simulator()?.set(port, value)?;
        Ok(())
    }

    /// Drives a primary input with an unsigned integer.
    ///
    /// # Errors
    ///
    /// As for [`AppletSession::set`].
    pub fn set_u64(&mut self, port: &str, value: u64) -> Result<(), CoreError> {
        self.simulator()?.set_u64(port, value)?;
        Ok(())
    }

    /// Drives a primary input with a signed integer.
    ///
    /// # Errors
    ///
    /// As for [`AppletSession::set`].
    pub fn set_i64(&mut self, port: &str, value: i64) -> Result<(), CoreError> {
        self.simulator()?.set_i64(port, value)?;
        Ok(())
    }

    /// The *Cycle* button.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Simulate`]; enforces the sandbox cycle
    /// limit per call.
    pub fn cycle(&mut self, n: u64) -> Result<(), CoreError> {
        if n > self.limits.max_cycles_per_call {
            return Err(CoreError::ResourceLimit {
                limit: "max_cycles_per_call",
                max: self.limits.max_cycles_per_call,
                requested: n,
            });
        }
        self.simulator()?.cycle(n)?;
        Ok(())
    }

    /// The *Reset* button.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Simulate`] and a built circuit.
    pub fn reset(&mut self) -> Result<(), CoreError> {
        self.simulator()?.reset();
        Ok(())
    }

    /// Reads a primary port.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Simulate`]; propagates simulator errors.
    pub fn peek(&mut self, port: &str) -> Result<LogicVec, CoreError> {
        Ok(self.simulator()?.peek(port)?)
    }

    /// Reads an internal net — this needs *structural* visibility on
    /// top of simulation (a black-box executable can only see ports).
    ///
    /// # Errors
    ///
    /// Requires both [`Capability::Simulate`] and
    /// [`Capability::StructuralView`].
    pub fn peek_net(&mut self, net: &str) -> Result<ipd_hdl::Logic, CoreError> {
        self.require(Capability::StructuralView)?;
        Ok(self.simulator()?.peek_net(net)?)
    }

    /// Starts recording a waveform for a port.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::WaveformView`] (and simulation).
    pub fn record(&mut self, port: &str) -> Result<(), CoreError> {
        self.require(Capability::WaveformView)?;
        self.simulator()?.record(port)?;
        Ok(())
    }

    /// Renders recorded waveforms.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::WaveformView`].
    pub fn waveforms(&mut self) -> Result<String, CoreError> {
        self.require(Capability::WaveformView)?;
        let sim = self.simulator()?;
        Ok(ipd_viewer::waveform_text(sim.traces()))
    }

    /// Reads memory contents by instance path (the memory viewer).
    ///
    /// # Errors
    ///
    /// Requires [`Capability::MemoryView`].
    pub fn memory(&mut self, path: &str) -> Result<Option<LogicVec>, CoreError> {
        self.require(Capability::MemoryView)?;
        Ok(self.simulator()?.memory(path))
    }

    /// Exports recorded waveforms as a Value Change Dump for the
    /// customer's own viewer.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::WaveformView`]; fails on I/O errors.
    pub fn export_vcd(&mut self) -> Result<String, CoreError> {
        self.require(Capability::WaveformView)?;
        let sim = self.simulator()?;
        let mut buf = Vec::new();
        ipd_sim::write_vcd(sim.traces(), &mut buf)
            .map_err(|e| CoreError::Netlist(ipd_netlist::NetlistError::Io(e)))?;
        Ok(String::from_utf8(buf).expect("VCD output is ASCII"))
    }

    /// Device-fit feedback: the smallest catalog part that holds the
    /// instance, or whether a named part fits (the applet's evaluation
    /// panel).
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Estimate`] and a built circuit.
    pub fn device_fit(&self, part: Option<&str>) -> Result<String, CoreError> {
        self.require(Capability::Estimate)?;
        let area = ipd_estimate::estimate_area(self.circuit()?)?;
        match part {
            None => Ok(match area.device {
                Some(d) => format!(
                    "smallest fitting part: {} at {:.1}% utilization",
                    d,
                    area.utilization.unwrap_or(0.0)
                ),
                None => "no catalog part fits this instance".to_owned(),
            }),
            Some(name) => match ipd_techlib::Device::by_name(name) {
                None => Ok(format!("unknown part {name}")),
                Some(d) => Ok(if d.fits(&area.total) {
                    format!(
                        "{} fits at {:.1}% utilization",
                        d.name,
                        d.utilization(&area.total)
                    )
                } else {
                    format!("{} does not fit ({} LUTs needed)", d.name, area.total.luts)
                }),
            },
        }
    }

    /// Constraint-evaluated slack summary: per-clock worst slack,
    /// violation counts and slack histograms. Aggregate only — no
    /// endpoint names or paths leak — so an evaluation or black-box
    /// customer can check timing closure without seeing structure.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::TimingView`] and a built circuit;
    /// propagates STA failures (e.g. a combinational loop).
    pub fn slack_summary(
        &self,
        constraints: &TimingConstraints,
    ) -> Result<SlackSummary, CoreError> {
        self.require(Capability::TimingView)?;
        let report = ipd_estimate::analyze_timing(self.circuit()?, constraints)?;
        Ok(report.slack_summary())
    }

    /// The full STA report with named endpoints and critical paths.
    /// Path steps name internal nets, so this needs structural
    /// visibility on top of [`Capability::TimingView`].
    ///
    /// # Errors
    ///
    /// Requires [`Capability::TimingView`] and
    /// [`Capability::StructuralView`], plus a built circuit.
    pub fn sta_report(&self, constraints: &TimingConstraints) -> Result<StaReport, CoreError> {
        self.require(Capability::TimingView)?;
        self.require(Capability::StructuralView)?;
        Ok(ipd_estimate::analyze_timing(self.circuit()?, constraints)?)
    }

    /// The *Lint* button: runs the full static-analysis engine over
    /// the built instance. Diagnostics name internal hierarchical
    /// paths, so this needs structural visibility — a black-box
    /// evaluator cannot use lint findings to map the implementation.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::StructuralView`] and a built circuit.
    pub fn lint(&self) -> Result<ipd_lint::LintReport, CoreError> {
        self.require(Capability::StructuralView)?;
        Ok(ipd_lint::lint(self.circuit()?)?)
    }

    /// The *Netlist* button: generates the deliverable netlist.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Netlist`]; enforces the sandbox output
    /// size limit.
    pub fn netlist(&mut self, format: NetlistFormat) -> Result<String, CoreError> {
        self.require(Capability::Netlist)?;
        let text = format.generate(self.circuit()?)?;
        if text.len() as u64 > self.limits.max_netlist_bytes {
            return Err(CoreError::ResourceLimit {
                limit: "max_netlist_bytes",
                max: self.limits.max_netlist_bytes,
                requested: text.len() as u64,
            });
        }
        Ok(text)
    }

    /// Exposes the simulator for black-box export over a socket (used
    /// by the co-simulation server; the host must separately grant
    /// network permission).
    ///
    /// # Errors
    ///
    /// Requires [`Capability::BlackBoxExport`].
    pub fn black_box_simulator(&mut self) -> Result<&mut Simulator, CoreError> {
        self.require(Capability::BlackBoxExport)?;
        self.require(Capability::Simulate)?;
        self.simulator()
    }

    /// The built circuit, for protection passes (watermark/obfuscate)
    /// run by the *vendor* before delivery. Gated on the netlist
    /// capability since it exposes full structure.
    ///
    /// # Errors
    ///
    /// Requires [`Capability::Netlist`] and a built circuit.
    pub fn circuit_for_delivery(&self) -> Result<&Circuit, CoreError> {
        self.require(Capability::Netlist)?;
        self.circuit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use ipd_modgen::KcmMultiplier;

    fn session(caps: CapabilitySet) -> AppletSession {
        let exe = IpExecutable::new("kcm", "byu", caps);
        let host = AppletHost::new();
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
        AppletSession::new(&exe, &host, Box::new(kcm))
    }

    #[test]
    fn licensed_session_full_flow() {
        let mut s = session(CapabilitySet::licensed());
        assert!(!s.is_built());
        s.build().unwrap();
        assert!(s.is_built());
        let area = s.estimate_area().unwrap();
        assert!(area.total.luts > 0);
        let timing = s.estimate_timing().unwrap();
        assert!(timing.critical_path_ns > 0.0);
        assert!(s.schematic().unwrap().contains("pp0"));
        assert!(s.hierarchy().unwrap().contains("kcm"));
        let lint = s.lint().unwrap();
        assert!(lint.is_clean() && lint.diags().is_empty(), "{lint}");
        assert!(s.layout().unwrap().contains('|'));
        s.set_i64("multiplicand", 2).unwrap();
        assert_eq!(s.peek("product").unwrap().to_i64(), Some(-28)); // (-56 × 2) >> 2
        let edif = s.netlist(NetlistFormat::Edif).unwrap();
        assert!(edif.starts_with("(edif"));
    }

    #[test]
    fn passive_session_denies_visibility() {
        let mut s = session(CapabilitySet::passive());
        s.build().unwrap();
        s.estimate_area().unwrap();
        assert!(matches!(
            s.schematic(),
            Err(CoreError::CapabilityDenied {
                capability: Capability::StructuralView
            })
        ));
        assert!(matches!(
            s.set_i64("multiplicand", 1),
            Err(CoreError::CapabilityDenied {
                capability: Capability::Simulate
            })
        ));
        assert!(matches!(
            s.lint(),
            Err(CoreError::CapabilityDenied {
                capability: Capability::StructuralView
            })
        ));
        assert!(matches!(
            s.netlist(NetlistFormat::Edif),
            Err(CoreError::CapabilityDenied {
                capability: Capability::Netlist
            })
        ));
    }

    #[test]
    fn black_box_session_simulates_but_hides() {
        let mut s = session(CapabilitySet::black_box());
        s.build().unwrap();
        s.set_i64("multiplicand", 3).unwrap();
        assert_eq!(s.peek("product").unwrap().to_i64(), Some(-42)); // (-56 × 3) >> 2
        assert!(s.schematic().is_err());
        assert!(
            s.peek_net("kcm_w8_p12_c-56_s/zero").is_err(),
            "no internal nets"
        );
        assert!(s.netlist(NetlistFormat::Vhdl).is_err());
        assert!(s.black_box_simulator().is_ok());
    }

    #[test]
    fn operations_before_build_fail() {
        let mut s = session(CapabilitySet::licensed());
        assert!(matches!(s.estimate_area(), Err(CoreError::NotBuilt)));
        assert!(matches!(s.peek("product"), Err(CoreError::NotBuilt)));
    }

    #[test]
    fn sandbox_cycle_limit() {
        let exe = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let host = AppletHost::with_limits(ResourceLimits {
            max_cells: 100_000,
            max_cycles_per_call: 10,
            max_netlist_bytes: 1 << 20,
        });
        let kcm = KcmMultiplier::new(5, 4, 7).pipelined(true);
        let mut s = AppletSession::new(&exe, &host, Box::new(kcm));
        s.build().unwrap();
        s.cycle(10).unwrap();
        assert!(matches!(
            s.cycle(11),
            Err(CoreError::ResourceLimit {
                limit: "max_cycles_per_call",
                ..
            })
        ));
    }

    #[test]
    fn sandbox_cell_limit() {
        let exe = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let host = AppletHost::with_limits(ResourceLimits {
            max_cells: 5,
            max_cycles_per_call: 10,
            max_netlist_bytes: 1 << 20,
        });
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
        let mut s = AppletSession::new(&exe, &host, Box::new(kcm));
        assert!(matches!(
            s.build(),
            Err(CoreError::ResourceLimit {
                limit: "max_cells",
                ..
            })
        ));
    }

    #[test]
    fn waveform_flow() {
        let mut s = session(CapabilitySet::licensed());
        s.build().unwrap();
        s.record("product").unwrap();
        s.set_i64("multiplicand", 1).unwrap();
        // Combinational KCM has no clock; recording still works after
        // cycles on a pipelined instance — use waveforms text path.
        let text = s.waveforms().unwrap();
        assert!(text.contains("cycle"));
    }

    #[test]
    fn interface_always_visible() {
        let s = session(CapabilitySet::passive());
        let ports = s.interface();
        assert!(ports.iter().any(|p| p.name == "multiplicand"));
        assert!(ports.iter().any(|p| p.name == "product"));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use ipd_modgen::KcmMultiplier;

    fn session(caps: CapabilitySet) -> AppletSession {
        let exe = IpExecutable::new("kcm", "byu", caps);
        let host = AppletHost::new();
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
        AppletSession::new(&exe, &host, Box::new(kcm))
    }

    #[test]
    fn vcd_export_flows_and_gates() {
        let mut s = session(CapabilitySet::licensed());
        s.build().unwrap();
        s.record("product").unwrap();
        s.set_i64("multiplicand", 5).unwrap();
        s.cycle(3).unwrap();
        let vcd = s.export_vcd().unwrap();
        assert!(vcd.contains("$var wire 12"));
        assert!(vcd.contains("$enddefinitions"));
        let mut passive = session(CapabilitySet::passive());
        passive.build().unwrap();
        assert!(matches!(
            passive.export_vcd(),
            Err(CoreError::CapabilityDenied { .. })
        ));
    }

    fn clk_constraints(period_ns: f64) -> TimingConstraints {
        let mut t = TimingConstraints::new();
        t.clock("clk", period_ns, "clk");
        t
    }

    #[test]
    fn timing_view_exposes_slack_without_structure() {
        // Black-box grants TimingView but not StructuralView: the
        // aggregate summary flows, the path-level report does not.
        let mut s = session(CapabilitySet::black_box());
        s.build().unwrap();
        let summary = s.slack_summary(&clk_constraints(100.0)).unwrap();
        assert!(!summary.clocks.is_empty());
        assert_eq!(summary.violations(), 0, "{summary}");
        assert!(matches!(
            s.sta_report(&clk_constraints(100.0)),
            Err(CoreError::CapabilityDenied {
                capability: Capability::StructuralView
            })
        ));
        // A licensed session sees the full report.
        let mut lic = session(CapabilitySet::licensed());
        lic.build().unwrap();
        let report = lic.sta_report(&clk_constraints(100.0)).unwrap();
        assert!(!report.endpoints.is_empty());
        // Passive sessions lack TimingView entirely.
        let mut passive = session(CapabilitySet::passive());
        passive.build().unwrap();
        assert!(matches!(
            passive.slack_summary(&clk_constraints(100.0)),
            Err(CoreError::CapabilityDenied {
                capability: Capability::TimingView
            })
        ));
    }

    #[test]
    fn device_fit_feedback() {
        let mut s = session(CapabilitySet::passive());
        s.build().unwrap();
        let auto = s.device_fit(None).unwrap();
        assert!(auto.contains("xcv50"), "{auto}");
        let named = s.device_fit(Some("xcv1000")).unwrap();
        assert!(named.contains("fits"), "{named}");
        assert!(s
            .device_fit(Some("xc9500"))
            .unwrap()
            .contains("unknown part"));
    }
}
