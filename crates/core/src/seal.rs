//! Sealed bundle delivery — the paper's "class encryption" measure
//! (§4.3): bundles are encrypted to a per-customer key so that an
//! intercepted download (or a shared cache) yields nothing without the
//! license.
//!
//! The cipher is a keystream built from HMAC-SHA-256 in counter mode
//! with an authentication tag over the ciphertext
//! (encrypt-then-MAC) — implemented in-repo like the rest of the
//! crypto substrate.

use ipd_hdl::Circuit;
use ipd_lint::{LintConfig, LintReport, Linter, OracleOptions, TimingConstraints};

use crate::error::CoreError;
use crate::license::License;
use crate::sha::hmac_sha256;

/// Derives the per-customer bundle key from the vendor key and a
/// license (customer + product bound).
#[must_use]
pub fn bundle_key(vendor_key: &[u8], license: &License) -> [u8; 32] {
    hmac_sha256(
        vendor_key,
        format!("bundle-key|{}|{}", license.customer(), license.product()).as_bytes(),
    )
}

/// Encrypts and authenticates a bundle payload.
///
/// Layout: `nonce (8) || ciphertext || tag (32)`.
#[must_use]
pub fn seal(plain: &[u8], key: &[u8; 32], nonce: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + plain.len() + 32);
    out.extend_from_slice(&nonce.to_le_bytes());
    let mut cipher = plain.to_vec();
    apply_keystream(&mut cipher, key, nonce);
    out.extend_from_slice(&cipher);
    let tag = hmac_sha256(key, &out);
    out.extend_from_slice(&tag);
    out
}

/// Verifies and decrypts a sealed payload.
///
/// # Errors
///
/// Returns [`CoreError::LicenseInvalid`] when the container is
/// malformed or the authentication tag does not match (wrong customer
/// key or tampering).
pub fn unseal(sealed: &[u8], key: &[u8; 32]) -> Result<Vec<u8>, CoreError> {
    if sealed.len() < 8 + 32 {
        return Err(CoreError::LicenseInvalid {
            reason: "sealed bundle too short".to_owned(),
        });
    }
    let (body, tag) = sealed.split_at(sealed.len() - 32);
    let expected = hmac_sha256(key, body);
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(CoreError::LicenseInvalid {
            reason: "sealed bundle authentication failed".to_owned(),
        });
    }
    let nonce = u64::from_le_bytes(body[..8].try_into().expect("length checked"));
    let mut plain = body[8..].to_vec();
    apply_keystream(&mut plain, key, nonce);
    Ok(plain)
}

/// A design netlist sealed for delivery, carrying the lint report that
/// cleared it — the delivery-side artifact of the lint gate.
#[derive(Debug, Clone)]
pub struct SealedDesign {
    sealed: Vec<u8>,
    report: LintReport,
}

impl SealedDesign {
    /// The sealed EDIF payload (`nonce || ciphertext || tag`).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.sealed
    }

    /// The lint report the design passed before sealing — shipped
    /// alongside the payload so the customer can audit what was
    /// checked and what was waived.
    #[must_use]
    pub fn report(&self) -> &LintReport {
        &self.report
    }
}

/// Lints a circuit and, only if no unwaived error-severity finding
/// remains, netlists it to EDIF and seals the bytes to the customer
/// key. A vendor must never ship a structurally broken design; waivers
/// in `config` are the explicit, auditable escape hatch.
///
/// # Errors
///
/// [`CoreError::LintRejected`] when unwaived lint errors exist;
/// otherwise propagates flattening and netlisting failures.
pub fn seal_design(
    circuit: &Circuit,
    config: &LintConfig,
    key: &[u8; 32],
    nonce: u64,
) -> Result<SealedDesign, CoreError> {
    seal_design_timed(circuit, config, None, key, nonce)
}

/// [`seal_design`] with an additional timing gate: when `constraints`
/// are given, the STA engine runs as a lint pass and unwaived setup
/// violations block sealing exactly like structural errors. A design
/// that misses timing is as undeliverable as one with contention —
/// unless the vendor waives the violation explicitly (auditable in the
/// shipped report) or re-pipelines the generator until slack is met.
///
/// # Errors
///
/// As for [`seal_design`].
pub fn seal_design_timed(
    circuit: &Circuit,
    config: &LintConfig,
    constraints: Option<&TimingConstraints>,
    key: &[u8; 32],
    nonce: u64,
) -> Result<SealedDesign, CoreError> {
    let linter = match constraints {
        Some(t) => Linter::with_timing(config.clone(), t.clone()),
        None => Linter::with_config(config.clone()),
    };
    let report = linter.run(circuit)?;
    if report.error_count() > 0 {
        return Err(CoreError::LintRejected {
            errors: report.error_count(),
            summary: report.summary(),
        });
    }
    let edif = ipd_netlist::NetlistFormat::Edif.generate(circuit)?;
    Ok(SealedDesign {
        sealed: seal(edif.as_bytes(), key, nonce),
        report,
    })
}

/// [`seal_design`] with the semantic lint tier enabled: the linter
/// runs [`Linter::with_oracle`], so the shipped report records the
/// proof tier of every finding — structural claims are SAT-confirmed
/// or retracted, refutations carry simulator-replayed witnesses, and
/// the customer can audit *how strongly* each check was established,
/// not just that it ran. Unwaived errors block sealing exactly as in
/// the structural path.
///
/// # Errors
///
/// As for [`seal_design`].
pub fn seal_design_semantic(
    circuit: &Circuit,
    config: &LintConfig,
    opts: OracleOptions,
    key: &[u8; 32],
    nonce: u64,
) -> Result<SealedDesign, CoreError> {
    let linter = Linter::with_oracle(config.clone(), opts);
    let report = linter.run(circuit)?;
    if report.error_count() > 0 {
        return Err(CoreError::LintRejected {
            errors: report.error_count(),
            summary: report.summary(),
        });
    }
    let edif = ipd_netlist::NetlistFormat::Edif.generate(circuit)?;
    Ok(SealedDesign {
        sealed: seal(edif.as_bytes(), key, nonce),
        report,
    })
}

/// XORs the HMAC-counter keystream over a buffer (symmetric for
/// encrypt and decrypt).
fn apply_keystream(data: &mut [u8], key: &[u8; 32], nonce: u64) {
    let mut counter = 0u64;
    let mut offset = 0usize;
    while offset < data.len() {
        let mut block_input = [0u8; 16];
        block_input[..8].copy_from_slice(&nonce.to_le_bytes());
        block_input[8..].copy_from_slice(&counter.to_le_bytes());
        let block = hmac_sha256(key, &block_input);
        for (i, b) in block.iter().enumerate() {
            if offset + i >= data.len() {
                break;
            }
            data[offset + i] ^= b;
        }
        offset += 32;
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use crate::license::LicenseAuthority;

    fn key() -> [u8; 32] {
        let authority = LicenseAuthority::new(b"vendor".to_vec());
        let license = authority.issue("acme", "kcm", CapabilitySet::passive(), 0, 10);
        bundle_key(b"vendor", &license)
    }

    #[test]
    fn seal_round_trips() {
        let key = key();
        for size in [0usize, 1, 31, 32, 33, 1000] {
            let plain: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let sealed = seal(&plain, &key, 7);
            assert_eq!(unseal(&sealed, &key).expect("unseal"), plain, "size {size}");
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(b"secret bundle bytes", &key(), 1);
        let other = [9u8; 32];
        assert!(matches!(
            unseal(&sealed, &other),
            Err(CoreError::LicenseInvalid { .. })
        ));
    }

    #[test]
    fn tampering_rejected() {
        let key = key();
        let mut sealed = seal(b"secret bundle bytes", &key, 1);
        let mid = sealed.len() / 2;
        sealed[mid] ^= 1;
        assert!(unseal(&sealed, &key).is_err());
        assert!(unseal(&sealed[..10], &key).is_err());
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_by_nonce() {
        let key = key();
        let plain = b"the same plaintext".to_vec();
        let a = seal(&plain, &key, 1);
        let b = seal(&plain, &key, 2);
        assert_ne!(&a[8..8 + plain.len()], plain.as_slice());
        assert_ne!(a[8..], b[8..], "nonce varies the keystream");
    }

    /// A circuit with a contended net: `multiple-drivers` is an
    /// error-severity finding.
    fn broken_circuit() -> ipd_hdl::Circuit {
        use ipd_techlib::LogicCtx;
        let mut c = ipd_hdl::Circuit::new("broken");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(ipd_hdl::PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(ipd_hdl::PortSpec::output("y", 1)).unwrap();
        ctx.buffer(a, y).unwrap();
        ctx.buffer(a, y).unwrap();
        c
    }

    #[test]
    fn seal_design_refuses_unwaived_lint_errors() {
        let key = key();
        let err = seal_design(&broken_circuit(), &LintConfig::new(), &key, 1).unwrap_err();
        match err {
            CoreError::LintRejected { errors, summary } => {
                assert_eq!(errors, 1);
                assert!(summary.contains("error"), "{summary}");
            }
            other => panic!("expected LintRejected, got {other}"),
        }
    }

    #[test]
    fn seal_design_accepts_waived_errors_and_clean_designs() {
        let key = key();
        // Waiving the specific finding lets the same design through,
        // and the shipped report still records the waiver for audit.
        let mut config = LintConfig::new();
        config.waive(
            "multiple-drivers",
            "broken/y",
            "legacy contention, customer accepts",
        );
        let sealed = seal_design(&broken_circuit(), &config, &key, 2).expect("waived");
        assert_eq!(sealed.report().error_count(), 0);
        assert_eq!(sealed.report().waived().len(), 1);
        // The payload unseals to the EDIF netlist.
        let plain = unseal(sealed.bytes(), &key).expect("unseal");
        assert!(String::from_utf8(plain).unwrap().starts_with("(edif"));

        // A clean generator output needs no waivers at all.
        let kcm = ipd_modgen::KcmMultiplier::new(-56, 8, 12).signed(true);
        let circuit = ipd_hdl::Circuit::from_generator(&kcm).unwrap();
        let sealed = seal_design(&circuit, &LintConfig::new(), &key, 3).expect("clean");
        assert!(sealed.report().is_clean());
        assert!(sealed.report().diags().is_empty());
    }

    /// FF -> `depth` inverters -> FF on one clock: fails tight periods.
    fn chained_circuit(depth: usize) -> ipd_hdl::Circuit {
        use ipd_techlib::LogicCtx;
        let mut c = ipd_hdl::Circuit::new("chain");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(ipd_hdl::PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(ipd_hdl::PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(ipd_hdl::PortSpec::output("q", 1)).unwrap();
        let mut cur: ipd_hdl::Signal = ctx.wire("s0", 1).into();
        ctx.fd(clk, d, cur.clone()).unwrap();
        for i in 0..depth {
            let nxt = ctx.wire(&format!("s{}", i + 1), 1);
            ctx.inv(cur, nxt).unwrap();
            cur = nxt.into();
        }
        ctx.fd(clk, cur, q).unwrap();
        c
    }

    fn tight_constraints() -> TimingConstraints {
        let mut t = TimingConstraints::new();
        t.clock("clk", 6.0, "clk");
        t
    }

    #[test]
    fn seal_design_timed_gates_on_negative_slack() {
        let key = key();
        let slow = chained_circuit(24);
        // Unwaived setup violations block sealing...
        let err = seal_design_timed(
            &slow,
            &LintConfig::new(),
            Some(&tight_constraints()),
            &key,
            4,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { errors, .. } if errors > 0));
        // ...an explicit waiver lets the same design through, audited...
        let mut config = LintConfig::new();
        config.waive(
            "setup-violation",
            "*",
            "evaluation build, timing not contractual",
        );
        let sealed =
            seal_design_timed(&slow, &config, Some(&tight_constraints()), &key, 5).expect("waived");
        assert!(sealed
            .report()
            .waived()
            .iter()
            .any(|d| d.rule == "setup-violation"));
        // ...and a re-pipelined (shallower) design meets timing as-is.
        let fast = chained_circuit(2);
        let sealed = seal_design_timed(
            &fast,
            &LintConfig::new(),
            Some(&tight_constraints()),
            &key,
            6,
        )
        .expect("meets timing");
        assert!(sealed.report().is_clean());
        // Without constraints the timed entry point is plain seal_design.
        seal_design(&slow, &LintConfig::new(), &key, 7).expect("untimed");
    }

    #[test]
    fn seal_design_semantic_records_proof_tiers() {
        use ipd_techlib::LogicCtx;
        let key = key();
        // A LUT whose init ignores one input is semantically constant
        // only when the init is uniform; here it's a live AND of two
        // inputs plus a structurally-dead inverter, so the semantic
        // report carries a SAT-proved dead-logic warning.
        let mut c = ipd_hdl::Circuit::new("sem");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(ipd_hdl::PortSpec::input("a", 1)).unwrap();
        let b = ctx.add_port(ipd_hdl::PortSpec::input("b", 1)).unwrap();
        let y = ctx.add_port(ipd_hdl::PortSpec::output("y", 1)).unwrap();
        let dead = ctx.wire("dead", 1);
        ctx.and2(a, b, y).unwrap();
        ctx.inv(a, dead).unwrap();
        let sealed =
            seal_design_semantic(&c, &LintConfig::new(), OracleOptions::default(), &key, 8)
                .expect("warnings do not block sealing");
        let dead_diag = sealed
            .report()
            .by_rule("dead-logic")
            .next()
            .expect("dead inverter reported");
        assert_eq!(dead_diag.proof, ipd_lint::ProofTier::Proved);
        assert!(sealed.report().to_json().contains("\"proof\": \"proved\""));
        // The payload still unseals like any other sealed design.
        let plain = unseal(sealed.bytes(), &key).expect("unseal");
        assert!(String::from_utf8(plain).unwrap().starts_with("(edif"));
    }

    #[test]
    fn per_customer_keys_differ() {
        let authority = LicenseAuthority::new(b"vendor".to_vec());
        let a = authority.issue("acme", "kcm", CapabilitySet::passive(), 0, 10);
        let b = authority.issue("bolt", "kcm", CapabilitySet::passive(), 0, 10);
        assert_ne!(bundle_key(b"vendor", &a), bundle_key(b"vendor", &b));
    }
}
