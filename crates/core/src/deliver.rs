//! IP delivery executables and the vendor-side applet server.
//!
//! An [`IpExecutable`] is the paper's "custom executable … customized
//! to the needs of both the customer and vendor" (its Figure 2): a
//! capability set plus the code bundles those capabilities require.
//! The [`AppletServer`] is the vendor web server that picks the right
//! executable per user profile and meters access.

use std::collections::HashMap;
use std::fmt;

use ipd_pack::{BundleSet, PackedSet};

use crate::capability::{Capability, CapabilitySet};
use crate::error::CoreError;
use crate::license::{License, LicenseAuthority};
use crate::store::{
    builtin_digests, BundleDelivery, BundleStore, DeliveryManifest, DeliveryResponse, Digest,
    ManifestEntry,
};

/// A deliverable IP evaluation executable: the applet a customer
/// downloads.
///
/// # Examples
///
/// ```
/// use ipd_core::{CapabilitySet, IpExecutable};
///
/// let passive = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::passive());
/// let licensed = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::licensed());
/// // More capability ⇒ more code to download (the Figure 2 trade-off).
/// assert!(licensed.download_size() > passive.download_size());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpExecutable {
    product: String,
    vendor: String,
    capabilities: CapabilitySet,
}

impl IpExecutable {
    /// A new executable configuration.
    #[must_use]
    pub fn new(
        product: impl Into<String>,
        vendor: impl Into<String>,
        capabilities: CapabilitySet,
    ) -> Self {
        IpExecutable {
            product: product.into(),
            vendor: vendor.into(),
            capabilities,
        }
    }

    /// Product identifier.
    #[must_use]
    pub fn product(&self) -> &str {
        &self.product
    }

    /// Vendor identifier.
    #[must_use]
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// The capability set compiled into this executable.
    #[must_use]
    pub fn capabilities(&self) -> CapabilitySet {
        self.capabilities
    }

    /// The bundle names this executable needs — the paper's "only
    /// those Jar files required by the applet code".
    #[must_use]
    pub fn required_bundles(&self) -> Vec<&'static str> {
        let mut names = vec!["JHDLBase", "Virtex", "Applet"];
        if self.capabilities.allows(Capability::Estimate) {
            names.push("Estimator");
        }
        if self.capabilities.allows(Capability::StructuralView)
            || self.capabilities.allows(Capability::LayoutView)
            || self.capabilities.allows(Capability::WaveformView)
        {
            names.push("Viewer");
        }
        if self.capabilities.allows(Capability::Netlist) {
            names.push("Netlist");
        }
        names
    }

    /// The actual bundle set to ship (uncompressed working form).
    #[must_use]
    pub fn bundle_set(&self) -> BundleSet {
        BundleSet::full_set().subset(&self.required_bundles())
    }

    /// The compressed bundles to ship, shared from the process-wide
    /// compress-once cache — subsetting is a pointer clone.
    #[must_use]
    pub fn packed_set(&self) -> PackedSet {
        ipd_pack::shared_full_set().subset(&self.required_bundles())
    }

    /// Total download size in bytes (compressed bundles). Reuses the
    /// memoized packed sizes; no compression runs per call.
    #[must_use]
    pub fn download_size(&self) -> usize {
        self.packed_set().total_packed()
    }
}

impl fmt::Display for IpExecutable {
    /// Renders the Figure 2 style configuration box.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "+-- IP delivery executable: {} ({})",
            self.product, self.vendor
        )?;
        writeln!(f, "|   module generator + circuit data structure")?;
        for cap in self.capabilities.iter() {
            writeln!(f, "|   [x] {cap}")?;
        }
        for cap in Capability::all() {
            if !self.capabilities.allows(cap) {
                writeln!(f, "|   [ ] {cap} (withheld)")?;
            }
        }
        let set = self.packed_set();
        writeln!(
            f,
            "|   download: {} bundle(s), {} kB",
            set.bundles().len(),
            set.total_packed().div_ceil(1024)
        )?;
        writeln!(f, "+--")
    }
}

/// One access record — the metering trail (the paper cites hardware
/// metering \[6\] as a complementary protection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Customer id that accessed the server.
    pub customer: String,
    /// Day of access (vendor epoch days).
    pub day: u32,
    /// What was served, or why it was refused.
    pub outcome: String,
}

/// The vendor's applet web server: verifies profiles and serves
/// per-customer executables.
///
/// # Examples
///
/// ```
/// use ipd_core::{AppletServer, Capability, CapabilitySet};
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let mut server = AppletServer::new("byu", b"vendor-key".to_vec());
/// server.enroll("acme", "virtex-kcm", CapabilitySet::passive(), 0, 365);
/// let applet = server.serve("acme", 100)?;
/// assert!(!applet.capabilities().allows(Capability::Netlist));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AppletServer {
    vendor: String,
    authority: LicenseAuthority,
    profiles: HashMap<String, License>,
    audit: Vec<AuditRecord>,
    /// The vendor's bundle catalog (built once, not per request).
    catalog: BundleSet,
    /// Content digest per catalog bundle, precomputed so the warm
    /// serve path hashes nothing.
    digests: HashMap<String, Digest>,
    /// Compress-once packed cache shared across all customers.
    store: BundleStore,
}

impl AppletServer {
    /// A server for one vendor with a signing key.
    #[must_use]
    pub fn new(vendor: impl Into<String>, key: Vec<u8>) -> Self {
        AppletServer {
            vendor: vendor.into(),
            authority: LicenseAuthority::new(key),
            profiles: HashMap::new(),
            audit: Vec::new(),
            catalog: BundleSet::full_set(),
            digests: builtin_digests().clone(),
            store: BundleStore::new(),
        }
    }

    /// The vendor's license authority (for issuing out-of-band
    /// licenses).
    #[must_use]
    pub fn authority(&self) -> &LicenseAuthority {
        &self.authority
    }

    /// Issues and registers a license for a customer profile.
    pub fn enroll(
        &mut self,
        customer: &str,
        product: &str,
        capabilities: CapabilitySet,
        issued_day: u32,
        expiry_day: u32,
    ) -> License {
        let license = self
            .authority
            .issue(customer, product, capabilities, issued_day, expiry_day);
        self.profiles.insert(customer.to_owned(), license.clone());
        license
    }

    /// Whether a customer profile is enrolled (no license check — the
    /// wire front-end uses this to refuse unknown tokens at the
    /// handshake, before any endpoint is served).
    #[must_use]
    pub fn knows_customer(&self, customer: &str) -> bool {
        self.profiles.contains_key(customer)
    }

    /// Serves the executable matching a customer's license — "the web
    /// server can provide an executable applet customized to the needs
    /// or license of the user" (paper §1.1).
    ///
    /// # Errors
    ///
    /// Fails for unknown customers and invalid or expired licenses;
    /// refusals are audited too.
    pub fn serve(&mut self, customer: &str, today: u32) -> Result<IpExecutable, CoreError> {
        let license = self.authorize(customer, today)?;
        let executable = IpExecutable::new(
            license.product(),
            self.vendor.clone(),
            license.capabilities(),
        );
        self.audit.push(AuditRecord {
            customer: customer.to_owned(),
            day: today,
            outcome: format!(
                "served {} with [{}]",
                license.product(),
                license.capabilities()
            ),
        });
        Ok(executable)
    }

    /// License lookup + verification with audited refusals — the
    /// shared front half of every serve-style endpoint.
    fn authorize(&mut self, customer: &str, today: u32) -> Result<License, CoreError> {
        let Some(license) = self.profiles.get(customer).cloned() else {
            self.audit.push(AuditRecord {
                customer: customer.to_owned(),
                day: today,
                outcome: "refused: unknown customer".to_owned(),
            });
            return Err(CoreError::UnknownCustomer {
                customer: customer.to_owned(),
            });
        };
        if let Err(e) = self.authority.verify(&license, today) {
            self.audit.push(AuditRecord {
                customer: customer.to_owned(),
                day: today,
                outcome: format!("refused: {e}"),
            });
            return Err(e);
        }
        Ok(license)
    }

    /// The delivery manifest for a customer: bundle names, content
    /// digests and compressed sizes — what a client inspects before
    /// deciding which digests to present to [`AppletServer::fetch`].
    /// Does not count as a served access.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AppletServer::serve`].
    pub fn manifest(&mut self, customer: &str, today: u32) -> Result<DeliveryManifest, CoreError> {
        let license = self.authorize(customer, today)?;
        let executable = IpExecutable::new(
            license.product(),
            self.vendor.clone(),
            license.capabilities(),
        );
        let entries = executable
            .required_bundles()
            .iter()
            .map(|name| {
                let digest = self.digests[*name];
                let bundle = self.catalog.get(name).expect("catalog covers required set");
                let packed = self.store.get_or_pack_keyed(digest, bundle);
                ManifestEntry {
                    name: (*name).to_owned(),
                    digest,
                    packed_size: packed.packed_size(),
                }
            })
            .collect();
        self.audit.push(AuditRecord {
            customer: customer.to_owned(),
            day: today,
            outcome: format!("manifest {}", license.product()),
        });
        Ok(DeliveryManifest::new(license.product().to_owned(), entries))
    }

    /// Conditional bundle delivery — the HTTP-304 upgrade of the
    /// paper's "fetch only what it uses". The client presents the
    /// digests it already holds; the server answers with payload bytes
    /// for missing or changed bundles and `NotModified` markers for
    /// the rest. Payloads come from the content-addressed store, so a
    /// bundle is compressed at most once per server no matter how many
    /// customers request it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AppletServer::serve`]; refusals are
    /// audited.
    pub fn fetch(
        &mut self,
        customer: &str,
        today: u32,
        have: &[Digest],
    ) -> Result<DeliveryResponse, CoreError> {
        let license = self.authorize(customer, today)?;
        let executable = IpExecutable::new(
            license.product(),
            self.vendor.clone(),
            license.capabilities(),
        );
        let mut items = Vec::new();
        let mut bytes = 0usize;
        for name in executable.required_bundles() {
            let digest = self.digests[name];
            if have.contains(&digest) {
                self.store.note_not_modified();
                items.push(BundleDelivery::NotModified {
                    name: name.to_owned(),
                    digest,
                });
                continue;
            }
            let bundle = self.catalog.get(name).expect("catalog covers required set");
            let packed = self.store.get_or_pack_keyed(digest, bundle);
            let payload = packed.wire_bytes();
            bytes += payload.len();
            items.push(BundleDelivery::Payload {
                name: name.to_owned(),
                digest,
                bytes: payload,
            });
        }
        self.store.note_served(bytes);
        let delivered = items
            .iter()
            .filter(|i| matches!(i, BundleDelivery::Payload { .. }))
            .count();
        self.audit.push(AuditRecord {
            customer: customer.to_owned(),
            day: today,
            outcome: format!(
                "served {} bundles: {} payload(s), {} not-modified, {} bytes",
                license.product(),
                delivered,
                items.len() - delivered,
                bytes
            ),
        });
        Ok(DeliveryResponse::new(license.product().to_owned(), items))
    }

    /// Serves one bundle's packed wire bytes by content digest, as the
    /// store's shared `Arc` — the zero-copy segment path: a wire
    /// server hands the returned `Arc` straight to its vectored socket
    /// write, so the packed bytes are never copied per customer. Only
    /// digests in the customer's own required set are served; asking
    /// for anything else is refused and audited.
    ///
    /// # Errors
    ///
    /// Same license conditions as [`AppletServer::serve`], plus
    /// [`CoreError::UnknownModule`] for a digest outside the
    /// customer's bundle set.
    pub fn fetch_segment(
        &mut self,
        customer: &str,
        today: u32,
        digest: &Digest,
    ) -> Result<std::sync::Arc<[u8]>, CoreError> {
        let license = self.authorize(customer, today)?;
        let executable = IpExecutable::new(
            license.product(),
            self.vendor.clone(),
            license.capabilities(),
        );
        for name in executable.required_bundles() {
            if self.digests[name] != *digest {
                continue;
            }
            let bundle = self.catalog.get(name).expect("catalog covers required set");
            let packed = self.store.get_or_pack_keyed(*digest, bundle);
            let payload = packed.wire_bytes();
            self.store.note_served(payload.len());
            self.audit.push(AuditRecord {
                customer: customer.to_owned(),
                day: today,
                outcome: format!("served segment {name}: {} bytes", payload.len()),
            });
            return Ok(payload);
        }
        self.audit.push(AuditRecord {
            customer: customer.to_owned(),
            day: today,
            outcome: "refused: segment digest outside bundle set".to_owned(),
        });
        Err(CoreError::UnknownModule {
            module: format!(
                "segment {:02x}{:02x}{:02x}{:02x}…",
                digest[0], digest[1], digest[2], digest[3]
            ),
        })
    }

    /// The content-addressed bundle store (hit/miss/bytes counters).
    #[must_use]
    pub fn store(&self) -> &BundleStore {
        &self.store
    }

    /// Serves the executable's bundles *sealed* to the customer's
    /// license key (the paper's §4.3 "class encryption"): each bundle
    /// is encrypted and authenticated so an intercepted download or a
    /// shared proxy cache yields nothing without the license.
    ///
    /// Returns `(bundle name, sealed bytes)` pairs; unseal with
    /// [`crate::unseal`] under [`crate::bundle_key`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AppletServer::serve`].
    pub fn serve_sealed(
        &mut self,
        customer: &str,
        today: u32,
        vendor_key: &[u8],
    ) -> Result<Vec<(String, Vec<u8>)>, CoreError> {
        let executable = self.serve(customer, today)?;
        let license = self
            .profiles
            .get(customer)
            .cloned()
            .expect("serve succeeded, profile exists");
        let key = crate::seal::bundle_key(vendor_key, &license);
        let mut out = Vec::new();
        for (nonce, name) in executable.required_bundles().iter().enumerate() {
            // Plaintext comes from the compress-once store (sealing is
            // per-customer, but the packed bytes underneath are shared).
            let digest = self.digests[*name];
            let bundle = self.catalog.get(name).expect("catalog covers required set");
            let packed = self.store.get_or_pack_keyed(digest, bundle);
            out.push((
                (*name).to_owned(),
                crate::seal::seal(&packed.wire_bytes(), &key, nonce as u64),
            ));
        }
        Ok(out)
    }

    /// Seals a *design netlist* for a customer, refusing to ship
    /// anything the static analyzer finds error-severity problems in.
    /// The lint gate runs vendor-side, before encryption: a customer
    /// must never receive a structurally broken netlist, and every
    /// exception must be an explicit waiver in `lint_config` (the
    /// surviving report ships with the payload for audit).
    ///
    /// # Errors
    ///
    /// License conditions as for [`AppletServer::serve`], plus
    /// [`CoreError::LintRejected`] when unwaived lint errors remain —
    /// refusals of both kinds are audited.
    pub fn serve_design_sealed(
        &mut self,
        customer: &str,
        today: u32,
        vendor_key: &[u8],
        circuit: &ipd_hdl::Circuit,
        lint_config: &ipd_lint::LintConfig,
    ) -> Result<crate::seal::SealedDesign, CoreError> {
        self.serve_design_sealed_timed(customer, today, vendor_key, circuit, lint_config, None)
    }

    /// [`AppletServer::serve_design_sealed`] with a timing gate: when
    /// `constraints` are given the STA engine runs alongside lint, and
    /// unwaived setup violations refuse delivery (audited) the same way
    /// structural errors do.
    ///
    /// # Errors
    ///
    /// As for [`AppletServer::serve_design_sealed`].
    pub fn serve_design_sealed_timed(
        &mut self,
        customer: &str,
        today: u32,
        vendor_key: &[u8],
        circuit: &ipd_hdl::Circuit,
        lint_config: &ipd_lint::LintConfig,
        constraints: Option<&ipd_lint::TimingConstraints>,
    ) -> Result<crate::seal::SealedDesign, CoreError> {
        let license = self.authorize(customer, today)?;
        let key = crate::seal::bundle_key(vendor_key, &license);
        match crate::seal::seal_design_timed(circuit, lint_config, constraints, &key, today.into())
        {
            Ok(sealed) => {
                self.audit.push(AuditRecord {
                    customer: customer.to_owned(),
                    day: today,
                    outcome: format!(
                        "served design {} sealed ({})",
                        circuit.name(),
                        sealed.report().summary()
                    ),
                });
                Ok(sealed)
            }
            Err(e) => {
                self.audit.push(AuditRecord {
                    customer: customer.to_owned(),
                    day: today,
                    outcome: format!("refused: {e}"),
                });
                Err(e)
            }
        }
    }

    /// Runs the static analyzer over a design on behalf of a licensed
    /// customer and returns the report — the audit view a customer
    /// consults before (or after) requesting a sealed design. The
    /// access is audited; unlike [`AppletServer::serve_design_sealed`]
    /// a dirty report is returned, not refused, since no netlist ships.
    ///
    /// # Errors
    ///
    /// License conditions as for [`AppletServer::serve`], plus
    /// flattening failures from the linter.
    pub fn serve_lint_report(
        &mut self,
        customer: &str,
        today: u32,
        circuit: &ipd_hdl::Circuit,
        lint_config: &ipd_lint::LintConfig,
    ) -> Result<ipd_lint::LintReport, CoreError> {
        self.authorize(customer, today)?;
        let report = ipd_lint::Linter::with_config(lint_config.clone()).run(circuit)?;
        self.audit.push(AuditRecord {
            customer: customer.to_owned(),
            day: today,
            outcome: format!(
                "served lint report for {} ({})",
                circuit.name(),
                report.summary()
            ),
        });
        Ok(report)
    }

    /// Runs the STA engine over a design under a constraint set on
    /// behalf of a licensed customer and returns the aggregate
    /// [`ipd_estimate::SlackSummary`] — closure status without path or
    /// endpoint names, safe to show any enrolled evaluator. The access
    /// is audited; like [`AppletServer::serve_lint_report`], a failing
    /// summary is returned rather than refused since no netlist ships.
    ///
    /// # Errors
    ///
    /// License conditions as for [`AppletServer::serve`], plus STA
    /// failures (flattening errors, combinational loops).
    pub fn serve_slack_summary(
        &mut self,
        customer: &str,
        today: u32,
        circuit: &ipd_hdl::Circuit,
        constraints: &ipd_estimate::TimingConstraints,
    ) -> Result<ipd_estimate::SlackSummary, CoreError> {
        self.authorize(customer, today)?;
        let report = ipd_estimate::analyze_timing(circuit, constraints)?;
        let summary = report.slack_summary();
        self.audit.push(AuditRecord {
            customer: customer.to_owned(),
            day: today,
            outcome: format!(
                "served slack summary for {} ({})",
                circuit.name(),
                report.summary()
            ),
        });
        Ok(summary)
    }

    /// The full access log.
    #[must_use]
    pub fn audit_log(&self) -> &[AuditRecord] {
        &self.audit
    }

    /// How many times a customer was served (metering).
    #[must_use]
    pub fn access_count(&self, customer: &str) -> usize {
        self.audit
            .iter()
            .filter(|r| r.customer == customer && r.outcome.starts_with("served"))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_and_licensed_configurations_differ() {
        let passive = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
        let licensed = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let pb = passive.required_bundles();
        let lb = licensed.required_bundles();
        assert!(!pb.contains(&"Viewer"), "passive ships no viewers");
        assert!(!pb.contains(&"Netlist"));
        assert!(lb.contains(&"Viewer"));
        assert!(lb.contains(&"Netlist"));
        assert!(licensed.download_size() > passive.download_size());
    }

    #[test]
    fn black_box_configuration_ships_no_viewer() {
        let bb = IpExecutable::new("kcm", "byu", CapabilitySet::black_box());
        assert!(!bb.required_bundles().contains(&"Viewer"));
        assert!(!bb.required_bundles().contains(&"Netlist"));
    }

    #[test]
    fn display_shows_granted_and_withheld() {
        let exe = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
        let text = exe.to_string();
        assert!(text.contains("[x] configure"));
        assert!(text.contains("[ ] netlist (withheld)"));
    }

    #[test]
    fn server_serves_per_profile() {
        let mut server = AppletServer::new("byu", b"key".to_vec());
        server.enroll("passive-co", "kcm", CapabilitySet::passive(), 0, 365);
        server.enroll("licensed-co", "kcm", CapabilitySet::licensed(), 0, 365);
        let p = server.serve("passive-co", 10).unwrap();
        let l = server.serve("licensed-co", 10).unwrap();
        assert!(l.capabilities().is_superset_of(&p.capabilities()));
        assert_ne!(p.capabilities(), l.capabilities());
    }

    #[test]
    fn sealed_delivery_binds_to_the_customer() {
        let vendor_key = b"vendor-key".to_vec();
        let mut server = AppletServer::new("byu", vendor_key.clone());
        let acme = server.enroll("acme", "kcm", CapabilitySet::passive(), 0, 365);
        let bolt = server.enroll("bolt", "kcm", CapabilitySet::passive(), 0, 365);
        let sealed = server.serve_sealed("acme", 10, &vendor_key).unwrap();
        assert!(!sealed.is_empty());
        let acme_key = crate::seal::bundle_key(&vendor_key, &acme);
        let bolt_key = crate::seal::bundle_key(&vendor_key, &bolt);
        for (name, bytes) in &sealed {
            let plain =
                crate::seal::unseal(bytes, &acme_key).unwrap_or_else(|e| panic!("{name}: {e}"));
            // The plaintext is a valid archive container.
            ipd_pack::Archive::from_bytes(&plain).expect("archive");
            // The other customer's key fails authentication.
            assert!(crate::seal::unseal(bytes, &bolt_key).is_err());
        }
    }

    #[test]
    fn design_delivery_is_lint_gated() {
        use ipd_techlib::LogicCtx;
        let vendor_key = b"vendor-key".to_vec();
        let mut server = AppletServer::new("byu", vendor_key.clone());
        let license = server.enroll("acme", "kcm", CapabilitySet::licensed(), 0, 365);

        // A design with contention is refused, and the refusal audited.
        let mut broken = ipd_hdl::Circuit::new("broken");
        let mut ctx = broken.root_ctx();
        let a = ctx.add_port(ipd_hdl::PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(ipd_hdl::PortSpec::output("y", 1)).unwrap();
        ctx.buffer(a, y).unwrap();
        ctx.buffer(a, y).unwrap();
        let config = ipd_lint::LintConfig::new();
        let err = server
            .serve_design_sealed("acme", 10, &vendor_key, &broken, &config)
            .unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { errors: 1, .. }));
        let last = server.audit_log().last().unwrap();
        assert!(last.outcome.contains("refused"), "{}", last.outcome);

        // A clean generator output is sealed to the customer key.
        let kcm = ipd_modgen::KcmMultiplier::new(-56, 8, 12).signed(true);
        let circuit = ipd_hdl::Circuit::from_generator(&kcm).unwrap();
        let sealed = server
            .serve_design_sealed("acme", 11, &vendor_key, &circuit, &config)
            .expect("clean design serves");
        assert!(sealed.report().is_clean());
        let key = crate::seal::bundle_key(&vendor_key, &license);
        let plain = crate::seal::unseal(sealed.bytes(), &key).unwrap();
        assert!(String::from_utf8(plain).unwrap().starts_with("(edif"));
        let last = server.audit_log().last().unwrap();
        assert!(last.outcome.contains("served design"), "{}", last.outcome);
    }

    #[test]
    fn design_delivery_is_timing_gated() {
        use ipd_techlib::LogicCtx;
        let vendor_key = b"vendor-key".to_vec();
        let mut server = AppletServer::new("byu", vendor_key.clone());
        server.enroll("acme", "chain", CapabilitySet::licensed(), 0, 365);

        // A registered chain that cannot make 3 ns.
        let mut slow = ipd_hdl::Circuit::new("chain");
        {
            let mut ctx = slow.root_ctx();
            let clk = ctx.add_port(ipd_hdl::PortSpec::input("clk", 1)).unwrap();
            let d = ctx.add_port(ipd_hdl::PortSpec::input("d", 1)).unwrap();
            let q = ctx.add_port(ipd_hdl::PortSpec::output("q", 1)).unwrap();
            let mut cur: ipd_hdl::Signal = ctx.wire("s0", 1).into();
            ctx.fd(clk, d, cur.clone()).unwrap();
            for i in 0..16 {
                let nxt = ctx.wire(&format!("s{}", i + 1), 1);
                ctx.inv(cur, nxt).unwrap();
                cur = nxt.into();
            }
            ctx.fd(clk, cur, q).unwrap();
        }
        let mut constraints = ipd_lint::TimingConstraints::new();
        constraints.clock("clk", 3.0, "clk");
        let config = ipd_lint::LintConfig::new();
        let err = server
            .serve_design_sealed_timed("acme", 10, &vendor_key, &slow, &config, Some(&constraints))
            .unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { .. }));
        assert!(server
            .audit_log()
            .last()
            .unwrap()
            .outcome
            .contains("refused"));

        // The customer can inspect the aggregate summary (audited)...
        let summary = server
            .serve_slack_summary("acme", 10, &slow, &constraints)
            .unwrap();
        assert!(summary.violations() > 0);
        assert!(summary.worst_slack().unwrap() < 0.0);
        // ...and the untimed path still serves the same design.
        server
            .serve_design_sealed("acme", 11, &vendor_key, &slow, &config)
            .expect("untimed delivery ignores slack");
    }

    #[test]
    fn unknown_and_expired_customers_refused_and_audited() {
        let mut server = AppletServer::new("byu", b"key".to_vec());
        server.enroll("acme", "kcm", CapabilitySet::passive(), 0, 30);
        assert!(matches!(
            server.serve("nobody", 10),
            Err(CoreError::UnknownCustomer { .. })
        ));
        assert!(matches!(
            server.serve("acme", 31),
            Err(CoreError::LicenseExpired { .. })
        ));
        assert_eq!(server.audit_log().len(), 2);
        assert_eq!(server.access_count("acme"), 0);
        server.serve("acme", 20).unwrap();
        assert_eq!(server.access_count("acme"), 1);
    }
}
