//! The applet host: the browser-side sandbox an applet runs in.
//!
//! Java applets run inside the browser's security model: limited
//! resources, no network connections without explicit user permission
//! (the paper's §4.2 footnote), and cached downloads. [`AppletHost`]
//! reproduces those rules for applet sessions.

use std::collections::{HashMap, HashSet};

use crate::deliver::{AppletServer, IpExecutable};
use crate::error::CoreError;
use crate::store::{builtin_digests, BundleDelivery, DeliveryResponse, Digest};

/// Sandbox resource limits for one applet host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum cells a built circuit may contain.
    pub max_cells: u64,
    /// Maximum simulated cycles per `cycle` call.
    pub max_cycles_per_call: u64,
    /// Maximum bytes of netlist text returned to the page.
    pub max_netlist_bytes: u64,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_cells: 2_000_000,
            max_cycles_per_call: 1_000_000,
            max_netlist_bytes: 64 << 20,
        }
    }
}

/// The browser-side environment that downloads and hosts applets.
///
/// # Examples
///
/// ```
/// use ipd_core::{AppletHost, CapabilitySet, IpExecutable};
///
/// let mut host = AppletHost::new();
/// let exe = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
/// let first = host.load(&exe);
/// let again = host.load(&exe);
/// assert!(first > 0);
/// assert_eq!(again, 0, "bundles are cached like a browser cache");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AppletHost {
    limits: ResourceLimits,
    network_permission: bool,
    cached_bundles: HashSet<String>,
    /// Content digests of cached bundles — what a conditional fetch
    /// presents to the server (the browser-cache validator).
    cached_digests: HashMap<String, Digest>,
    bytes_downloaded: usize,
}

impl AppletHost {
    /// A host with default limits and no network permission.
    #[must_use]
    pub fn new() -> Self {
        AppletHost {
            limits: ResourceLimits::default(),
            ..AppletHost::default()
        }
    }

    /// A host with explicit limits.
    #[must_use]
    pub fn with_limits(limits: ResourceLimits) -> Self {
        AppletHost {
            limits,
            ..AppletHost::default()
        }
    }

    /// The sandbox limits.
    #[must_use]
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// The user grants network permission (required before any
    /// black-box socket export, per the default applet security model).
    pub fn grant_network_permission(&mut self) {
        self.network_permission = true;
    }

    /// Whether network connections are allowed.
    #[must_use]
    pub fn network_allowed(&self) -> bool {
        self.network_permission
    }

    /// Checks network permission.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NetworkDenied`] when the user has not
    /// granted permission.
    pub fn check_network(&self) -> Result<(), CoreError> {
        if self.network_permission {
            Ok(())
        } else {
            Err(CoreError::NetworkDenied)
        }
    }

    /// "Downloads" the executable's bundles, returning the bytes
    /// fetched this time. Already-cached bundles are free — revisiting
    /// a page re-uses them, matching the paper's §4.4 discussion.
    pub fn load(&mut self, executable: &IpExecutable) -> usize {
        let mut fetched = 0usize;
        for bundle in executable.packed_set().bundles() {
            if self.cached_bundles.insert(bundle.name().to_owned()) {
                if let Some(digest) = builtin_digests().get(bundle.name()) {
                    self.cached_digests
                        .insert(bundle.name().to_owned(), *digest);
                }
                fetched += bundle.packed_size();
            }
        }
        self.bytes_downloaded += fetched;
        fetched
    }

    /// Fetches a customer's bundles from an [`AppletServer`]
    /// *conditionally*: the host presents the digests it already
    /// holds, the server answers with payloads only for missing or
    /// changed bundles (the HTTP-304 analog), and the host installs
    /// the result. Returns the bytes actually transferred.
    ///
    /// # Errors
    ///
    /// Propagates license failures from [`AppletServer::fetch`].
    pub fn sync(
        &mut self,
        server: &mut AppletServer,
        customer: &str,
        today: u32,
    ) -> Result<usize, CoreError> {
        let have = self.held_digests();
        let response = server.fetch(customer, today, &have)?;
        Ok(self.apply(&response))
    }

    /// [`AppletHost::sync`] against a *remote* vendor over the wire:
    /// the host presents its held digests through a connected
    /// [`crate::DeliveryClient`], the server answers payloads or
    /// not-modified markers, and the host installs the result.
    /// Returns the bytes actually transferred.
    ///
    /// (No network-permission check: this is the browser fetching from
    /// the vendor's web server — the direction the applet security
    /// model allows. The gate of §4.2 covers *applet-initiated*
    /// sockets, e.g. black-box co-simulation exports.)
    ///
    /// # Errors
    ///
    /// Propagates license refusals and transport failures from the
    /// delivery client.
    pub fn sync_wire(
        &mut self,
        client: &mut crate::DeliveryClient,
        today: u32,
    ) -> Result<usize, CoreError> {
        let have = self.held_digests();
        let response = client.fetch(today, &have)?;
        Ok(self.apply(&response))
    }

    /// Installs a delivery response into the cache, returning the
    /// bytes fetched (not-modified markers are free).
    pub fn apply(&mut self, response: &DeliveryResponse) -> usize {
        let mut fetched = 0usize;
        for item in response.items() {
            match item {
                BundleDelivery::NotModified { .. } => {}
                BundleDelivery::Payload {
                    name,
                    digest,
                    bytes,
                } => {
                    self.cached_bundles.insert(name.clone());
                    self.cached_digests.insert(name.clone(), *digest);
                    fetched += bytes.len();
                }
            }
        }
        self.bytes_downloaded += fetched;
        fetched
    }

    /// The content digests this host already holds.
    #[must_use]
    pub fn held_digests(&self) -> Vec<Digest> {
        self.cached_digests.values().copied().collect()
    }

    /// Total bytes fetched over this host's lifetime.
    #[must_use]
    pub fn bytes_downloaded(&self) -> usize {
        self.bytes_downloaded
    }

    /// Names of cached bundles.
    #[must_use]
    pub fn cached(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.cached_bundles.iter().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;

    #[test]
    fn network_permission_gate() {
        let mut host = AppletHost::new();
        assert!(matches!(
            host.check_network(),
            Err(CoreError::NetworkDenied)
        ));
        host.grant_network_permission();
        host.check_network().expect("granted");
        assert!(host.network_allowed());
    }

    #[test]
    fn upgrade_only_downloads_the_delta() {
        let mut host = AppletHost::new();
        let passive = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
        let licensed = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let first = host.load(&passive);
        let upgrade = host.load(&licensed);
        assert!(upgrade > 0, "licensed needs extra bundles");
        assert!(
            upgrade < first + licensed.download_size() - passive.download_size() + 1,
            "shared bundles come from cache"
        );
        assert_eq!(host.bytes_downloaded(), first + upgrade);
        assert!(host.cached().contains(&"Viewer"));
    }

    #[test]
    fn conditional_sync_downloads_once() {
        let mut server = AppletServer::new("byu", b"key".to_vec());
        server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
        let mut host = AppletHost::new();
        let first = host.sync(&mut server, "acme", 1).expect("first sync");
        assert!(first > 0);
        let second = host.sync(&mut server, "acme", 2).expect("second sync");
        assert_eq!(second, 0, "everything revalidates as not-modified");
        assert_eq!(host.bytes_downloaded(), first);
        assert!(!host.held_digests().is_empty());
    }

    #[test]
    fn legacy_load_then_sync_transfers_nothing() {
        // `load` records the builtin digests, so a later conditional
        // fetch of the same executable is all 304s.
        let mut server = AppletServer::new("byu", b"key".to_vec());
        server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
        let exe = server.serve("acme", 1).expect("serve");
        let mut host = AppletHost::new();
        assert!(host.load(&exe) > 0);
        let delta = host.sync(&mut server, "acme", 1).expect("sync");
        assert_eq!(delta, 0);
    }

    #[test]
    fn custom_limits() {
        let limits = ResourceLimits {
            max_cells: 10,
            max_cycles_per_call: 5,
            max_netlist_bytes: 100,
        };
        let host = AppletHost::with_limits(limits);
        assert_eq!(host.limits().max_cells, 10);
    }
}
