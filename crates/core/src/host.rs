//! The applet host: the browser-side sandbox an applet runs in.
//!
//! Java applets run inside the browser's security model: limited
//! resources, no network connections without explicit user permission
//! (the paper's §4.2 footnote), and cached downloads. [`AppletHost`]
//! reproduces those rules for applet sessions.

use std::collections::HashSet;

use crate::deliver::IpExecutable;
use crate::error::CoreError;

/// Sandbox resource limits for one applet host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum cells a built circuit may contain.
    pub max_cells: u64,
    /// Maximum simulated cycles per `cycle` call.
    pub max_cycles_per_call: u64,
    /// Maximum bytes of netlist text returned to the page.
    pub max_netlist_bytes: u64,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_cells: 2_000_000,
            max_cycles_per_call: 1_000_000,
            max_netlist_bytes: 64 << 20,
        }
    }
}

/// The browser-side environment that downloads and hosts applets.
///
/// # Examples
///
/// ```
/// use ipd_core::{AppletHost, CapabilitySet, IpExecutable};
///
/// let mut host = AppletHost::new();
/// let exe = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
/// let first = host.load(&exe);
/// let again = host.load(&exe);
/// assert!(first > 0);
/// assert_eq!(again, 0, "bundles are cached like a browser cache");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AppletHost {
    limits: ResourceLimits,
    network_permission: bool,
    cached_bundles: HashSet<String>,
    bytes_downloaded: usize,
}

impl AppletHost {
    /// A host with default limits and no network permission.
    #[must_use]
    pub fn new() -> Self {
        AppletHost {
            limits: ResourceLimits::default(),
            ..AppletHost::default()
        }
    }

    /// A host with explicit limits.
    #[must_use]
    pub fn with_limits(limits: ResourceLimits) -> Self {
        AppletHost {
            limits,
            ..AppletHost::default()
        }
    }

    /// The sandbox limits.
    #[must_use]
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// The user grants network permission (required before any
    /// black-box socket export, per the default applet security model).
    pub fn grant_network_permission(&mut self) {
        self.network_permission = true;
    }

    /// Whether network connections are allowed.
    #[must_use]
    pub fn network_allowed(&self) -> bool {
        self.network_permission
    }

    /// Checks network permission.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NetworkDenied`] when the user has not
    /// granted permission.
    pub fn check_network(&self) -> Result<(), CoreError> {
        if self.network_permission {
            Ok(())
        } else {
            Err(CoreError::NetworkDenied)
        }
    }

    /// "Downloads" the executable's bundles, returning the bytes
    /// fetched this time. Already-cached bundles are free — revisiting
    /// a page re-uses them, matching the paper's §4.4 discussion.
    pub fn load(&mut self, executable: &IpExecutable) -> usize {
        let mut fetched = 0usize;
        for bundle in executable.bundle_set().bundles() {
            if self.cached_bundles.insert(bundle.name().to_owned()) {
                fetched += bundle.packed_size();
            }
        }
        self.bytes_downloaded += fetched;
        fetched
    }

    /// Total bytes fetched over this host's lifetime.
    #[must_use]
    pub fn bytes_downloaded(&self) -> usize {
        self.bytes_downloaded
    }

    /// Names of cached bundles.
    #[must_use]
    pub fn cached(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.cached_bundles.iter().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;

    #[test]
    fn network_permission_gate() {
        let mut host = AppletHost::new();
        assert!(matches!(
            host.check_network(),
            Err(CoreError::NetworkDenied)
        ));
        host.grant_network_permission();
        host.check_network().expect("granted");
        assert!(host.network_allowed());
    }

    #[test]
    fn upgrade_only_downloads_the_delta() {
        let mut host = AppletHost::new();
        let passive = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
        let licensed = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let first = host.load(&passive);
        let upgrade = host.load(&licensed);
        assert!(upgrade > 0, "licensed needs extra bundles");
        assert!(
            upgrade < first + licensed.download_size() - passive.download_size() + 1,
            "shared bundles come from cache"
        );
        assert_eq!(host.bytes_downloaded(), first + upgrade);
        assert!(host.cached().contains(&"Viewer"));
    }

    #[test]
    fn custom_limits() {
        let limits = ResourceLimits {
            max_cells: 10,
            max_cycles_per_call: 5,
            max_netlist_bytes: 100,
        };
        let host = AppletHost::with_limits(limits);
        assert_eq!(host.limits().max_cells, 10);
    }
}
