//! Content-addressed bundle store and conditional-delivery protocol.
//!
//! The paper's §4.4 partitioning lets an applet "require only those
//! Jar files required by the applet code"; this module upgrades that
//! to serve-many semantics. A [`BundleStore`] memoizes each bundle's
//! compressed form under the SHA-256 digest of its *contents*, so the
//! first request pays the LZSS cost and every later request — from any
//! customer whose subset includes the same bundle — is an `Arc`
//! pointer clone. Conditional delivery adds the HTTP-304 analog: a
//! client presents the digests it already holds and the server
//! responds with [`BundleDelivery::NotModified`] instead of bytes.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use ipd_pack::{Bundle, BundleSet, PackedBundle};

use crate::sha::sha256_parts;

/// A SHA-256 content digest.
pub type Digest = [u8; 32];

/// Digest of a bundle's uncompressed contents: its name plus every
/// entry's name and data, length-prefix framed. Any mutation — a
/// renamed entry, a flipped byte — changes the digest, so a mutated
/// bundle can never alias a cached one.
#[must_use]
pub fn bundle_digest(bundle: &Bundle) -> Digest {
    let mut parts: Vec<&[u8]> = Vec::with_capacity(2 + 2 * bundle.archive().len());
    parts.push(b"ipd-bundle-v1");
    parts.push(bundle.name().as_bytes());
    for entry in bundle.archive().entries() {
        parts.push(entry.name().as_bytes());
        parts.push(entry.data());
    }
    sha256_parts(&parts)
}

/// Digests of the built-in [`BundleSet::full_set`] bundles, computed
/// once per process (the built-in sets are immutable: their contents
/// are embedded at compile time).
pub(crate) fn builtin_digests() -> &'static HashMap<String, Digest> {
    static DIGESTS: OnceLock<HashMap<String, Digest>> = OnceLock::new();
    DIGESTS.get_or_init(|| {
        BundleSet::full_set()
            .bundles()
            .iter()
            .map(|b| (b.name().to_owned(), bundle_digest(b)))
            .collect()
    })
}

/// Counters a delivery bench (and an operator) watches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Requests answered from the packed cache.
    pub hits: u64,
    /// Requests that had to run compression.
    pub misses: u64,
    /// Bundles skipped because the client already held their digest
    /// (the HTTP-304 analog).
    pub not_modified: u64,
    /// Compressed payload bytes actually transferred.
    pub bytes_served: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} not-modified, {} bytes served",
            self.hits, self.misses, self.not_modified, self.bytes_served
        )
    }
}

/// A compress-once, content-addressed cache of packed bundles.
///
/// # Examples
///
/// ```
/// use ipd_core::BundleStore;
/// use ipd_pack::Bundle;
///
/// # fn main() -> Result<(), ipd_pack::PackError> {
/// let mut store = BundleStore::new();
/// let bundle = Bundle::from_entries("Demo", "demo", &[("a", "aaaa")])?;
/// let (digest, first) = store.get_or_pack(&bundle);
/// let (_, second) = store.get_or_pack(&bundle);
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert!(store.contains(&digest));
/// assert_eq!(store.stats().misses, 1);
/// assert_eq!(store.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BundleStore {
    packed: HashMap<Digest, Arc<PackedBundle>>,
    threads: usize,
    stats: StoreStats,
}

impl Default for BundleStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BundleStore {
    /// A store packing with the machine's available parallelism.
    #[must_use]
    pub fn new() -> Self {
        Self::with_threads(ipd_pack::default_threads())
    }

    /// A store packing cache misses on up to `threads` threads.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        BundleStore {
            packed: HashMap::new(),
            threads: threads.max(1),
            stats: StoreStats::default(),
        }
    }

    /// Looks up the packed form of `bundle` by content digest, packing
    /// (and caching) it on a miss.
    pub fn get_or_pack(&mut self, bundle: &Bundle) -> (Digest, Arc<PackedBundle>) {
        let digest = bundle_digest(bundle);
        (digest, self.get_or_pack_keyed(digest, bundle))
    }

    /// Same as [`BundleStore::get_or_pack`], but with the digest
    /// supplied by the caller (the applet server precomputes digests
    /// for its immutable catalog, so the warm path hashes nothing).
    pub fn get_or_pack_keyed(&mut self, digest: Digest, bundle: &Bundle) -> Arc<PackedBundle> {
        if let Some(found) = self.packed.get(&digest) {
            self.stats.hits += 1;
            return Arc::clone(found);
        }
        self.stats.misses += 1;
        let packed = Arc::new(PackedBundle::with_threads(bundle, self.threads));
        // Serialize once up front so serving is a pure pointer clone.
        let _ = packed.wire_bytes();
        self.packed.insert(digest, Arc::clone(&packed));
        packed
    }

    /// Whether a digest is cached.
    #[must_use]
    pub fn contains(&self, digest: &Digest) -> bool {
        self.packed.contains_key(digest)
    }

    /// Number of distinct cached bundles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// The hit/miss/bytes counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    pub(crate) fn note_served(&mut self, bytes: usize) {
        self.stats.bytes_served += bytes as u64;
    }

    pub(crate) fn note_not_modified(&mut self) {
        self.stats.not_modified += 1;
    }
}

/// One row of a delivery manifest: what the server would ship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Bundle name.
    pub name: String,
    /// Content digest of the bundle.
    pub digest: Digest,
    /// Compressed download size in bytes.
    pub packed_size: usize,
}

/// The bundle list (names, digests, sizes) for one customer's
/// executable — what a client consults to decide which digests to
/// present in a conditional fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryManifest {
    product: String,
    entries: Vec<ManifestEntry>,
}

impl DeliveryManifest {
    pub(crate) fn new(product: String, entries: Vec<ManifestEntry>) -> Self {
        DeliveryManifest { product, entries }
    }

    /// Product the manifest describes.
    #[must_use]
    pub fn product(&self) -> &str {
        &self.product
    }

    /// The manifest rows.
    #[must_use]
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Total download size if the client holds nothing.
    #[must_use]
    pub fn total_packed(&self) -> usize {
        self.entries.iter().map(|e| e.packed_size).sum()
    }
}

/// One bundle's delivery outcome in a conditional fetch.
#[derive(Debug, Clone)]
pub enum BundleDelivery {
    /// The client already holds this exact content (HTTP-304 analog).
    NotModified {
        /// Bundle name.
        name: String,
        /// The digest the client presented.
        digest: Digest,
    },
    /// Full compressed container bytes, shared from the store.
    Payload {
        /// Bundle name.
        name: String,
        /// Content digest of the delivered bundle.
        digest: Digest,
        /// The serialized archive container (store-shared storage).
        bytes: Arc<[u8]>,
    },
}

impl BundleDelivery {
    /// Bundle name for either outcome.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            BundleDelivery::NotModified { name, .. } | BundleDelivery::Payload { name, .. } => name,
        }
    }

    /// Content digest for either outcome.
    #[must_use]
    pub fn digest(&self) -> &Digest {
        match self {
            BundleDelivery::NotModified { digest, .. } | BundleDelivery::Payload { digest, .. } => {
                digest
            }
        }
    }
}

/// The server's answer to a conditional fetch.
#[derive(Debug, Clone)]
pub struct DeliveryResponse {
    product: String,
    items: Vec<BundleDelivery>,
}

impl DeliveryResponse {
    pub(crate) fn new(product: String, items: Vec<BundleDelivery>) -> Self {
        DeliveryResponse { product, items }
    }

    /// Product the response serves.
    #[must_use]
    pub fn product(&self) -> &str {
        &self.product
    }

    /// Per-bundle outcomes in required-bundle order.
    #[must_use]
    pub fn items(&self) -> &[BundleDelivery] {
        &self.items
    }

    /// Compressed bytes actually transferred.
    #[must_use]
    pub fn bytes_transferred(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                BundleDelivery::Payload { bytes, .. } => bytes.len(),
                BundleDelivery::NotModified { .. } => 0,
            })
            .sum()
    }

    /// How many bundles carried payloads.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, BundleDelivery::Payload { .. }))
            .count()
    }

    /// How many bundles were skipped as not-modified.
    #[must_use]
    pub fn not_modified(&self) -> usize {
        self.items.len() - self.delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_content_addressed() {
        let a = Bundle::from_entries("X", "d", &[("f", "hello world")]).unwrap();
        let same = Bundle::from_entries("X", "d", &[("f", "hello world")]).unwrap();
        let flipped = Bundle::from_entries("X", "d", &[("f", "hello worlD")]).unwrap();
        let renamed = Bundle::from_entries("X", "d", &[("g", "hello world")]).unwrap();
        assert_eq!(bundle_digest(&a), bundle_digest(&same));
        assert_ne!(bundle_digest(&a), bundle_digest(&flipped));
        assert_ne!(bundle_digest(&a), bundle_digest(&renamed));
    }

    #[test]
    fn mutated_bundle_misses_the_cache() {
        let mut store = BundleStore::with_threads(1);
        let a = Bundle::from_entries("X", "d", &[("f", "hello world")]).unwrap();
        let b = Bundle::from_entries("X", "d", &[("f", "hello worlD")]).unwrap();
        store.get_or_pack(&a);
        store.get_or_pack(&b);
        assert_eq!(store.len(), 2, "distinct contents, distinct slots");
        assert_eq!(store.stats().misses, 2);
        store.get_or_pack(&a);
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn cached_wire_bytes_match_cold_serialization() {
        let mut store = BundleStore::with_threads(2);
        let bundle =
            Bundle::from_entries("X", "d", &[("f", "abcabcabc"), ("g", "xyzxyzxyz")]).unwrap();
        let (_, packed) = store.get_or_pack(&bundle);
        assert_eq!(
            packed.wire_bytes().to_vec(),
            bundle.archive().to_bytes(),
            "store must serve byte-identical containers"
        );
    }

    #[test]
    fn builtin_digests_cover_the_full_set() {
        let digests = builtin_digests();
        for bundle in BundleSet::full_set().bundles() {
            assert!(digests.contains_key(bundle.name()));
        }
        assert_eq!(digests.len(), BundleSet::full_set().bundles().len());
    }
}
