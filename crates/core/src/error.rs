//! Errors of the IP delivery layer.

use std::fmt;

use crate::capability::Capability;

/// Errors raised by applet sessions, hosts, licensing and protection.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The executable's capability set does not grant the operation —
    /// the vendor chose not to expose it to this customer.
    CapabilityDenied {
        /// The capability the operation requires.
        capability: Capability,
    },
    /// A license failed signature verification.
    LicenseInvalid {
        /// Why verification failed.
        reason: String,
    },
    /// A license is past its expiry day.
    LicenseExpired {
        /// Expiry day (days since epoch).
        expiry_day: u32,
        /// The day verification ran.
        today: u32,
    },
    /// The applet host's resource sandbox rejected the operation.
    ResourceLimit {
        /// Which limit was hit.
        limit: &'static str,
        /// The configured maximum.
        max: u64,
        /// The requested amount.
        requested: u64,
    },
    /// A network connection was attempted without user permission
    /// (the applet security model of the paper's §4.2 footnote).
    NetworkDenied,
    /// No circuit has been built yet in this session.
    NotBuilt,
    /// The requested customer profile is unknown to the vendor server.
    UnknownCustomer {
        /// The customer id.
        customer: String,
    },
    /// The requested module is not in the IP catalog.
    UnknownModule {
        /// The module name.
        module: String,
    },
    /// The design failed the pre-delivery lint gate: the static
    /// analyzer found error-severity findings that no waiver covers.
    /// A vendor must not ship a structurally broken design; fix the
    /// generator or waive the finding explicitly in the
    /// [`ipd_lint::LintConfig`].
    LintRejected {
        /// Unwaived error-severity finding count.
        errors: usize,
        /// The report's one-line summary.
        summary: String,
    },
    /// The design failed the formal equivalence gate: the checker found
    /// a distinguishing input/state assignment against the golden
    /// reference netlist. The vector ships with the refusal (already
    /// replay-confirmed against both simulation engines), so the vendor
    /// can reproduce the divergence in one simulator run. Unlike lint
    /// findings this cannot be waived — a certificate stating "proved
    /// equivalent" must never be issued over a known counterexample.
    EquivRejected {
        /// The differing output or next-state function (golden-side
        /// naming), e.g. `y[3]` or `next(top/acc/ff0)[0]`.
        function: String,
        /// The golden design's name.
        golden: String,
        /// The distinguishing assignment, rendered as
        /// `inputs [...] state [...]` with golden/revised values.
        vector: String,
    },
    /// The equivalence engine could not carry out the check at all —
    /// mismatched boundaries, combinational loops, black boxes, or SAT
    /// resource exhaustion. No certificate is issued either way.
    Verify(ipd_verify::VerifyError),
    /// The remote delivery server reported an application error over
    /// the wire (a typed error frame).
    Remote {
        /// The remote error message.
        message: String,
    },
    /// A transport-layer failure (handshake refusal, framing, deadline)
    /// with no more specific mapping.
    Wire(ipd_wire::WireError),
    /// An underlying circuit error.
    Hdl(ipd_hdl::HdlError),
    /// An underlying simulation error.
    Sim(ipd_sim::SimError),
    /// An underlying netlisting error.
    Netlist(ipd_netlist::NetlistError),
    /// An underlying estimation error.
    Estimate(ipd_estimate::EstimateError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CapabilityDenied { capability } => {
                write!(f, "operation requires the {capability} capability, which this executable does not grant")
            }
            CoreError::LicenseInvalid { reason } => write!(f, "invalid license: {reason}"),
            CoreError::LicenseExpired { expiry_day, today } => {
                write!(
                    f,
                    "license expired on day {expiry_day} (today is day {today})"
                )
            }
            CoreError::ResourceLimit {
                limit,
                max,
                requested,
            } => write!(
                f,
                "sandbox limit {limit} exceeded: requested {requested}, maximum {max}"
            ),
            CoreError::NetworkDenied => {
                write!(f, "network access requires explicit user permission")
            }
            CoreError::NotBuilt => write!(f, "no circuit instance built yet"),
            CoreError::UnknownCustomer { customer } => {
                write!(f, "no profile for customer {customer}")
            }
            CoreError::UnknownModule { module } => {
                write!(f, "no catalog module named {module}")
            }
            CoreError::LintRejected { errors, summary } => {
                write!(
                    f,
                    "delivery refused: {errors} unwaived lint error(s) ({summary})"
                )
            }
            CoreError::EquivRejected {
                function,
                golden,
                vector,
            } => {
                write!(
                    f,
                    "delivery refused: not equivalent to golden '{golden}' — \
                     '{function}' differs {vector}"
                )
            }
            CoreError::Verify(e) => write!(f, "equivalence check failed: {e}"),
            CoreError::Remote { message } => write!(f, "remote delivery error: {message}"),
            CoreError::Wire(e) => write!(f, "wire error: {e}"),
            CoreError::Hdl(e) => write!(f, "circuit error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Estimate(e) => write!(f, "estimate error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Wire(e) => Some(e),
            CoreError::Hdl(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            CoreError::Estimate(e) => Some(e),
            CoreError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ipd_wire::WireError> for CoreError {
    fn from(e: ipd_wire::WireError) -> Self {
        use ipd_wire::{ErrorCode, WireError};
        match e {
            // Typed application error frames carry the server's
            // `CoreError` message.
            WireError::Remote {
                code: ErrorCode::App,
                message,
            } => CoreError::Remote { message },
            other => CoreError::Wire(other),
        }
    }
}

impl From<ipd_hdl::HdlError> for CoreError {
    fn from(e: ipd_hdl::HdlError) -> Self {
        CoreError::Hdl(e)
    }
}

impl From<ipd_sim::SimError> for CoreError {
    fn from(e: ipd_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<ipd_netlist::NetlistError> for CoreError {
    fn from(e: ipd_netlist::NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<ipd_estimate::EstimateError> for CoreError {
    fn from(e: ipd_estimate::EstimateError) -> Self {
        CoreError::Estimate(e)
    }
}

impl From<ipd_verify::VerifyError> for CoreError {
    fn from(e: ipd_verify::VerifyError) -> Self {
        CoreError::Verify(e)
    }
}
