//! Networked delivery front-end: the vendor's [`AppletServer`] exposed
//! over the shared `ipd-wire` transport.
//!
//! The paper's delivery story is a *web server* handing executables to
//! browsers (§1.1, §4.4). This module puts that server on a real
//! socket: [`DeliveryService`] adapts an [`AppletServer`] (plus a
//! registry of lintable designs) to the `ipd-wire` session model, and
//! [`DeliveryClient`] is the browser side — it drives the same
//! HTTP-304-style conditional fetch as the in-process
//! [`AppletHost::sync`](crate::AppletHost::sync), but over the wire.
//!
//! Authentication rides the wire handshake: the client's hello token
//! is the customer id, checked against the vendor's enrolled profiles
//! before any endpoint is served. License verification still happens
//! per request inside the [`AppletServer`], so an expired customer is
//! refused (and audited) exactly as in-process.
//!
//! Every payload is encoded with the hardened `ipd-wire` codec —
//! length caps validated before allocation, trailing bytes rejected —
//! so a hostile peer cannot make either side over-allocate.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};

use ipd_wire::{
    codec, ClientConfig, ErrorCode, Reader, Reply, ServerHandle, WireClient, WireConfig, WireError,
    WireServer, WireService, WireSession, WireStats,
};

use crate::deliver::{AppletServer, AuditRecord};
use crate::error::CoreError;
use crate::store::{
    BundleDelivery, DeliveryManifest, DeliveryResponse, Digest, ManifestEntry, StoreStats,
};

/// Wire endpoint ids served by the delivery front-end. They live in
/// the `0x20` block so they can never collide with the co-simulation
/// endpoints (message tags below `0x20`).
pub mod endpoints {
    /// Bundle manifest for the calling customer (names, digests,
    /// packed sizes).
    pub const MANIFEST: u16 = 0x20;
    /// Conditional bundle fetch: client presents held digests, server
    /// answers payloads or not-modified markers.
    pub const FETCH: u16 = 0x21;
    /// All of the customer's bundles, sealed to their license key.
    pub const SEALED_BUNDLES: u16 = 0x22;
    /// A registered design, lint-gated and sealed to the license key.
    pub const SEALED_DESIGN: u16 = 0x23;
    /// The static-analysis report for a registered design.
    pub const LINT_REPORT: u16 = 0x24;
    /// The constraint-evaluated STA slack summary for a registered
    /// design (aggregate closure view; requires the design to have
    /// been registered with timing constraints).
    pub const STA_REPORT: u16 = 0x25;
    /// One packed bundle segment by content digest. The response body
    /// is exactly the packed wire bytes — no envelope fields — so the
    /// server can serve the store's shared `Arc` zero-copy into its
    /// socket write.
    pub const FETCH_SEGMENT: u16 = 0x26;
}

/// Human-readable name of a delivery endpoint (for traffic reports).
#[must_use]
pub fn delivery_endpoint_name(endpoint: u16) -> &'static str {
    match endpoint {
        endpoints::MANIFEST => "delivery.manifest",
        endpoints::FETCH => "delivery.fetch",
        endpoints::SEALED_BUNDLES => "delivery.sealed-bundles",
        endpoints::SEALED_DESIGN => "delivery.sealed-design",
        endpoints::LINT_REPORT => "delivery.lint-report",
        endpoints::STA_REPORT => "delivery.sta-report",
        endpoints::FETCH_SEGMENT => "delivery.fetch-segment",
        _ => "delivery.unknown",
    }
}

/// Maps a delivery-layer failure to its wire error frame. License
/// problems become [`ErrorCode::Unauthorized`] so a client can react
/// (re-enroll, renew) without parsing message text; everything else is
/// an application error.
fn core_to_wire(e: &CoreError) -> WireError {
    let code = match e {
        CoreError::UnknownCustomer { .. }
        | CoreError::LicenseExpired { .. }
        | CoreError::LicenseInvalid { .. } => ErrorCode::Unauthorized,
        _ => ErrorCode::App,
    };
    WireError::Remote {
        code,
        message: e.to_string(),
    }
}

/// What the vendor serves: the applet server plus the designs it is
/// willing to lint and seal.
#[derive(Debug)]
struct DeliveryState {
    server: AppletServer,
    designs: HashMap<
        String,
        (
            ipd_hdl::Circuit,
            ipd_lint::LintConfig,
            Option<ipd_lint::TimingConstraints>,
        ),
    >,
}

/// An [`AppletServer`] adapted to the wire: one shared vendor state,
/// served to many concurrent customer sessions.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ipd_core::{AppletServer, CapabilitySet, DeliveryClient, DeliveryService};
/// use ipd_wire::WireConfig;
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let mut server = AppletServer::new("byu", b"vendor-key".to_vec());
/// server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
/// let service = Arc::new(DeliveryService::new(server, b"vendor-key".to_vec()));
/// let running = service.serve(WireConfig::default())?;
///
/// let mut client = DeliveryClient::connect(running.addr(), "acme")?;
/// let manifest = client.manifest(30)?;
/// assert!(!manifest.entries().is_empty());
/// client.close();
/// running.shutdown()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeliveryService {
    state: Mutex<DeliveryState>,
    vendor_key: Vec<u8>,
}

impl DeliveryService {
    /// Wraps an applet server for wire delivery. `vendor_key` is the
    /// sealing master key passed to
    /// [`AppletServer::serve_sealed`]/[`AppletServer::serve_design_sealed`].
    #[must_use]
    pub fn new(server: AppletServer, vendor_key: Vec<u8>) -> Self {
        DeliveryService {
            state: Mutex::new(DeliveryState {
                server,
                designs: HashMap::new(),
            }),
            vendor_key,
        }
    }

    /// Registers a design customers may request via
    /// [`endpoints::SEALED_DESIGN`] and [`endpoints::LINT_REPORT`].
    pub fn register_design(
        &self,
        name: impl Into<String>,
        circuit: ipd_hdl::Circuit,
        lint_config: ipd_lint::LintConfig,
    ) {
        self.lock()
            .designs
            .insert(name.into(), (circuit, lint_config, None));
    }

    /// Registers a design together with timing constraints: the
    /// sealed-design endpoint then refuses unwaived setup violations,
    /// and [`endpoints::STA_REPORT`] serves the slack summary.
    pub fn register_design_timed(
        &self,
        name: impl Into<String>,
        circuit: ipd_hdl::Circuit,
        lint_config: ipd_lint::LintConfig,
        constraints: ipd_lint::TimingConstraints,
    ) {
        self.lock()
            .designs
            .insert(name.into(), (circuit, lint_config, Some(constraints)));
    }

    /// Names of registered designs, sorted.
    #[must_use]
    pub fn design_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock().designs.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// A snapshot of the vendor's audit log (remote and in-process
    /// accesses interleaved in arrival order).
    #[must_use]
    pub fn audit_log(&self) -> Vec<AuditRecord> {
        self.lock().server.audit_log().to_vec()
    }

    /// A snapshot of the bundle store's hit/miss/304 counters.
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.lock().server.store().stats()
    }

    /// Recovers the applet server (audit log, store) once no wire
    /// server holds the service any more.
    #[must_use]
    pub fn into_server(self) -> AppletServer {
        self.state.into_inner().expect("delivery state lock").server
    }

    /// Starts the concurrent wire server for this service.
    ///
    /// # Errors
    ///
    /// Fails when the listening socket cannot be bound.
    pub fn serve(self: &Arc<Self>, config: WireConfig) -> Result<RunningDelivery, CoreError> {
        let server = WireServer::bind(config)?;
        let adapter = DeliveryAdapter {
            service: Arc::clone(self),
        };
        Ok(RunningDelivery {
            handle: server.start(Arc::new(adapter)),
            service: Arc::clone(self),
        })
    }

    fn lock(&self) -> MutexGuard<'_, DeliveryState> {
        self.state.lock().expect("delivery state lock")
    }
}

/// Control handle for a started delivery server.
#[derive(Debug)]
pub struct RunningDelivery {
    handle: ServerHandle,
    service: Arc<DeliveryService>,
}

impl RunningDelivery {
    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The per-endpoint traffic counters.
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        self.handle.stats()
    }

    /// Currently connected customer sessions.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.handle.active_sessions()
    }

    /// The shared vendor service (for audit snapshots while serving).
    #[must_use]
    pub fn service(&self) -> &Arc<DeliveryService> {
        &self.service
    }

    /// A formatted per-endpoint traffic report.
    #[must_use]
    pub fn traffic_report(&self) -> String {
        self.handle
            .stats()
            .report(|e| delivery_endpoint_name(e).to_owned())
    }

    /// Stops accepting, interrupts live sessions, joins all threads,
    /// and hands back the service for post-mortem audit.
    ///
    /// # Errors
    ///
    /// Propagates shutdown failures from the wire layer.
    pub fn shutdown(self) -> Result<Arc<DeliveryService>, CoreError> {
        self.handle.shutdown()?;
        Ok(self.service)
    }
}

/// Wire-service adapter: authenticates tokens and opens sessions.
struct DeliveryAdapter {
    service: Arc<DeliveryService>,
}

impl WireService for DeliveryAdapter {
    fn open_session(
        &self,
        _peer: SocketAddr,
        token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        let customer = token.ok_or(WireError::Remote {
            code: ErrorCode::Unauthorized,
            message: "delivery requires a customer-id token".to_owned(),
        })?;
        if !self.service.lock().server.knows_customer(customer) {
            return Err(WireError::Remote {
                code: ErrorCode::Unauthorized,
                message: format!("no profile for customer {customer}"),
            });
        }
        Ok(Box::new(DeliverySession {
            service: Arc::clone(&self.service),
            customer: customer.to_owned(),
        }))
    }

    fn endpoint_name(&self, endpoint: u16) -> String {
        delivery_endpoint_name(endpoint).to_owned()
    }
}

/// One authenticated customer's delivery session.
struct DeliverySession {
    service: Arc<DeliveryService>,
    customer: String,
}

impl WireSession for DeliverySession {
    fn handle(&mut self, endpoint: u16, body: &[u8]) -> Result<Reply, WireError> {
        let response = match endpoint {
            endpoints::MANIFEST => self.manifest(body)?,
            endpoints::FETCH => self.fetch(body)?,
            // The one endpoint whose payload is a shared segment: the
            // store's `Arc` rides the reply uncopied.
            endpoints::FETCH_SEGMENT => return self.fetch_segment(body).map(Reply::shared),
            endpoints::SEALED_BUNDLES => self.sealed_bundles(body)?,
            endpoints::SEALED_DESIGN => self.sealed_design(body)?,
            endpoints::LINT_REPORT => self.lint_report(body)?,
            endpoints::STA_REPORT => self.sta_report(body)?,
            other => {
                return Err(WireError::Remote {
                    code: ErrorCode::UnknownEndpoint,
                    message: format!("no delivery endpoint {other:#06x}"),
                })
            }
        };
        Ok(Reply::body(response))
    }
}

impl DeliverySession {
    fn manifest(&self, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut r = Reader::new(body);
        let today = r.u32()?;
        r.finish()?;
        let manifest = self
            .service
            .lock()
            .server
            .manifest(&self.customer, today)
            .map_err(|e| core_to_wire(&e))?;
        Ok(encode_manifest(&manifest))
    }

    fn fetch(&self, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut r = Reader::new(body);
        let today = r.u32()?;
        let count = r.u16()? as usize;
        let count = r.cap_count(count, 32)?;
        let mut have = Vec::with_capacity(count);
        for _ in 0..count {
            have.push(read_digest(&mut r)?);
        }
        r.finish()?;
        let response = self
            .service
            .lock()
            .server
            .fetch(&self.customer, today, &have)
            .map_err(|e| core_to_wire(&e))?;
        Ok(encode_delivery(&response))
    }

    fn fetch_segment(&self, body: &[u8]) -> Result<Arc<[u8]>, WireError> {
        let mut r = Reader::new(body);
        let today = r.u32()?;
        let digest = read_digest(&mut r)?;
        r.finish()?;
        self.service
            .lock()
            .server
            .fetch_segment(&self.customer, today, &digest)
            .map_err(|e| core_to_wire(&e))
    }

    fn sealed_bundles(&self, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut r = Reader::new(body);
        let today = r.u32()?;
        r.finish()?;
        let sealed = {
            let mut state = self.service.lock();
            state
                .server
                .serve_sealed(&self.customer, today, &self.service.vendor_key)
                .map_err(|e| core_to_wire(&e))?
        };
        let mut out = Vec::new();
        codec::put_u16(&mut out, sealed.len() as u16);
        for (name, bytes) in &sealed {
            codec::put_str(&mut out, name);
            codec::put_bytes(&mut out, bytes);
        }
        Ok(out)
    }

    fn sealed_design(&self, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let (today, design) = decode_design_request(body)?;
        let mut state = self.service.lock();
        let (circuit, lint_config, constraints) = state
            .designs
            .get(&design)
            .cloned()
            .ok_or_else(|| WireError::app(format!("no registered design named {design}")))?;
        let sealed = state
            .server
            .serve_design_sealed_timed(
                &self.customer,
                today,
                &self.service.vendor_key,
                &circuit,
                &lint_config,
                constraints.as_ref(),
            )
            .map_err(|e| core_to_wire(&e))?;
        let mut out = Vec::new();
        codec::put_bytes(&mut out, sealed.bytes());
        codec::put_str(&mut out, &sealed.report().summary());
        codec::put_bytes(&mut out, sealed.report().to_json().as_bytes());
        Ok(out)
    }

    fn lint_report(&self, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let (today, design) = decode_design_request(body)?;
        let mut state = self.service.lock();
        let (circuit, lint_config, _) = state
            .designs
            .get(&design)
            .cloned()
            .ok_or_else(|| WireError::app(format!("no registered design named {design}")))?;
        let report = state
            .server
            .serve_lint_report(&self.customer, today, &circuit, &lint_config)
            .map_err(|e| core_to_wire(&e))?;
        let mut out = Vec::new();
        codec::put_str(&mut out, &report.summary());
        codec::put_u32(&mut out, report.error_count() as u32);
        codec::put_bytes(&mut out, report.to_json().as_bytes());
        Ok(out)
    }

    fn sta_report(&self, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let (today, design) = decode_design_request(body)?;
        let mut state = self.service.lock();
        let (circuit, _, constraints) = state
            .designs
            .get(&design)
            .cloned()
            .ok_or_else(|| WireError::app(format!("no registered design named {design}")))?;
        let constraints = constraints.ok_or_else(|| {
            WireError::app(format!(
                "design {design} has no timing constraints registered"
            ))
        })?;
        let summary = state
            .server
            .serve_slack_summary(&self.customer, today, &circuit, &constraints)
            .map_err(|e| core_to_wire(&e))?;
        Ok(encode_slack_summary(&summary))
    }
}

fn decode_design_request(body: &[u8]) -> Result<(u32, String), WireError> {
    let mut r = Reader::new(body);
    let today = r.u32()?;
    let design = r.str()?;
    r.finish()?;
    Ok((today, design))
}

fn read_digest(r: &mut Reader<'_>) -> Result<Digest, WireError> {
    let raw = r.take(32)?;
    let mut digest = [0u8; 32];
    digest.copy_from_slice(raw);
    Ok(digest)
}

fn encode_manifest(manifest: &DeliveryManifest) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_str(&mut out, manifest.product());
    codec::put_u16(&mut out, manifest.entries().len() as u16);
    for entry in manifest.entries() {
        codec::put_str(&mut out, &entry.name);
        out.extend_from_slice(&entry.digest);
        codec::put_u64(&mut out, entry.packed_size as u64);
    }
    out
}

fn decode_manifest(body: &[u8]) -> Result<DeliveryManifest, WireError> {
    let mut r = Reader::new(body);
    let product = r.str()?;
    let count = r.u16()? as usize;
    // Each entry is at least a 2-byte name prefix + 32-byte digest +
    // 8-byte size.
    let count = r.cap_count(count, 2 + 32 + 8)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str()?;
        let digest = read_digest(&mut r)?;
        let packed_size = r.u64()? as usize;
        entries.push(ManifestEntry {
            name,
            digest,
            packed_size,
        });
    }
    r.finish()?;
    Ok(DeliveryManifest::new(product, entries))
}

fn encode_delivery(response: &DeliveryResponse) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_str(&mut out, response.product());
    codec::put_u16(&mut out, response.items().len() as u16);
    for item in response.items() {
        match item {
            BundleDelivery::NotModified { name, digest } => {
                codec::put_u8(&mut out, 0);
                codec::put_str(&mut out, name);
                out.extend_from_slice(digest);
            }
            BundleDelivery::Payload {
                name,
                digest,
                bytes,
            } => {
                codec::put_u8(&mut out, 1);
                codec::put_str(&mut out, name);
                out.extend_from_slice(digest);
                codec::put_bytes(&mut out, bytes);
            }
        }
    }
    out
}

fn decode_delivery(body: &[u8]) -> Result<DeliveryResponse, WireError> {
    let mut r = Reader::new(body);
    let product = r.str()?;
    let count = r.u16()? as usize;
    // Each item is at least a kind byte + 2-byte name prefix +
    // 32-byte digest.
    let count = r.cap_count(count, 1 + 2 + 32)?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = r.u8()?;
        let name = r.str()?;
        let digest = read_digest(&mut r)?;
        items.push(match kind {
            0 => BundleDelivery::NotModified { name, digest },
            1 => BundleDelivery::Payload {
                name,
                digest,
                bytes: r.bytes()?.into(),
            },
            other => {
                return Err(WireError::protocol(format!(
                    "unknown bundle-delivery kind {other}"
                )))
            }
        });
    }
    r.finish()?;
    Ok(DeliveryResponse::new(product, items))
}

/// f64 over the wire: IEEE-754 bits in the codec's u64 encoding, so
/// the value survives exactly (including infinities used for "no
/// endpoint captured").
fn put_f64(out: &mut Vec<u8>, value: f64) {
    codec::put_u64(out, value.to_bits());
}

fn read_f64(r: &mut Reader<'_>) -> Result<f64, WireError> {
    Ok(f64::from_bits(r.u64()?))
}

fn encode_slack_summary(summary: &ipd_estimate::SlackSummary) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_str(&mut out, &summary.design);
    codec::put_u32(&mut out, summary.unconstrained as u32);
    codec::put_u16(&mut out, summary.clocks.len() as u16);
    for c in &summary.clocks {
        codec::put_str(&mut out, &c.clock);
        put_f64(&mut out, c.period_ns);
        codec::put_u32(&mut out, c.endpoints as u32);
        codec::put_u32(&mut out, c.violations as u32);
        put_f64(&mut out, c.worst_slack_ns);
    }
    codec::put_u16(&mut out, summary.histograms.len() as u16);
    for h in &summary.histograms {
        codec::put_str(&mut out, &h.clock);
        codec::put_u16(&mut out, h.edges.len() as u16);
        for &e in &h.edges {
            put_f64(&mut out, e);
        }
        codec::put_u16(&mut out, h.counts.len() as u16);
        for &n in &h.counts {
            codec::put_u64(&mut out, n as u64);
        }
    }
    out
}

fn decode_slack_summary(body: &[u8]) -> Result<ipd_estimate::SlackSummary, WireError> {
    let mut r = Reader::new(body);
    let design = r.str()?;
    let unconstrained = r.u32()? as usize;
    let clock_count = r.u16()? as usize;
    // Each clock rollup is at least a 2-byte name prefix plus two f64s
    // and two u32 counts.
    let clock_count = r.cap_count(clock_count, 2 + 8 + 4 + 4 + 8)?;
    let mut clocks = Vec::with_capacity(clock_count);
    for _ in 0..clock_count {
        clocks.push(ipd_estimate::ClockSlack {
            clock: r.str()?,
            period_ns: read_f64(&mut r)?,
            endpoints: r.u32()? as usize,
            violations: r.u32()? as usize,
            worst_slack_ns: read_f64(&mut r)?,
        });
    }
    let hist_count = r.u16()? as usize;
    let hist_count = r.cap_count(hist_count, 2 + 2 + 2)?;
    let mut histograms = Vec::with_capacity(hist_count);
    for _ in 0..hist_count {
        let clock = r.str()?;
        let edge_count = r.u16()? as usize;
        let edge_count = r.cap_count(edge_count, 8)?;
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            edges.push(read_f64(&mut r)?);
        }
        let count_count = r.u16()? as usize;
        let count_count = r.cap_count(count_count, 8)?;
        let mut counts = Vec::with_capacity(count_count);
        for _ in 0..count_count {
            counts.push(r.u64()? as usize);
        }
        histograms.push(ipd_estimate::SlackHistogram {
            clock,
            edges,
            counts,
        });
    }
    r.finish()?;
    Ok(ipd_estimate::SlackSummary {
        design,
        clocks,
        unconstrained,
        histograms,
    })
}

/// A lint-gated, license-sealed design fetched over the wire.
#[derive(Debug, Clone)]
pub struct RemoteSealedDesign {
    /// The sealed netlist (opened with [`crate::unseal`] and the
    /// customer's [`crate::bundle_key`]).
    pub bytes: Vec<u8>,
    /// One-line lint summary the design shipped with.
    pub summary: String,
    /// The full lint report, JSON-serialized.
    pub report_json: String,
}

/// A static-analysis report fetched over the wire.
#[derive(Debug, Clone)]
pub struct RemoteLintReport {
    /// One-line summary (errors, warnings, waived counts).
    pub summary: String,
    /// Unwaived error-severity finding count.
    pub errors: usize,
    /// The full report, JSON-serialized.
    pub report_json: String,
}

/// The browser side of wire delivery: one authenticated customer
/// connection driving manifest, conditional fetch, and sealed-design
/// requests.
#[derive(Debug)]
pub struct DeliveryClient {
    wire: WireClient,
}

impl DeliveryClient {
    /// Connects and authenticates as `customer` (sent as the hello
    /// token; unknown customers are refused at the handshake).
    ///
    /// # Errors
    ///
    /// Fails on connection or handshake errors, or an
    /// [`ErrorCode::Unauthorized`] refusal for unknown customers.
    pub fn connect(addr: SocketAddr, customer: &str) -> Result<Self, CoreError> {
        Self::connect_with(addr, &ClientConfig::with_token(customer))
    }

    /// Connects with explicit client settings (the token must carry
    /// the customer id).
    ///
    /// # Errors
    ///
    /// As [`DeliveryClient::connect`].
    pub fn connect_with(addr: SocketAddr, config: &ClientConfig) -> Result<Self, CoreError> {
        Ok(DeliveryClient {
            wire: WireClient::connect(addr, config)?,
        })
    }

    /// The server-assigned session id.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.wire.session_id()
    }

    /// Client-side traffic counters (mirror the server's view of this
    /// session).
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        self.wire.stats()
    }

    /// Fetches the customer's bundle manifest.
    ///
    /// # Errors
    ///
    /// License refusals surface as [`CoreError::Remote`] /
    /// [`CoreError::Wire`]; transport failures as [`CoreError::Wire`].
    pub fn manifest(&mut self, today: u32) -> Result<DeliveryManifest, CoreError> {
        let mut body = Vec::new();
        codec::put_u32(&mut body, today);
        let response = self.wire.call(endpoints::MANIFEST, &body)?;
        Ok(decode_manifest(&response)?)
    }

    /// Conditionally fetches the customer's bundles: bundles whose
    /// digest appears in `have` come back as not-modified markers.
    ///
    /// # Errors
    ///
    /// As [`DeliveryClient::manifest`].
    pub fn fetch(&mut self, today: u32, have: &[Digest]) -> Result<DeliveryResponse, CoreError> {
        let mut body = Vec::new();
        codec::put_u32(&mut body, today);
        codec::put_u16(&mut body, have.len() as u16);
        for digest in have {
            body.extend_from_slice(digest);
        }
        let response = self.wire.call(endpoints::FETCH, &body)?;
        Ok(decode_delivery(&response)?)
    }

    /// Fetches one packed bundle segment by content digest. The
    /// returned bytes are exactly the packed wire bytes a
    /// [`DeliveryClient::fetch`] payload carries — but the server
    /// serves them zero-copy from its content-addressed store, so this
    /// is the cheap path when the manifest already told the client
    /// which digest it is missing.
    ///
    /// # Errors
    ///
    /// A typed remote error for digests outside the customer's bundle
    /// set; license and transport failures as
    /// [`DeliveryClient::manifest`].
    pub fn fetch_segment(&mut self, today: u32, digest: &Digest) -> Result<Vec<u8>, CoreError> {
        let mut body = Vec::new();
        codec::put_u32(&mut body, today);
        body.extend_from_slice(digest);
        Ok(self.wire.call(endpoints::FETCH_SEGMENT, &body)?)
    }

    /// Fetches every bundle sealed to the customer's license key
    /// (opened with [`crate::unseal`] and [`crate::bundle_key`]).
    ///
    /// # Errors
    ///
    /// As [`DeliveryClient::manifest`].
    pub fn sealed_bundles(&mut self, today: u32) -> Result<Vec<(String, Vec<u8>)>, CoreError> {
        let mut body = Vec::new();
        codec::put_u32(&mut body, today);
        let response = self.wire.call(endpoints::SEALED_BUNDLES, &body)?;
        let mut r = Reader::new(&response);
        let count = r.u16()? as usize;
        // Each sealed bundle is at least a 2-byte name prefix plus a
        // 4-byte payload prefix.
        let count = r.cap_count(count, 2 + 4)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.str()?;
            let bytes = r.bytes()?;
            out.push((name, bytes));
        }
        r.finish()?;
        Ok(out)
    }

    /// Fetches a registered design, lint-gated and sealed to the
    /// customer's license key.
    ///
    /// # Errors
    ///
    /// A dirty lint report refuses delivery server-side
    /// ([`CoreError::Remote`] carrying the
    /// [`CoreError::LintRejected`] message); license and transport
    /// failures as [`DeliveryClient::manifest`].
    pub fn sealed_design(
        &mut self,
        today: u32,
        design: &str,
    ) -> Result<RemoteSealedDesign, CoreError> {
        let response = self.wire.call(
            endpoints::SEALED_DESIGN,
            &encode_design_request(today, design),
        )?;
        let mut r = Reader::new(&response);
        let bytes = r.bytes()?;
        let summary = r.str()?;
        let report_json = String::from_utf8(r.bytes()?)
            .map_err(|_| WireError::protocol("lint report is not utf-8"))?;
        r.finish()?;
        Ok(RemoteSealedDesign {
            bytes,
            summary,
            report_json,
        })
    }

    /// Fetches the static-analysis report for a registered design —
    /// the audit view a customer consults before requesting the
    /// sealed netlist.
    ///
    /// # Errors
    ///
    /// As [`DeliveryClient::manifest`].
    pub fn lint_report(&mut self, today: u32, design: &str) -> Result<RemoteLintReport, CoreError> {
        let response = self.wire.call(
            endpoints::LINT_REPORT,
            &encode_design_request(today, design),
        )?;
        let mut r = Reader::new(&response);
        let summary = r.str()?;
        let errors = r.u32()? as usize;
        let report_json = String::from_utf8(r.bytes()?)
            .map_err(|_| WireError::protocol("lint report is not utf-8"))?;
        r.finish()?;
        Ok(RemoteLintReport {
            summary,
            errors,
            report_json,
        })
    }

    /// Fetches the constraint-evaluated STA slack summary for a
    /// registered design — per-clock worst slack, violation counts and
    /// histograms, no endpoint or path names. The design must have
    /// been registered with
    /// [`DeliveryService::register_design_timed`].
    ///
    /// # Errors
    ///
    /// An application error when the design is unknown or has no
    /// constraints registered; license and transport failures as
    /// [`DeliveryClient::manifest`].
    pub fn sta_summary(
        &mut self,
        today: u32,
        design: &str,
    ) -> Result<ipd_estimate::SlackSummary, CoreError> {
        let response = self
            .wire
            .call(endpoints::STA_REPORT, &encode_design_request(today, design))?;
        Ok(decode_slack_summary(&response)?)
    }

    /// Sends a polite goodbye and closes (also happens on drop).
    pub fn close(&mut self) {
        self.wire.close();
    }
}

fn encode_design_request(today: u32, design: &str) -> Vec<u8> {
    let mut body = Vec::new();
    codec::put_u32(&mut body, today);
    codec::put_str(&mut body, design);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use ipd_hdl::{Circuit, PortSpec};
    use ipd_techlib::LogicCtx;

    fn vendor() -> AppletServer {
        let mut server = AppletServer::new("byu", b"vendor-key".to_vec());
        server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
        server.enroll("expired", "kcm", CapabilitySet::evaluation(), 0, 10);
        server
    }

    fn clean_design() -> Circuit {
        let mut c = Circuit::new("buf");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.buffer(a, y).unwrap();
        c
    }

    fn start() -> (RunningDelivery, Arc<DeliveryService>) {
        let service = Arc::new(DeliveryService::new(vendor(), b"vendor-key".to_vec()));
        service.register_design("buf", clean_design(), ipd_lint::LintConfig::default());
        let running = service.serve(WireConfig::default()).expect("serve");
        (running, service)
    }

    #[test]
    fn manifest_and_fetch_match_the_in_process_path() {
        let (running, _service) = start();
        let mut client = DeliveryClient::connect(running.addr(), "acme").expect("connect");
        let remote = client.manifest(30).expect("manifest");

        let mut local = vendor();
        let expected = local.manifest("acme", 30).expect("local manifest");
        assert_eq!(remote, expected, "wire manifest must be bit-identical");

        // Cold fetch delivers everything; presenting the digests turns
        // every item into a 304.
        let cold = client.fetch(30, &[]).expect("cold fetch");
        assert_eq!(cold.delivered(), remote.entries().len());
        let have: Vec<Digest> = remote.entries().iter().map(|e| e.digest).collect();
        let warm = client.fetch(31, &have).expect("warm fetch");
        assert_eq!(warm.delivered(), 0);
        assert_eq!(warm.not_modified(), remote.entries().len());

        let local_cold = local.fetch("acme", 30, &[]).expect("local fetch");
        for (r, l) in cold.items().iter().zip(local_cold.items()) {
            match (r, l) {
                (
                    BundleDelivery::Payload { bytes: rb, .. },
                    BundleDelivery::Payload { bytes: lb, .. },
                ) => assert_eq!(rb.as_ref(), lb.as_ref(), "payload bytes must match"),
                _ => panic!("cold fetches must both deliver payloads"),
            }
        }
        client.close();
        running.shutdown().expect("shutdown");
    }

    #[test]
    fn fetch_segment_serves_the_packed_bytes_zero_copy() {
        let (running, service) = start();
        let mut client = DeliveryClient::connect(running.addr(), "acme").expect("connect");
        let manifest = client.manifest(30).expect("manifest");
        let cold = client.fetch(30, &[]).expect("cold fetch");
        for entry in manifest.entries() {
            let segment = client.fetch_segment(30, &entry.digest).expect("segment");
            let full = cold
                .items()
                .iter()
                .find_map(|item| match item {
                    BundleDelivery::Payload { digest, bytes, .. } if *digest == entry.digest => {
                        Some(bytes.clone())
                    }
                    _ => None,
                })
                .expect("cold fetch delivered this digest");
            assert_eq!(
                segment,
                full.as_ref(),
                "segment bytes must be bit-identical to the fetch payload"
            );
        }
        // A digest outside the customer's set is refused and audited.
        assert!(matches!(
            client.fetch_segment(30, &[0u8; 32]),
            Err(CoreError::Remote { .. })
        ));
        client.close();
        running.shutdown().expect("shutdown");
        assert!(service
            .audit_log()
            .iter()
            .any(|r| r.outcome.contains("served segment")));
    }

    #[test]
    fn sealed_design_and_lint_report_round_trip() {
        let (running, _service) = start();
        let mut client = DeliveryClient::connect(running.addr(), "acme").expect("connect");
        let report = client.lint_report(30, "buf").expect("lint report");
        assert_eq!(report.errors, 0);
        assert!(report.report_json.contains("\"errors\": 0"));

        let sealed = client.sealed_design(30, "buf").expect("sealed design");
        assert_eq!(sealed.summary, report.summary);
        // The customer's license key opens the seal to an EDIF netlist.
        let license = vendor().enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
        let key = crate::seal::bundle_key(b"vendor-key", &license);
        let plain = crate::seal::unseal(&sealed.bytes, &key).expect("unseal");
        assert!(String::from_utf8(plain).unwrap().contains("(edif"));

        assert!(matches!(
            client.sealed_design(30, "nope"),
            Err(CoreError::Remote { .. })
        ));
        client.close();
        let service = running.shutdown().expect("shutdown");
        let log = service.audit_log();
        assert!(log.iter().any(|r| r.outcome.contains("lint report")));
    }

    /// FF -> `depth` inverters -> FF, one clock.
    fn chained_design(depth: usize) -> Circuit {
        let mut c = Circuit::new("chain");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur: ipd_hdl::Signal = ctx.wire("s0", 1).into();
        ctx.fd(clk, d, cur.clone()).unwrap();
        for i in 0..depth {
            let nxt = ctx.wire(&format!("s{}", i + 1), 1);
            ctx.inv(cur, nxt).unwrap();
            cur = nxt.into();
        }
        ctx.fd(clk, cur, q).unwrap();
        c
    }

    #[test]
    fn sta_summary_round_trips_and_timing_gates_sealed_designs() {
        let (running, service) = start();
        let mut constraints = ipd_lint::TimingConstraints::new();
        constraints.clock("clk", 3.0, "clk");
        service.register_design_timed(
            "chain",
            chained_design(16),
            ipd_lint::LintConfig::default(),
            constraints,
        );
        let mut client = DeliveryClient::connect(running.addr(), "acme").expect("connect");

        // The wire summary is bit-identical to the local analysis.
        let remote = client.sta_summary(30, "chain").expect("sta summary");
        let local = ipd_estimate::analyze_timing(&chained_design(16), &{
            let mut t = ipd_estimate::TimingConstraints::new();
            t.clock("clk", 3.0, "clk");
            t
        })
        .expect("local sta")
        .slack_summary();
        assert_eq!(remote, local);
        assert!(remote.violations() > 0, "{remote}");
        assert!(remote.worst_slack().unwrap() < 0.0);

        // The same registration refuses sealed delivery on slack.
        let err = client.sealed_design(30, "chain").unwrap_err();
        assert!(
            err.to_string().contains("lint"),
            "timing refusal rides the lint gate: {err}"
        );

        // Designs registered without constraints refuse the endpoint.
        assert!(matches!(
            client.sta_summary(30, "buf"),
            Err(CoreError::Remote { .. } | CoreError::Wire(_))
        ));
        client.close();
        let service = running.shutdown().expect("shutdown");
        assert!(service
            .audit_log()
            .iter()
            .any(|r| r.outcome.contains("slack summary")));
    }

    #[test]
    fn authentication_is_checked_at_the_handshake() {
        let (running, _service) = start();
        // No token at all.
        assert!(matches!(
            DeliveryClient::connect_with(running.addr(), &ClientConfig::default()),
            Err(CoreError::Wire(WireError::Remote {
                code: ErrorCode::Unauthorized,
                ..
            }))
        ));
        // Unknown customer.
        assert!(matches!(
            DeliveryClient::connect(running.addr(), "mallory"),
            Err(CoreError::Wire(WireError::Remote {
                code: ErrorCode::Unauthorized,
                ..
            }))
        ));
        // Enrolled but expired: the handshake admits them (the profile
        // exists), the per-request license check refuses with a typed
        // unauthorized frame and audits.
        let mut expired = DeliveryClient::connect(running.addr(), "expired").expect("connect");
        assert!(matches!(
            expired.manifest(100),
            Err(CoreError::Wire(WireError::Remote {
                code: ErrorCode::Unauthorized,
                ..
            }))
        ));
        expired.close();
        running.shutdown().expect("shutdown");
    }

    #[test]
    fn sealed_bundles_unseal_with_the_license_key() {
        let (running, _service) = start();
        let mut client = DeliveryClient::connect(running.addr(), "acme").expect("connect");
        let sealed = client.sealed_bundles(30).expect("sealed bundles");
        assert!(!sealed.is_empty());
        let license = vendor().enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
        let key = crate::seal::bundle_key(b"vendor-key", &license);
        for (name, bytes) in &sealed {
            let plain = crate::seal::unseal(bytes, &key)
                .unwrap_or_else(|e| panic!("bundle {name} must unseal: {e}"));
            assert!(!plain.is_empty());
        }
        client.close();
        running.shutdown().expect("shutdown");
    }
}
