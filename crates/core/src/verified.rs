//! Equivalence-gated delivery — the strongest of the delivery gates.
//!
//! The lint gate ([`crate::seal_design`]) proves a design is not
//! structurally broken; the timing gate ([`crate::seal_design_timed`])
//! proves it meets its clock. This module adds the functional gate: a
//! design is sealed only after the `ipd-verify` engine *proves* it
//! computes the same function as a golden reference netlist, and the
//! shipped artifact carries an [`EquivCertificate`] — a digest-bound
//! statement "proved equivalent to golden netlist digest X" that the
//! customer can re-check against the payload they actually received.
//!
//! A refuted check ships the distinguishing input/state vector
//! ([`CoreError::EquivRejected`]), already cross-checked against both
//! simulation engines, so the vendor can reproduce the divergence in
//! one simulator run. There is deliberately no waiver escape hatch
//! here: a certificate asserting equivalence over a known
//! counterexample would be a lie, not a delivery.

use ipd_hdl::{Circuit, FlatNetlist};
use ipd_lint::LintConfig;
use ipd_verify::{check_equiv, Counterexample, EquivConfig, EquivVerdict};

use crate::error::CoreError;
use crate::seal::{seal_design, SealedDesign};
use crate::sha::{sha256_parts, to_hex};

/// Domain separator binding certificate digests; versioned so a future
/// layout change cannot collide with v1 certificates.
const CERT_DOMAIN: &[u8] = b"ipd-equiv-cert-v1";

/// A digest-bound record that a sealed design was proved functionally
/// equivalent to a golden reference netlist.
///
/// The certificate commits to the EDIF bytes of both designs (SHA-256)
/// and to the scope of the proof (how many output and next-state
/// functions were discharged), all bound together under a
/// domain-separated [`sha256_parts`] digest. [`EquivCertificate::verify`]
/// re-derives the binding from netlist bytes in hand, so a customer who
/// unseals a payload can check it is byte-for-byte the netlist the
/// proof was about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivCertificate {
    design: String,
    golden: String,
    golden_digest: [u8; 32],
    revised_digest: [u8; 32],
    functions_checked: u64,
    binding: [u8; 32],
}

impl EquivCertificate {
    /// Binds a certificate over the two netlists' EDIF bytes.
    fn bind(
        design: &str,
        golden: &str,
        golden_edif: &[u8],
        revised_edif: &[u8],
        functions_checked: u64,
    ) -> Self {
        // Netlist digests identify bytes, not roles: the same netlist
        // hashes the same whether it appears as golden or revised (so
        // a self-check yields equal digests); the binding below fixes
        // which side is which.
        let golden_digest = sha256_parts(&[CERT_DOMAIN, golden_edif]);
        let revised_digest = sha256_parts(&[CERT_DOMAIN, revised_edif]);
        let binding = sha256_parts(&[
            CERT_DOMAIN,
            design.as_bytes(),
            golden.as_bytes(),
            &golden_digest,
            &revised_digest,
            &functions_checked.to_le_bytes(),
        ]);
        EquivCertificate {
            design: design.to_owned(),
            golden: golden.to_owned(),
            golden_digest,
            revised_digest,
            functions_checked,
            binding,
        }
    }

    /// The certified (revised) design's name.
    #[must_use]
    pub fn design(&self) -> &str {
        &self.design
    }

    /// The golden reference design's name.
    #[must_use]
    pub fn golden(&self) -> &str {
        &self.golden
    }

    /// SHA-256 digest of the golden reference's EDIF netlist
    /// (domain-separated).
    #[must_use]
    pub fn golden_digest(&self) -> &[u8; 32] {
        &self.golden_digest
    }

    /// SHA-256 digest of the sealed (revised) EDIF netlist
    /// (domain-separated) — the bytes the customer unseals.
    #[must_use]
    pub fn revised_digest(&self) -> &[u8; 32] {
        &self.revised_digest
    }

    /// How many output and next-state functions the proof discharged.
    #[must_use]
    pub fn functions_checked(&self) -> u64 {
        self.functions_checked
    }

    /// The binding digest over the whole certificate.
    #[must_use]
    pub fn binding(&self) -> &[u8; 32] {
        &self.binding
    }

    /// The human-readable certificate statement.
    #[must_use]
    pub fn statement(&self) -> String {
        format!(
            "design '{}' proved equivalent to golden netlist digest {} \
             ({} functions checked; certificate {})",
            self.design,
            to_hex(&self.golden_digest),
            self.functions_checked,
            to_hex(&self.binding),
        )
    }

    /// Re-derives the certificate from netlist bytes in hand and checks
    /// it matches — `true` only when both EDIF payloads are
    /// byte-for-byte the ones the proof was about.
    #[must_use]
    pub fn verify(&self, golden_edif: &[u8], revised_edif: &[u8]) -> bool {
        let expected = EquivCertificate::bind(
            &self.design,
            &self.golden,
            golden_edif,
            revised_edif,
            self.functions_checked,
        );
        expected.binding == self.binding
    }
}

/// A sealed design whose delivery was gated on a formal equivalence
/// proof, carrying both the lint report and the [`EquivCertificate`].
#[derive(Debug, Clone)]
pub struct VerifiedDesign {
    sealed: SealedDesign,
    certificate: EquivCertificate,
}

impl VerifiedDesign {
    /// The sealed design (payload + lint report).
    #[must_use]
    pub fn sealed(&self) -> &SealedDesign {
        &self.sealed
    }

    /// The equivalence certificate bound to the sealed payload.
    #[must_use]
    pub fn certificate(&self) -> &EquivCertificate {
        &self.certificate
    }
}

/// Renders a counterexample's assignment for the refusal error.
fn render_vector(cex: &Counterexample) -> String {
    let inputs: Vec<String> = cex.inputs.iter().map(|(p, v)| format!("{p}={v}")).collect();
    let mut vector = format!(
        "(golden={}, revised={}) under inputs [{}]",
        u8::from(cex.golden_value),
        u8::from(cex.revised_value),
        inputs.join(", "),
    );
    if !cex.state.is_empty() {
        let state: Vec<String> = cex
            .state
            .iter()
            .map(|s| format!("{}={}", s.golden_path, s.value))
            .collect();
        vector.push_str(&format!(" state [{}]", state.join(", ")));
    }
    vector
}

/// Seals a design for delivery only after proving it formally
/// equivalent to `golden` — and, as with [`seal_design`], only after
/// the lint gate clears it. On success the returned [`VerifiedDesign`]
/// pairs the sealed EDIF payload with an [`EquivCertificate`] whose
/// revised-side digest covers exactly the bytes inside the seal.
///
/// # Errors
///
/// [`CoreError::EquivRejected`] when the checker finds a distinguishing
/// vector (shipped in the error, replay-confirmed when
/// `equiv.replay` is set); [`CoreError::Verify`] when the check cannot
/// be carried out (boundary mismatch, combinational loop, black box,
/// SAT budget); [`CoreError::LintRejected`] and flattening/netlisting
/// failures as for [`seal_design`].
pub fn seal_design_verified(
    circuit: &Circuit,
    golden: &Circuit,
    config: &LintConfig,
    equiv: &EquivConfig,
    key: &[u8; 32],
    nonce: u64,
) -> Result<VerifiedDesign, CoreError> {
    let golden_flat = FlatNetlist::build(golden)?;
    let revised_flat = FlatNetlist::build(circuit)?;
    let report = check_equiv(&golden_flat, &revised_flat, equiv)?;
    if let EquivVerdict::NotEquivalent(cex) = &report.verdict {
        return Err(CoreError::EquivRejected {
            function: cex.function.clone(),
            golden: golden_flat.design_name().to_owned(),
            vector: render_vector(cex),
        });
    }
    let sealed = seal_design(circuit, config, key, nonce)?;
    // The certificate commits to the exact EDIF text sealed above —
    // `seal_design` generates the same deterministic netlist.
    let golden_edif = ipd_netlist::NetlistFormat::Edif.generate(golden)?;
    let revised_edif = ipd_netlist::NetlistFormat::Edif.generate(circuit)?;
    let certificate = EquivCertificate::bind(
        revised_flat.design_name(),
        golden_flat.design_name(),
        golden_edif.as_bytes(),
        revised_edif.as_bytes(),
        report.stats.outputs_checked as u64,
    );
    Ok(VerifiedDesign {
        sealed,
        certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use crate::license::LicenseAuthority;
    use crate::seal::{bundle_key, unseal};
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn key() -> [u8; 32] {
        let authority = LicenseAuthority::new(b"vendor".to_vec());
        let license = authority.issue("acme", "kcm", CapabilitySet::passive(), 0, 10);
        bundle_key(b"vendor", &license)
    }

    /// `y = a & b` as a gate, a LUT2 resynthesis, or (faulty) `a | b`.
    fn unit(kind: &str) -> Circuit {
        let mut c = Circuit::new("unit");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        match kind {
            "and" => ctx.and2(a, b, y).unwrap(),
            "lut" => ctx.lut(0b1000, &[a.into(), b.into()], y).unwrap(),
            "or" => ctx.or2(a, b, y).unwrap(),
            other => panic!("unknown kind {other}"),
        };
        c
    }

    #[test]
    fn verified_seal_issues_a_binding_certificate() {
        let key = key();
        let golden = unit("and");
        let revised = unit("lut");
        let verified = seal_design_verified(
            &revised,
            &golden,
            &LintConfig::new(),
            &EquivConfig::default(),
            &key,
            1,
        )
        .expect("equivalent resynthesis seals");

        // The payload unseals to the EDIF the certificate commits to.
        let plain = unseal(verified.sealed().bytes(), &key).expect("unseal");
        let golden_edif = ipd_netlist::NetlistFormat::Edif.generate(&golden).unwrap();
        let cert = verified.certificate();
        assert!(cert.verify(golden_edif.as_bytes(), &plain));
        assert!(!cert.verify(golden_edif.as_bytes(), b"tampered payload"));
        assert!(!cert.verify(b"wrong golden", &plain));

        assert_eq!(cert.design(), "unit");
        assert_eq!(cert.golden(), "unit");
        assert_eq!(cert.functions_checked(), 1);
        let statement = cert.statement();
        assert!(
            statement.contains("proved equivalent to golden netlist digest"),
            "{statement}"
        );
        assert!(
            statement.contains(&to_hex(cert.golden_digest())),
            "{statement}"
        );
    }

    #[test]
    fn divergent_design_is_refused_with_the_vector() {
        let key = key();
        let err = seal_design_verified(
            &unit("or"),
            &unit("and"),
            &LintConfig::new(),
            &EquivConfig::default(),
            &key,
            2,
        )
        .unwrap_err();
        match err {
            CoreError::EquivRejected {
                function,
                golden,
                vector,
            } => {
                assert_eq!(function, "y[0]");
                assert_eq!(golden, "unit");
                assert!(vector.contains("under inputs"), "{vector}");
                assert!(vector.contains("a="), "{vector}");
            }
            other => panic!("expected EquivRejected, got {other}"),
        }
    }

    #[test]
    fn unprovable_design_is_refused_without_certificate() {
        let key = key();
        // Golden has two inputs; revision has one — boundary mismatch.
        let mut c = Circuit::new("unit");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.buffer(a, y).unwrap();
        let err = seal_design_verified(
            &c,
            &unit("and"),
            &LintConfig::new(),
            &EquivConfig::default(),
            &key,
            3,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Verify(_)), "got {err}");
    }

    #[test]
    fn lint_gate_still_applies_after_the_proof() {
        // Equivalence alone is not enough: a proved-equivalent design
        // with an unwaived lint error is still refused.
        let key = key();
        let mut config = LintConfig::new();
        config.set_level("dead-logic", ipd_lint::LintLevel::Error);
        let mut golden = unit("and");
        let mut revised = unit("lut");
        for c in [&mut golden, &mut revised] {
            let mut ctx = c.root_ctx();
            let w = ctx.wire("dead", 1);
            let a = ctx.port("a").unwrap();
            ctx.inv(a, w).unwrap();
        }
        let err =
            seal_design_verified(&revised, &golden, &config, &EquivConfig::default(), &key, 4)
                .unwrap_err();
        assert!(matches!(err, CoreError::LintRejected { .. }), "got {err}");
    }

    #[test]
    fn zoo_generator_certifies_against_itself() {
        let key = key();
        let kcm = ipd_modgen::KcmMultiplier::new(-56, 8, 12).signed(true);
        let circuit = Circuit::from_generator(&kcm).unwrap();
        let verified = seal_design_verified(
            &circuit,
            &circuit,
            &LintConfig::new(),
            &EquivConfig::default(),
            &key,
            5,
        )
        .expect("self-equivalence certifies");
        let cert = verified.certificate();
        assert_eq!(cert.golden_digest(), cert.revised_digest());
        assert!(cert.functions_checked() > 0);
        assert!(verified.sealed().report().is_clean());
    }
}
