//! SHA-256 and HMAC-SHA-256, the signing substrate for licenses and
//! watermarks.
//!
//! The paper defers to "a variety of web-based security measures"; a
//! keyed MAC is the minimal such measure that lets a vendor issue
//! unforgeable capability licenses. Implemented in-repo per the
//! reproduction's no-new-dependencies rule (FIPS 180-4).

/// Computes the SHA-256 digest of a message.
///
/// # Examples
///
/// ```
/// use ipd_core::sha256;
///
/// let digest = sha256(b"abc");
/// assert_eq!(
///     digest[..4],
///     [0xba, 0x78, 0x16, 0xbf], // ba7816bf... the FIPS test vector
/// );
/// ```
#[must_use]
pub fn sha256(message: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09_e667,
        0xbb67_ae85,
        0x3c6e_f372,
        0xa54f_f53a,
        0x510e_527f,
        0x9b05_688c,
        0x1f83_d9ab,
        0x5be0_cd19,
    ];
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (message.len() as u64).wrapping_mul(8);
    let mut data = message.to_vec();
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bit_len.to_be_bytes());

    for block in data.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Computes HMAC-SHA-256 (RFC 2104) of a message under a key.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + message.len());
    let mut outer = Vec::with_capacity(64 + 32);
    for &b in &key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_hash = sha256(&inner);
    for &b in &key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Computes the SHA-256 digest of a sequence of byte parts, each
/// length-prefixed (64-bit little-endian) so part boundaries are
/// unambiguous: `["ab", "c"]` and `["a", "bc"]` hash differently.
///
/// This is the framing the content-addressed bundle store uses to
/// digest a bundle's name and entries without concatenation
/// ambiguity.
#[must_use]
pub fn sha256_parts(parts: &[&[u8]]) -> [u8; 32] {
    let total: usize = parts.iter().map(|p| p.len() + 8).sum();
    let mut buf = Vec::with_capacity(total);
    for part in parts {
        buf.extend_from_slice(&(part.len() as u64).to_le_bytes());
        buf.extend_from_slice(part);
    }
    sha256(&buf)
}

/// Formats a digest as lowercase hex.
#[must_use]
pub fn to_hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

static K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message() {
        let message = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&message)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // RFC 4231 test case 1.
        let key = [0x0b; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: key "Jefe".
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        // RFC 4231 test case 6 (131-byte key).
        let key = [0xaa; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn part_framing_is_unambiguous() {
        assert_eq!(
            sha256_parts(&[b"abc"]),
            sha256_parts(&[b"abc"]),
            "deterministic"
        );
        assert_ne!(sha256_parts(&[b"ab", b"c"]), sha256_parts(&[b"a", b"bc"]));
        assert_ne!(sha256_parts(&[b"abc"]), sha256_parts(&[b"abc", b""]));
    }

    #[test]
    fn keyed_macs_differ_by_key() {
        let a = hmac_sha256(b"key-a", b"license");
        let b = hmac_sha256(b"key-b", b"license");
        assert_ne!(a, b);
    }
}
