//! The applet web page: a self-contained HTML rendering of an
//! evaluation session.
//!
//! "A potential user may evaluate a given FPGA circuit by accessing a
//! web page and interacting with the applet" (paper §1). This renderer
//! produces that page for a built session — title bar, parameter
//! table, and one panel per *granted* capability (estimates, SVG
//! schematic, layout, waveforms). Withheld capabilities simply do not
//! appear, making the Figure 2 visibility dial literally visible.

use std::fmt::Write as _;

use crate::error::CoreError;
use crate::session::AppletSession;

/// Renders the session as a static HTML page.
///
/// Panels are included only for capabilities the executable grants;
/// the function itself never fails on a denied capability — denial
/// just omits the panel, like the vendor's build of the applet would.
///
/// # Errors
///
/// Fails when no circuit has been built yet, or on underlying
/// estimator/viewer errors for *granted* panels.
///
/// # Examples
///
/// ```
/// use ipd_core::{applet_page, AppletHost, AppletSession, CapabilitySet, IpExecutable};
/// use ipd_modgen::KcmMultiplier;
///
/// # fn main() -> Result<(), ipd_core::CoreError> {
/// let exe = IpExecutable::new("virtex-kcm", "byu", CapabilitySet::evaluation());
/// let host = AppletHost::new();
/// let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
/// let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
/// session.build()?;
/// let page = applet_page(&mut session)?;
/// assert!(page.contains("<svg"));           // schematic granted
/// assert!(!page.contains("netlist-panel")); // netlist withheld
/// # Ok(())
/// # }
/// ```
pub fn applet_page(session: &mut AppletSession) -> Result<String, CoreError> {
    if !session.is_built() {
        return Err(CoreError::NotBuilt);
    }
    let exe = session.executable().clone();
    let mut html = String::new();
    let _ = writeln!(html, "<!DOCTYPE html>");
    let _ = writeln!(html, "<html><head><meta charset=\"utf-8\">");
    let _ = writeln!(
        html,
        "<title>{} — IP evaluation ({})</title>",
        escape(exe.product()),
        escape(exe.vendor())
    );
    html.push_str(
        "<style>body{font-family:monospace;margin:2em}pre{background:#f4f4f4;\
         padding:1em;overflow:auto}h2{border-bottom:1px solid #999}</style>\n",
    );
    let _ = writeln!(html, "</head><body>");
    let _ = writeln!(
        html,
        "<h1>{} <small>({})</small></h1>",
        escape(&session.generator_name()),
        escape(exe.vendor())
    );

    // Interface table — always visible.
    html.push_str("<h2>Interface</h2>\n<table border=\"1\" cellpadding=\"4\">\n");
    html.push_str("<tr><th>port</th><th>dir</th><th>width</th></tr>\n");
    for port in session.interface() {
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
            escape(&port.name),
            port.dir,
            port.width
        );
    }
    html.push_str("</table>\n");

    // Capability summary.
    let _ = writeln!(
        html,
        "<p>granted: <b>{}</b></p>",
        escape(&exe.capabilities().to_string())
    );

    // Estimate panel.
    if let Ok(area) = session.estimate_area() {
        html.push_str("<h2 id=\"estimate-panel\">Estimates</h2>\n<pre>");
        let _ = write!(html, "{}", escape(&area.to_string()));
        if let Ok(timing) = session.estimate_timing() {
            let _ = write!(html, "{}", escape(&timing.to_string()));
        }
        if let Ok(fit) = session.device_fit(None) {
            let _ = write!(html, "{}", escape(&fit));
        }
        html.push_str("</pre>\n");
    }

    // Schematic panel (SVG inline).
    if let Ok(svg) = session.schematic_svg() {
        html.push_str("<h2 id=\"schematic-panel\">Schematic</h2>\n");
        html.push_str(&svg);
    }

    // Layout panel.
    if let Ok(layout) = session.layout() {
        html.push_str("<h2 id=\"layout-panel\">Layout</h2>\n<pre>");
        html.push_str(&escape(&layout));
        html.push_str("</pre>\n");
    }

    // Waveform panel (whatever has been recorded so far).
    if let Ok(waves) = session.waveforms() {
        html.push_str("<h2 id=\"waveform-panel\">Waveforms</h2>\n<pre>");
        html.push_str(&escape(&waves));
        html.push_str("</pre>\n");
    }

    // Netlist panel (licensed only): the scrollable text window of
    // Figure 3.
    if let Ok(edif) = session.netlist(ipd_netlist::NetlistFormat::Edif) {
        html.push_str("<h2 id=\"netlist-panel\">Netlist (EDIF)</h2>\n<pre>");
        html.push_str(&escape(&edif));
        html.push_str("</pre>\n");
    }

    let _ = writeln!(html, "</body></html>");
    Ok(html)
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilitySet;
    use crate::deliver::IpExecutable;
    use crate::host::AppletHost;
    use ipd_modgen::KcmMultiplier;

    fn page_for(caps: CapabilitySet) -> String {
        let exe = IpExecutable::new("kcm", "byu", caps);
        let host = AppletHost::new();
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
        let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
        session.build().unwrap();
        if caps.allows(crate::Capability::WaveformView) {
            session.record("product").unwrap();
        }
        applet_page(&mut session).unwrap()
    }

    #[test]
    fn licensed_page_has_every_panel() {
        let page = page_for(CapabilitySet::licensed());
        for panel in [
            "estimate-panel",
            "schematic-panel",
            "layout-panel",
            "waveform-panel",
            "netlist-panel",
        ] {
            assert!(page.contains(panel), "missing {panel}");
        }
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("<svg"));
        assert!(page.contains("(edif"), "netlist text embedded");
    }

    #[test]
    fn passive_page_has_only_estimates() {
        let page = page_for(CapabilitySet::passive());
        assert!(page.contains("estimate-panel"));
        for hidden in [
            "schematic-panel",
            "layout-panel",
            "netlist-panel",
            "waveform-panel",
        ] {
            assert!(!page.contains(hidden), "leaked {hidden}");
        }
        assert!(page.contains("Interface"), "interface always shown");
    }

    #[test]
    fn unbuilt_session_is_an_error() {
        let exe = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
        let host = AppletHost::new();
        let kcm = KcmMultiplier::new(5, 4, 7);
        let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
        assert!(matches!(
            applet_page(&mut session),
            Err(CoreError::NotBuilt)
        ));
    }
}
