//! The layout viewer: CLB-grid occupancy from relative placement.
//!
//! "A view of the layout for pre-placed FPGA macros provides the user
//! with feedback on the size, shape, and layout of a circuit module
//! under review" (paper §3.2) — without exposing the underlying
//! netlist.

use std::collections::HashMap;

use ipd_hdl::{Circuit, FlatNetlist, Rloc};
use ipd_techlib::Device;

/// A summary of a circuit's placed footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSummary {
    /// Placed leaf count.
    pub placed: usize,
    /// Unplaced leaf count.
    pub unplaced: usize,
    /// Bounding box (`row_min`, `col_min`, `row_max`, `col_max`), if
    /// anything is placed.
    pub bounds: Option<(i32, i32, i32, i32)>,
}

impl LayoutSummary {
    /// Bounding-box height in rows (0 when nothing is placed).
    #[must_use]
    pub fn height(&self) -> u32 {
        match self.bounds {
            Some((r0, _, r1, _)) => (r1 - r0 + 1).unsigned_abs(),
            None => 0,
        }
    }

    /// Bounding-box width in columns (0 when nothing is placed).
    #[must_use]
    pub fn width(&self) -> u32 {
        match self.bounds {
            Some((_, c0, _, c1)) => (c1 - c0 + 1).unsigned_abs(),
            None => 0,
        }
    }
}

/// Computes the placement summary of a circuit.
///
/// # Errors
///
/// Propagates flattening errors.
pub fn layout_summary(circuit: &Circuit) -> Result<LayoutSummary, ipd_hdl::HdlError> {
    let flat = FlatNetlist::build(circuit)?;
    let mut placed = 0usize;
    let mut unplaced = 0usize;
    let mut bounds: Option<(i32, i32, i32, i32)> = None;
    for leaf in flat.leaves() {
        match leaf.loc {
            None => unplaced += 1,
            Some(loc) => {
                placed += 1;
                bounds = Some(match bounds {
                    None => (loc.row, loc.col, loc.row, loc.col),
                    Some((r0, c0, r1, c1)) => (
                        r0.min(loc.row),
                        c0.min(loc.col),
                        r1.max(loc.row),
                        c1.max(loc.col),
                    ),
                });
            }
        }
    }
    Ok(LayoutSummary {
        placed,
        unplaced,
        bounds,
    })
}

/// Renders the placed leaves as an ASCII occupancy grid. Each character
/// is one slice site: `.` empty, digits 1–9 for occupancy, `#` for ten
/// or more.
///
/// # Errors
///
/// Propagates flattening errors.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::KcmMultiplier;
/// use ipd_viewer::layout_grid;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
/// let circuit = Circuit::from_generator(&kcm)?;
/// let grid = layout_grid(&circuit)?;
/// assert!(grid.contains('\n'));
/// # Ok(())
/// # }
/// ```
pub fn layout_grid(circuit: &Circuit) -> Result<String, ipd_hdl::HdlError> {
    let flat = FlatNetlist::build(circuit)?;
    let mut occupancy: HashMap<Rloc, usize> = HashMap::new();
    for leaf in flat.leaves() {
        if let Some(loc) = leaf.loc {
            *occupancy.entry(loc).or_insert(0) += 1;
        }
    }
    if occupancy.is_empty() {
        return Ok("(no placed leaves)\n".to_owned());
    }
    let r0 = occupancy.keys().map(|l| l.row).min().expect("non-empty");
    let r1 = occupancy.keys().map(|l| l.row).max().expect("non-empty");
    let c0 = occupancy.keys().map(|l| l.col).min().expect("non-empty");
    let c1 = occupancy.keys().map(|l| l.col).max().expect("non-empty");
    let mut out = String::new();
    out.push_str(&format!(
        "layout: rows {r0}..{r1}, cols {c0}..{c1} ({} placed sites)\n",
        occupancy.len()
    ));
    for row in r0..=r1 {
        out.push_str(&format!("{row:>4} |"));
        for col in c0..=c1 {
            let ch = match occupancy.get(&Rloc::new(row, col)) {
                None => '.',
                Some(&n) if n < 10 => char::from_digit(n as u32, 10).expect("digit"),
                Some(_) => '#',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Checks the placed footprint against a device and renders a one-line
/// verdict (the applet's "does it fit my part?" feedback).
///
/// # Errors
///
/// Propagates flattening errors.
pub fn fit_report(circuit: &Circuit, device: &Device) -> Result<String, ipd_hdl::HdlError> {
    let summary = layout_summary(circuit)?;
    let verdict = match summary.bounds {
        None => format!("no placed footprint; {} leaves float", summary.unplaced),
        Some(_) => {
            let h = summary.height();
            let w = summary.width();
            if h <= device.rows && w <= device.cols {
                format!(
                    "{}x{} footprint fits {} ({}x{} CLBs)",
                    h, w, device.name, device.rows, device.cols
                )
            } else {
                format!(
                    "{}x{} footprint exceeds {} ({}x{} CLBs)",
                    h, w, device.name, device.rows, device.cols
                )
            }
        }
    };
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn placed_pair() -> Circuit {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
        let t = ctx.wire("t", 1);
        let a = ctx.inv(i, t).unwrap();
        ctx.set_rloc(a, Rloc::new(0, 0));
        let u = ctx.wire("u", 1);
        let b = ctx.inv(t, u).unwrap();
        ctx.set_rloc(b, Rloc::new(2, 3));
        c
    }

    #[test]
    fn summary_and_bounds() {
        let c = placed_pair();
        let s = layout_summary(&c).unwrap();
        assert_eq!(s.placed, 2);
        assert_eq!(s.unplaced, 0);
        assert_eq!(s.bounds, Some((0, 0, 2, 3)));
        assert_eq!(s.height(), 3);
        assert_eq!(s.width(), 4);
    }

    #[test]
    fn grid_renders_occupancy() {
        let c = placed_pair();
        let grid = layout_grid(&c).unwrap();
        assert!(grid.contains("rows 0..2"));
        // Two placed sites in the grid body (after the row labels).
        let body_ones: usize = grid
            .lines()
            .filter_map(|l| l.split_once('|'))
            .map(|(_, body)| body.matches('1').count())
            .sum();
        assert_eq!(body_ones, 2);
        assert!(grid.contains('.'));
    }

    #[test]
    fn empty_placement_message() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
        let t = ctx.wire("t", 1);
        ctx.inv(i, t).unwrap();
        assert!(layout_grid(&c).unwrap().contains("no placed leaves"));
    }

    #[test]
    fn fit_verdicts() {
        let c = placed_pair();
        let dev = Device::by_name("xcv50").unwrap();
        assert!(fit_report(&c, &dev).unwrap().contains("fits"));
    }
}
