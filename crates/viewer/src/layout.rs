//! The layout viewer: CLB-grid occupancy from relative placement.
//!
//! "A view of the layout for pre-placed FPGA macros provides the user
//! with feedback on the size, shape, and layout of a circuit module
//! under review" (paper §3.2) — without exposing the underlying
//! netlist.

use std::collections::HashMap;

use ipd_estimate::RoutingResult;
use ipd_hdl::{Circuit, FlatNetlist, Rloc};
use ipd_techlib::Device;

/// A summary of a circuit's placed footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSummary {
    /// Placed leaf count.
    pub placed: usize,
    /// Unplaced leaf count.
    pub unplaced: usize,
    /// Bounding box (`row_min`, `col_min`, `row_max`, `col_max`), if
    /// anything is placed.
    pub bounds: Option<(i32, i32, i32, i32)>,
}

impl LayoutSummary {
    /// Bounding-box height in rows (0 when nothing is placed).
    #[must_use]
    pub fn height(&self) -> u32 {
        match self.bounds {
            Some((r0, _, r1, _)) => (r1 - r0 + 1).unsigned_abs(),
            None => 0,
        }
    }

    /// Bounding-box width in columns (0 when nothing is placed).
    #[must_use]
    pub fn width(&self) -> u32 {
        match self.bounds {
            Some((_, c0, _, c1)) => (c1 - c0 + 1).unsigned_abs(),
            None => 0,
        }
    }
}

/// Computes the placement summary of a circuit.
///
/// # Errors
///
/// Propagates flattening errors.
pub fn layout_summary(circuit: &Circuit) -> Result<LayoutSummary, ipd_hdl::HdlError> {
    let flat = FlatNetlist::build(circuit)?;
    let mut placed = 0usize;
    let mut unplaced = 0usize;
    let mut bounds: Option<(i32, i32, i32, i32)> = None;
    for leaf in flat.leaves() {
        match leaf.loc {
            None => unplaced += 1,
            Some(loc) => {
                placed += 1;
                bounds = Some(match bounds {
                    None => (loc.row, loc.col, loc.row, loc.col),
                    Some((r0, c0, r1, c1)) => (
                        r0.min(loc.row),
                        c0.min(loc.col),
                        r1.max(loc.row),
                        c1.max(loc.col),
                    ),
                });
            }
        }
    }
    Ok(LayoutSummary {
        placed,
        unplaced,
        bounds,
    })
}

/// Renders the placed leaves as an ASCII occupancy grid. Each character
/// is one slice site: `.` empty, digits 1–9 for occupancy, `#` for ten
/// or more.
///
/// # Errors
///
/// Propagates flattening errors.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::KcmMultiplier;
/// use ipd_viewer::layout_grid;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
/// let circuit = Circuit::from_generator(&kcm)?;
/// let grid = layout_grid(&circuit)?;
/// assert!(grid.contains('\n'));
/// # Ok(())
/// # }
/// ```
pub fn layout_grid(circuit: &Circuit) -> Result<String, ipd_hdl::HdlError> {
    let flat = FlatNetlist::build(circuit)?;
    let mut occupancy: HashMap<Rloc, usize> = HashMap::new();
    for leaf in flat.leaves() {
        if let Some(loc) = leaf.loc {
            *occupancy.entry(loc).or_insert(0) += 1;
        }
    }
    if occupancy.is_empty() {
        return Ok("(no placed leaves)\n".to_owned());
    }
    let r0 = occupancy.keys().map(|l| l.row).min().expect("non-empty");
    let r1 = occupancy.keys().map(|l| l.row).max().expect("non-empty");
    let c0 = occupancy.keys().map(|l| l.col).min().expect("non-empty");
    let c1 = occupancy.keys().map(|l| l.col).max().expect("non-empty");
    let mut out = String::new();
    out.push_str(&format!(
        "layout: rows {r0}..{r1}, cols {c0}..{c1} ({} placed sites)\n",
        occupancy.len()
    ));
    for row in r0..=r1 {
        out.push_str(&format!("{row:>4} |"));
        for col in c0..=c1 {
            let ch = match occupancy.get(&Rloc::new(row, col)) {
                None => '.',
                Some(&n) if n < 10 => char::from_digit(n as u32, 10).expect("digit"),
                Some(_) => '#',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    Ok(out)
}

/// Checks the placed footprint against a device and renders a one-line
/// verdict (the applet's "does it fit my part?" feedback).
///
/// # Errors
///
/// Propagates flattening errors.
pub fn fit_report(circuit: &Circuit, device: &Device) -> Result<String, ipd_hdl::HdlError> {
    let summary = layout_summary(circuit)?;
    let verdict = match summary.bounds {
        None => format!("no placed footprint; {} leaves float", summary.unplaced),
        Some(_) => {
            let h = summary.height();
            let w = summary.width();
            if h <= device.rows && w <= device.cols {
                format!(
                    "{}x{} footprint fits {} ({}x{} CLBs)",
                    h, w, device.name, device.rows, device.cols
                )
            } else {
                format!(
                    "{}x{} footprint exceeds {} ({}x{} CLBs)",
                    h, w, device.name, device.rows, device.cols
                )
            }
        }
    };
    Ok(verdict)
}

/// Channel occupancy as one character: `.` unused, digits 1–9 for the
/// wire count, `#` for ten or more.
fn occ_char(occ: Option<u16>) -> char {
    match occ {
        None | Some(0) => '.',
        Some(n) if n < 10 => char::from_digit(u32::from(n), 10).expect("digit"),
        Some(_) => '#',
    }
}

/// Renders a routing result as an ASCII channel-occupancy overlay:
/// `+` marks CLB coordinates, the character between two adjacent `+`
/// marks how many wires the channel segment between them carries.
/// The view is clipped to the region wires actually use (plus one CLB
/// of margin) so large devices stay readable.
#[must_use]
pub fn route_grid(routing: &RoutingResult) -> String {
    let (g_r0, g_c0, g_rows, g_cols) = routing.grid_bounds();
    if routing.stats.nets == 0 || g_rows == 0 || g_cols == 0 {
        return "(no routed nets)\n".to_owned();
    }
    // Bounding box of everything the route touches.
    let mut bounds: Option<(i32, i32, i32, i32)> = None;
    let mut touch = |loc: Rloc| {
        bounds = Some(match bounds {
            None => (loc.row, loc.col, loc.row, loc.col),
            Some((r0, c0, r1, c1)) => (
                r0.min(loc.row),
                c0.min(loc.col),
                r1.max(loc.row),
                c1.max(loc.col),
            ),
        });
    };
    for net in &routing.nets {
        touch(net.source);
        for sink in &net.sinks {
            touch(sink.loc);
        }
        for &(a, b) in &net.segments {
            touch(a);
            touch(b);
        }
    }
    let (r0, c0, r1, c1) = bounds.expect("routed nets have sources");
    let r_lo = (r0 - 1).max(g_r0);
    let c_lo = (c0 - 1).max(g_c0);
    let r_hi = (r1 + 1).min(g_r0 + g_rows as i32 - 1);
    let c_hi = (c1 + 1).min(g_c0 + g_cols as i32 - 1);
    let mut out = format!("{}\n", routing.stats);
    for row in r_lo..=r_hi {
        let mut line = format!("{row:>4} ");
        for col in c_lo..=c_hi {
            line.push('+');
            if col < c_hi {
                line.push(occ_char(
                    routing.occupancy_between(Rloc::new(row, col), Rloc::new(row, col + 1)),
                ));
            }
        }
        out.push_str(&line);
        out.push('\n');
        if row < r_hi {
            let mut line = String::from("     ");
            for col in c_lo..=c_hi {
                line.push(occ_char(
                    routing.occupancy_between(Rloc::new(row, col), Rloc::new(row + 1, col)),
                ));
                if col < c_hi {
                    line.push(' ');
                }
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Renders a routing result as a per-net listing: every net with its
/// source CLB, fanout and per-sink routed wire length and
/// backannotated delay.
#[must_use]
pub fn route_dump(routing: &RoutingResult) -> String {
    let mut out = format!("{}\n", routing.stats);
    for net in &routing.nets {
        out.push_str(&format!(
            "net {} @ {} (fanout {}, {} segment(s)):\n",
            net.name,
            net.source,
            net.fanout,
            net.segments.len()
        ));
        for sink in &net.sinks {
            out.push_str(&format!(
                "  -> {}  wirelength {}  delay {:.3} ns\n",
                sink.loc, sink.wirelength, sink.delay_ns
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn placed_pair() -> Circuit {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
        let t = ctx.wire("t", 1);
        let a = ctx.inv(i, t).unwrap();
        ctx.set_rloc(a, Rloc::new(0, 0));
        let u = ctx.wire("u", 1);
        let b = ctx.inv(t, u).unwrap();
        ctx.set_rloc(b, Rloc::new(2, 3));
        c
    }

    #[test]
    fn summary_and_bounds() {
        let c = placed_pair();
        let s = layout_summary(&c).unwrap();
        assert_eq!(s.placed, 2);
        assert_eq!(s.unplaced, 0);
        assert_eq!(s.bounds, Some((0, 0, 2, 3)));
        assert_eq!(s.height(), 3);
        assert_eq!(s.width(), 4);
    }

    #[test]
    fn grid_renders_occupancy() {
        let c = placed_pair();
        let grid = layout_grid(&c).unwrap();
        assert!(grid.contains("rows 0..2"));
        // Two placed sites in the grid body (after the row labels).
        let body_ones: usize = grid
            .lines()
            .filter_map(|l| l.split_once('|'))
            .map(|(_, body)| body.matches('1').count())
            .sum();
        assert_eq!(body_ones, 2);
        assert!(grid.contains('.'));
    }

    #[test]
    fn empty_placement_message() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
        let t = ctx.wire("t", 1);
        ctx.inv(i, t).unwrap();
        assert!(layout_grid(&c).unwrap().contains("no placed leaves"));
    }

    #[test]
    fn fit_verdicts() {
        let c = placed_pair();
        let dev = Device::by_name("xcv50").unwrap();
        assert!(fit_report(&c, &dev).unwrap().contains("fits"));
    }

    #[test]
    fn route_views_render_wires_and_delays() {
        use ipd_estimate::{route, RouterConfig};
        use ipd_hdl::FlatNetlist;
        use ipd_techlib::DelayModel;
        let c = placed_pair();
        let flat = FlatNetlist::build(&c).unwrap();
        let routing = route(&flat, &DelayModel::virtex(), &RouterConfig::default()).unwrap();
        assert!(routing.stats.converged);

        let grid = route_grid(&routing);
        assert!(grid.contains("converged"), "{grid}");
        assert!(grid.contains('+'), "{grid}");
        // The single two-pin net occupies at least one channel: some
        // segment renders as '1'.
        assert!(grid.contains('1'), "{grid}");

        let dump = route_dump(&routing);
        assert!(dump.contains("net "), "{dump}");
        assert!(dump.contains("wirelength"), "{dump}");
        assert!(dump.contains("ns"), "{dump}");
    }

    #[test]
    fn empty_route_renders_placeholder() {
        let mut c = Circuit::new("t");
        {
            let mut ctx = c.root_ctx();
            let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
            let t = ctx.wire("t", 1);
            ctx.inv(i, t).unwrap();
        }
        let flat = ipd_hdl::FlatNetlist::build(&c).unwrap();
        let routing = ipd_estimate::route(
            &flat,
            &ipd_techlib::DelayModel::virtex(),
            &ipd_estimate::RouterConfig::default(),
        )
        .unwrap();
        assert_eq!(route_grid(&routing), "(no routed nets)\n");
    }
}
