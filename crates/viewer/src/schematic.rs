//! The schematic viewer: textual and SVG views of one hierarchy level.
//!
//! The paper's applet (its Figure 3) draws a schematic the customer can
//! browse interactively. These renderers are the deterministic
//! equivalents: [`schematic_text`] produces the netlist-style view of a
//! cell's contents, [`schematic_svg`] a simple boxes-and-nets drawing.

use std::fmt::Write as _;

use ipd_hdl::{Cell, CellId, CellKind, Circuit, PortDir, Signal};

/// Renders one hierarchy level as text: the cell's interface followed
/// by its instances and their connections.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_viewer::schematic_text;
///
/// let circuit = Circuit::new("top");
/// let text = schematic_text(&circuit, circuit.root());
/// assert!(text.contains("cell top"));
/// ```
#[must_use]
pub fn schematic_text(circuit: &Circuit, cell_id: CellId) -> String {
    let cell = circuit.cell(cell_id);
    let mut out = String::new();
    let _ = writeln!(out, "cell {} [{}]", cell.name(), cell.type_name());
    for port in cell.ports() {
        let _ = writeln!(
            out,
            "  port {:<6} {} [{}]",
            port.spec.name, port.spec.dir, port.spec.width
        );
    }
    if !cell.children().is_empty() {
        let _ = writeln!(out, "  contents:");
    }
    for &child in cell.children() {
        let child_cell = circuit.cell(child);
        let tag = match child_cell.kind() {
            CellKind::Composite => format!("[{}]", child_cell.type_name()),
            CellKind::Primitive(p) => format!("<{p}>"),
            CellKind::BlackBox => format!("[black box: {}]", child_cell.type_name()),
        };
        let _ = writeln!(out, "    {} {tag}", child_cell.name());
        for port in child_cell.ports() {
            let binding = match port.outer.as_ref() {
                Some(sig) => describe_signal(circuit, sig),
                None => "(open)".to_owned(),
            };
            let _ = writeln!(out, "      .{:<6} -> {binding}", port.spec.name);
        }
    }
    out
}

/// Names a signal using wire names and bit ranges, e.g. `bus[3:0]` or
/// `{hi, lo[2]}`.
fn describe_signal(circuit: &Circuit, sig: &Signal) -> String {
    let parts: Vec<String> = sig
        .segments()
        .iter()
        .map(|seg| {
            let wire = circuit.wire(seg.wire);
            if seg.hi == u32::MAX || (seg.lo == 0 && seg.hi + 1 == wire.width()) {
                wire.name().to_owned()
            } else if seg.hi == seg.lo {
                format!("{}[{}]", wire.name(), seg.lo)
            } else {
                format!("{}[{}:{}]", wire.name(), seg.hi, seg.lo)
            }
        })
        .collect();
    if parts.len() == 1 {
        parts.into_iter().next().expect("one part")
    } else {
        // MSB-first concatenation display.
        let mut rev = parts;
        rev.reverse();
        format!("{{{}}}", rev.join(", "))
    }
}

/// Renders one hierarchy level as an SVG drawing: instance boxes in a
/// grid with their ports listed, primary inputs on the left and
/// outputs on the right.
#[must_use]
pub fn schematic_svg(circuit: &Circuit, cell_id: CellId) -> String {
    let cell = circuit.cell(cell_id);
    let children = cell.children();
    let cols = (children.len() as f64).sqrt().ceil().max(1.0) as usize;
    let box_w = 180;
    let box_h = 90;
    let gap = 40;
    let rows = children.len().div_ceil(cols.max(1)).max(1);
    let width = 120 + cols * (box_w + gap) + 120;
    let height = 60 + rows * (box_h + gap);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         viewBox=\"0 0 {width} {height}\">"
    );
    let _ = writeln!(
        out,
        "  <text x=\"10\" y=\"20\" font-family=\"monospace\" font-size=\"14\">{}</text>",
        xml_escape(&format!("{} [{}]", cell.name(), cell.type_name()))
    );
    // Primary ports along the edges.
    for (i, port) in cell.ports().iter().enumerate() {
        let y = 50 + i * 18;
        let (x, anchor) = match port.spec.dir {
            PortDir::Input => (10, "start"),
            _ => (width - 10, "end"),
        };
        let _ = writeln!(
            out,
            "  <text x=\"{x}\" y=\"{y}\" text-anchor=\"{anchor}\" font-family=\"monospace\" \
             font-size=\"11\">{}</text>",
            xml_escape(&format!("{}[{}]", port.spec.name, port.spec.width))
        );
    }
    for (i, &child) in children.iter().enumerate() {
        let col = i % cols;
        let row = i / cols;
        let x = 120 + col * (box_w + gap);
        let y = 40 + row * (box_h + gap);
        let child_cell = circuit.cell(child);
        let fill = match child_cell.kind() {
            CellKind::Composite => "#dbe9ff",
            CellKind::Primitive(_) => "#e8ffe8",
            CellKind::BlackBox => "#444444",
        };
        let _ = writeln!(
            out,
            "  <rect x=\"{x}\" y=\"{y}\" width=\"{box_w}\" height=\"{box_h}\" fill=\"{fill}\" \
             stroke=\"black\"/>"
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-family=\"monospace\" \
             font-size=\"12\">{}</text>",
            x + box_w / 2,
            y + 16,
            xml_escape(child_cell.name())
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-family=\"monospace\" \
             font-size=\"10\">{}</text>",
            x + box_w / 2,
            y + 32,
            xml_escape(&type_label(child_cell))
        );
        for (pi, port) in child_cell.ports().iter().enumerate().take(4) {
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" font-family=\"monospace\" font-size=\"9\">{}</text>",
                x + 6,
                y + 48 + pi * 11,
                xml_escape(&port.spec.name)
            );
        }
        if child_cell.ports().len() > 4 {
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" font-family=\"monospace\" font-size=\"9\">…</text>",
                x + 6,
                y + 48 + 4 * 11
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn type_label(cell: &Cell) -> String {
    match cell.kind() {
        CellKind::Composite => cell.type_name().to_owned(),
        CellKind::Primitive(p) => p.name.clone(),
        CellKind::BlackBox => "(protected)".to_owned(),
    }
}

fn xml_escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    fn sample() -> Circuit {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.and2(Signal::bit_of(a, 0), Signal::bit_of(a, 1), y)
            .unwrap();
        c
    }

    #[test]
    fn text_view_lists_interface_and_contents() {
        let c = sample();
        let text = schematic_text(&c, c.root());
        assert!(text.contains("cell top [top]"));
        assert!(text.contains("port a"));
        assert!(text.contains("input"));
        assert!(text.contains("and2"));
        assert!(text.contains(".i0"));
        assert!(text.contains("a[0]"));
        assert!(text.contains("-> y"));
    }

    #[test]
    fn open_ports_marked() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        // A leaf with an unbound output shows as open.
        ctx.leaf(
            ipd_hdl::Primitive::new("virtex", "buf"),
            vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
            "b0",
            &[("i", i.into())],
        )
        .unwrap();
        let text = schematic_text(&c, c.root());
        assert!(text.contains("(open)"));
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let c = sample();
        let svg = schematic_svg(&c, c.root());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1);
        assert!(svg.contains("and2"));
    }

    #[test]
    fn black_boxes_render_opaque() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        ctx.black_box(
            "secret",
            vec![PortSpec::input("i", 1)],
            "bb",
            &[("i", i.into())],
        )
        .unwrap();
        let svg = schematic_svg(&c, c.root());
        assert!(svg.contains("#444444"));
        assert!(svg.contains("(protected)"));
        let text = schematic_text(&c, c.root());
        assert!(text.contains("black box"));
    }
}
