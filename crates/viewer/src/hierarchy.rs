//! The hierarchy browser: a textual tree of the circuit structure.

use ipd_hdl::{CellId, CellKind, Circuit};

/// Renders the circuit hierarchy as an indented tree, the textual
/// equivalent of JHDL's circuit hierarchy browser.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_viewer::hierarchy_tree;
///
/// let circuit = Circuit::new("top");
/// let tree = hierarchy_tree(&circuit);
/// assert!(tree.contains("top"));
/// ```
#[must_use]
pub fn hierarchy_tree(circuit: &Circuit) -> String {
    let mut out = String::new();
    render(circuit, circuit.root(), "", true, &mut out);
    out
}

fn render(circuit: &Circuit, id: CellId, prefix: &str, is_last: bool, out: &mut String) {
    let cell = circuit.cell(id);
    let connector = if cell.parent().is_none() {
        ""
    } else if is_last {
        "`-- "
    } else {
        "|-- "
    };
    let kind = match cell.kind() {
        CellKind::Composite => {
            let prims = circuit
                .descendants(id)
                .iter()
                .filter(|&&d| circuit.cell(d).is_primitive())
                .count();
            format!("[{}] ({prims} primitives)", cell.type_name())
        }
        CellKind::Primitive(p) => format!("<{p}>"),
        CellKind::BlackBox => format!("[black box: {}]", cell.type_name()),
    };
    let rloc = match cell.rloc() {
        Some(r) => format!(" @{r}"),
        None => String::new(),
    };
    out.push_str(&format!(
        "{prefix}{connector}{} {kind}{rloc}\n",
        cell.name()
    ));
    let children = cell.children();
    let child_prefix = if cell.parent().is_none() {
        prefix.to_owned()
    } else if is_last {
        format!("{prefix}    ")
    } else {
        format!("{prefix}|   ")
    };
    for (i, &child) in children.iter().enumerate() {
        render(circuit, child, &child_prefix, i + 1 == children.len(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{FnGenerator, PortSpec, Primitive};

    #[test]
    fn tree_shows_all_levels() {
        let inner = FnGenerator::new("leafy", vec![PortSpec::input("i", 1)], |ctx| {
            let i = ctx.port("i")?;
            ctx.leaf(
                Primitive::new("virtex", "buf"),
                vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
                "b0",
                &[("i", i.into())],
            )?;
            Ok(())
        });
        let mut c = ipd_hdl::Circuit::new("top");
        let mut ctx = c.root_ctx();
        let w = ctx.wire("w", 1);
        ctx.instantiate(&inner, "u0", &[("i", w.into())]).unwrap();
        ctx.instantiate(&inner, "u1", &[("i", w.into())]).unwrap();
        let tree = hierarchy_tree(&c);
        assert!(tree.contains("top"));
        assert!(tree.contains("|-- u0"));
        assert!(tree.contains("`-- u1"));
        assert!(tree.contains("b0 <virtex:buf>"));
        assert!(tree.contains("(1 primitives)"));
    }
}
