//! The waveform viewer: ASCII rendering of recorded traces.

use std::fmt::Write as _;

use ipd_sim::Trace;

/// Renders recorded traces as ASCII waveforms, the textual counterpart
/// of the JHDL waveform viewer the applet embeds.
///
/// Single-bit signals draw as level lines (`_` low, `-` high, `x`/`z`
/// unknowns); buses print their value per cycle, `.` marking repeats.
///
/// # Examples
///
/// ```
/// use ipd_hdl::LogicVec;
/// use ipd_sim::Trace;
/// use ipd_viewer::waveform_text;
///
/// let mut t = Trace::new("q", 1);
/// t.push(LogicVec::from_u64(0, 1));
/// t.push(LogicVec::from_u64(1, 1));
/// let text = waveform_text(&[t]);
/// assert!(text.contains("q"));
/// ```
#[must_use]
pub fn waveform_text(traces: &[Trace]) -> String {
    let mut out = String::new();
    let max_len = traces.iter().map(Trace::len).max().unwrap_or(0);
    let name_w = traces
        .iter()
        .map(|t| t.name().len())
        .max()
        .unwrap_or(4)
        .max(5);
    // Cycle ruler every 5 cycles.
    let _ = write!(out, "{:>name_w$} ", "cycle");
    for c in 0..max_len {
        if c % 5 == 0 {
            let label = format!("{c}");
            let _ = write!(out, "{label:<5}");
        }
    }
    out.push('\n');
    for trace in traces {
        if trace.width() == 1 {
            let _ = write!(out, "{:>name_w$} ", trace.name());
            for cycle in 0..max_len {
                let ch = match trace.sample(cycle) {
                    None => ' ',
                    Some(v) => match v.bit(0) {
                        ipd_hdl::Logic::Zero => '_',
                        ipd_hdl::Logic::One => '-',
                        ipd_hdl::Logic::X => 'x',
                        ipd_hdl::Logic::Z => 'z',
                    },
                };
                out.push(ch);
            }
            out.push('\n');
        } else {
            let _ = write!(out, "{:>name_w$} ", trace.name());
            let mut prev: Option<String> = None;
            for cycle in 0..max_len {
                match trace.sample(cycle) {
                    None => out.push(' '),
                    Some(v) => {
                        let text = match v.to_u64() {
                            Some(u) => format!("{u:x}"),
                            None => v.to_string(),
                        };
                        if prev.as_deref() == Some(&text) {
                            out.push('.');
                        } else {
                            let _ = write!(out, "|{text}");
                            prev = Some(text);
                        }
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{Logic, LogicVec};

    #[test]
    fn scalar_waveform_levels() {
        let mut t = Trace::new("clk_en", 1);
        for v in [0u64, 0, 1, 1, 0] {
            t.push(LogicVec::from_u64(v, 1));
        }
        t.push(LogicVec::from(Logic::X));
        let text = waveform_text(&[t]);
        assert!(text.contains("__--_x"));
    }

    #[test]
    fn bus_waveform_values_and_repeats() {
        let mut t = Trace::new("bus", 8);
        for v in [5u64, 5, 9] {
            t.push(LogicVec::from_u64(v, 8));
        }
        let text = waveform_text(&[t]);
        assert!(text.contains("|5.|9"), "{text}");
    }

    #[test]
    fn unknown_bus_prints_bits() {
        let mut t = Trace::new("b", 2);
        t.push(LogicVec::unknown(2));
        let text = waveform_text(&[t]);
        assert!(text.contains("XX"));
    }

    #[test]
    fn empty_input_renders_header_only() {
        let text = waveform_text(&[]);
        assert!(text.contains("cycle"));
    }
}
