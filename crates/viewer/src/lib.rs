//! # ipd-viewer — schematic, layout, hierarchy and waveform views
//!
//! The paper's IP evaluation applets embed JHDL's viewers so a customer
//! can *see* the IP before licensing it: a schematic browser (their
//! Figure 3), a relative-layout view, a hierarchy browser and a
//! waveform viewer. This crate supplies deterministic text/SVG
//! renderings of the same information, suitable for terminals, logs
//! and web pages:
//!
//! - [`schematic_text`] / [`schematic_svg`] — one hierarchy level with
//!   instances and connections.
//! - [`hierarchy_tree`] — the full design tree with statistics.
//! - [`layout_grid`] / [`layout_summary`] / [`fit_report`] — CLB-grid
//!   occupancy from relative placement.
//! - [`route_grid`] / [`route_dump`] — channel-occupancy overlay and
//!   per-net route listings from the global router.
//! - [`waveform_text`] — recorded simulation traces.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::Circuit;
//! use ipd_modgen::RippleAdder;
//! use ipd_viewer::{hierarchy_tree, layout_grid, schematic_text};
//!
//! # fn main() -> Result<(), ipd_hdl::HdlError> {
//! let circuit = Circuit::from_generator(&RippleAdder::new(4))?;
//! let tree = hierarchy_tree(&circuit);
//! let schematic = schematic_text(&circuit, circuit.root());
//! let layout = layout_grid(&circuit)?;
//! assert!(tree.contains("add_w4"));
//! assert!(schematic.contains("muxcy"));
//! assert!(layout.contains("|"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hierarchy;
mod layout;
mod schematic;
mod wave;

pub use hierarchy::hierarchy_tree;
pub use layout::{fit_report, layout_grid, layout_summary, route_dump, route_grid, LayoutSummary};
pub use schematic::{schematic_svg, schematic_text};
pub use wave::waveform_text;
