//! Regression lock on the JSON report serialization: consumers
//! (delivery tooling, CI diffing, committed golden reports) depend on
//! the schema version tag, fixed field order, and deterministic
//! diagnostic ordering. If this test fails, either restore the format
//! or bump `REPORT_SCHEMA_VERSION` and update the expectation.

use ipd_hdl::{Circuit, PortSpec, Primitive};
use ipd_lint::{LintConfig, Linter, REPORT_SCHEMA_VERSION};

/// A fixture with several findings across rules and severities: a
/// floating LUT input (X-propagation), dead logic, and a waived rule.
fn fixture() -> Circuit {
    let mut c = Circuit::new("fix");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    let dead = ctx.wire("dead", 1);
    ctx.leaf(
        Primitive::new("virtex", "xor2"),
        vec![
            PortSpec::input("i0", 1),
            PortSpec::input("i1", 1),
            PortSpec::output("o", 1),
        ],
        "x0",
        &[("i0", a.into()), ("i1", floating.into()), ("o", y.into())],
    )
    .unwrap();
    ctx.leaf(
        Primitive::new("virtex", "inv"),
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
        "d0",
        &[("i", a.into()), ("o", dead.into())],
    )
    .unwrap();
    c
}

#[test]
fn json_report_is_bit_stable_across_runs() {
    let circuit = fixture();
    let mut config = LintConfig::new();
    config.waive("dead-logic", "*", "kept for the regression fixture");
    let linter = Linter::with_config(config);
    let first = linter.run(&circuit).unwrap().to_json();
    for _ in 0..5 {
        assert_eq!(linter.run(&circuit).unwrap().to_json(), first);
    }
}

#[test]
fn json_report_leads_with_schema_version() {
    let report = Linter::new().run(&fixture()).unwrap();
    let json = report.to_json();
    let expected = format!("{{\n  \"schema_version\": {REPORT_SCHEMA_VERSION},\n");
    assert!(
        json.starts_with(&expected),
        "report must lead with the schema version tag:\n{json}"
    );
}

#[test]
fn diagnostics_are_sorted_deterministically() {
    let report = Linter::new().run(&fixture()).unwrap();
    let keys: Vec<_> = report
        .diags()
        .iter()
        .map(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.rule,
                d.object.clone(),
                d.message.clone(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must be in stable sort order");
    assert!(!keys.is_empty(), "fixture must produce findings");
}
