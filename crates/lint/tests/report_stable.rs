//! Regression lock on the JSON report serialization: consumers
//! (delivery tooling, CI diffing, committed golden reports) depend on
//! the schema version tag, fixed field order, and deterministic
//! diagnostic ordering. If this test fails, either restore the format
//! or bump `REPORT_SCHEMA_VERSION` and update the expectation.

use ipd_hdl::{Circuit, PortSpec, Primitive, Signal};
use ipd_lint::{LintConfig, Linter, OracleOptions, REPORT_SCHEMA_VERSION};
use ipd_techlib::LogicCtx;

/// A fixture with several findings across rules and severities: a
/// floating LUT input (X-propagation), dead logic, and a waived rule.
fn fixture() -> Circuit {
    let mut c = Circuit::new("fix");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    let dead = ctx.wire("dead", 1);
    ctx.leaf(
        Primitive::new("virtex", "xor2"),
        vec![
            PortSpec::input("i0", 1),
            PortSpec::input("i1", 1),
            PortSpec::output("o", 1),
        ],
        "x0",
        &[("i0", a.into()), ("i1", floating.into()), ("o", y.into())],
    )
    .unwrap();
    ctx.leaf(
        Primitive::new("virtex", "inv"),
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
        "d0",
        &[("i", a.into()), ("o", dead.into())],
    )
    .unwrap();
    c
}

#[test]
fn json_report_is_bit_stable_across_runs() {
    let circuit = fixture();
    let mut config = LintConfig::new();
    config.waive("dead-logic", "*", "kept for the regression fixture");
    let linter = Linter::with_config(config);
    let first = linter.run(&circuit).unwrap().to_json();
    for _ in 0..5 {
        assert_eq!(linter.run(&circuit).unwrap().to_json(), first);
    }
}

#[test]
fn json_report_leads_with_schema_version() {
    let report = Linter::new().run(&fixture()).unwrap();
    let json = report.to_json();
    let expected = format!("{{\n  \"schema_version\": {REPORT_SCHEMA_VERSION},\n");
    assert!(
        json.starts_with(&expected),
        "report must lead with the schema version tag:\n{json}"
    );
}

/// A design whose only X source is masked by a semantically-constant
/// AND input: cheap budgets exhaust on it, large budgets discharge it.
fn masked_fixture() -> Circuit {
    let mut c = Circuit::new("masked");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 3)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    // Parity twice — as a chain and as one LUT — then XOR: always 0.
    let p01 = ctx.wire("p01", 1);
    ctx.xor2(Signal::bit_of(a, 0), Signal::bit_of(a, 1), p01)
        .unwrap();
    let chain = ctx.wire("chain", 1);
    ctx.xor2(p01, Signal::bit_of(a, 2), chain).unwrap();
    let tree = ctx.wire("tree", 1);
    ctx.lut(
        0b1001_0110,
        &[
            Signal::bit_of(a, 0),
            Signal::bit_of(a, 1),
            Signal::bit_of(a, 2),
        ],
        tree,
    )
    .unwrap();
    let zero = ctx.wire("zero", 1);
    ctx.xor2(chain, tree, zero).unwrap();
    let floating = ctx.wire("floating", 1);
    ctx.and2(zero, floating, y).unwrap();
    c
}

#[test]
fn semantic_json_report_is_bit_stable_across_runs() {
    let circuit = fixture();
    let linter = Linter::with_oracle(LintConfig::new(), OracleOptions::default());
    let first = linter.run(&circuit).unwrap().to_json();
    for _ in 0..5 {
        assert_eq!(linter.run(&circuit).unwrap().to_json(), first);
    }
}

#[test]
fn proof_tiers_render_in_json() {
    // The shared fixture carries a real X leak: the never-X claim is
    // refuted and ships its witness tier through JSON.
    let json = Linter::with_oracle(LintConfig::new(), OracleOptions::default())
        .run(&fixture())
        .unwrap()
        .to_json();
    assert!(
        json.contains("\"proof\": \"refuted-with-witness\""),
        "witness tier missing:\n{json}"
    );

    // A fully driven design with a dead leaf: the oracle discharges
    // the structural claim at the proved tier.
    let mut driven = Circuit::new("driven");
    {
        let mut ctx = driven.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        let dead = ctx.wire("dead", 1);
        ctx.inv(a, dead).unwrap();
        ctx.buffer(a, y).unwrap();
    }
    let proved = Linter::with_oracle(LintConfig::new(), OracleOptions::default())
        .run(&driven)
        .unwrap()
        .to_json();
    assert!(
        proved.contains("\"proof\": \"proved\""),
        "proved tier missing:\n{proved}"
    );

    // Structural-only runs render the default tier explicitly: the
    // field is always present so consumers never branch on absence.
    let structural = Linter::new().run(&fixture()).unwrap().to_json();
    assert!(
        structural.contains("\"proof\": \"structural\""),
        "structural tier missing:\n{structural}"
    );

    // A one-conflict budget cannot discharge the masked X cone: the
    // claim is kept at the budget-exhausted tier (Unknown, never
    // silently flipped), and that tier round-trips through JSON.
    let starved = Linter::with_oracle(
        LintConfig::new(),
        OracleOptions {
            conflict_budget: 1,
            ..OracleOptions::default()
        },
    )
    .run(&masked_fixture())
    .unwrap()
    .to_json();
    assert!(
        starved.contains("\"proof\": \"budget-exhausted\""),
        "budget-exhausted tier missing:\n{starved}"
    );
}

#[test]
fn diagnostics_are_sorted_deterministically() {
    let report = Linter::new().run(&fixture()).unwrap();
    let keys: Vec<_> = report
        .diags()
        .iter()
        .map(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.rule,
                d.object.clone(),
                d.message.clone(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics must be in stable sort order");
    assert!(!keys.is_empty(), "fixture must produce findings");
}
