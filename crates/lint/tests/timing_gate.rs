//! The timing pass as a lint gate: setup violations are errors that
//! block delivery, unconstrained endpoints warn, and both ride the
//! standard waiver machinery.

use ipd_hdl::{Circuit, PortSpec, Severity};
use ipd_lint::{LintConfig, Linter, TimingConstraints};
use ipd_techlib::LogicCtx;

/// FF -> `depth` inverters -> FF, one clock. Long enough chains fail
/// tight periods; short ones pass.
fn ff_chain(depth: usize) -> Circuit {
    let mut c = Circuit::new("chain");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
    let mut cur: ipd_hdl::Signal = ctx.wire("s0", 1).into();
    ctx.fd(clk, d, cur.clone()).unwrap();
    for i in 0..depth {
        let nxt = ctx.wire(&format!("s{}", i + 1), 1);
        ctx.inv(cur, nxt).unwrap();
        cur = nxt.into();
    }
    ctx.fd(clk, cur, q).unwrap();
    c
}

fn constraints(period_ns: f64) -> TimingConstraints {
    let mut t = TimingConstraints::new();
    t.clock("clk", period_ns, "clk");
    t.output_delay("clk", 0.0, "q");
    t
}

#[test]
fn slow_design_fails_the_gate_and_fast_design_passes() {
    let slow = Linter::with_timing(LintConfig::new(), constraints(3.0))
        .run(&ff_chain(24))
        .unwrap();
    assert!(!slow.is_clean(), "{slow}");
    let violations: Vec<_> = slow
        .diags()
        .iter()
        .filter(|d| d.rule == "setup-violation")
        .collect();
    assert!(!violations.is_empty());
    assert!(violations.iter().all(|d| d.severity == Severity::Error));
    assert!(
        violations[0].message.contains("clk"),
        "{}",
        violations[0].message
    );

    let fast = Linter::with_timing(LintConfig::new(), constraints(100.0))
        .run(&ff_chain(2))
        .unwrap();
    assert!(
        !fast.diags().iter().any(|d| d.rule == "setup-violation"),
        "{fast}"
    );
}

#[test]
fn waivers_move_violations_out_of_the_gate() {
    let mut config = LintConfig::new();
    config.waive("setup-violation", "*", "known slow eval build");
    let report = Linter::with_timing(config, constraints(3.0))
        .run(&ff_chain(24))
        .unwrap();
    assert!(report.is_clean(), "{report}");
    assert!(report.waived().iter().any(|d| d.rule == "setup-violation"));
}

#[test]
fn unmatched_clock_warns_on_unconstrained_endpoints() {
    let mut t = TimingConstraints::new();
    t.clock("core", 5.0, "no_such_clock_net");
    let report = Linter::with_timing(LintConfig::new(), t)
        .run(&ff_chain(4))
        .unwrap();
    assert!(report.is_clean(), "warnings must not gate: {report}");
    let warns: Vec<_> = report
        .diags()
        .iter()
        .filter(|d| d.rule == "unconstrained-endpoint")
        .collect();
    assert!(!warns.is_empty());
    assert!(warns.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn empty_constraints_leave_the_linter_unchanged() {
    let design = ff_chain(24);
    let plain = Linter::new().run(&design).unwrap();
    let timed = Linter::with_timing(LintConfig::new(), TimingConstraints::new())
        .run(&design)
        .unwrap();
    assert_eq!(plain.diags().len(), timed.diags().len());
    assert!(!timed
        .diags()
        .iter()
        .any(|d| d.rule == "setup-violation" || d.rule == "unconstrained-endpoint"));
}

#[test]
fn timing_rules_are_in_the_catalog() {
    let catalog = ipd_lint::rule_catalog();
    let find = |id: &str| catalog.iter().find(|r| r.id == id);
    assert_eq!(find("setup-violation").unwrap().severity, Severity::Error);
    assert_eq!(
        find("unconstrained-endpoint").unwrap().severity,
        Severity::Warning
    );
}
