//! Every module generator must produce a design the full lint engine
//! finds *nothing* wrong with — no errors and no warnings.
//!
//! This is the regression net for a batch of real generator bugs the
//! linter surfaced when it was first run over the library:
//!
//! - `RippleAdder`/`Subtractor`/`AddSub`/`Counter` emitted a final
//!   carry MUXCY whose output nothing consumed (dead logic in every
//!   arithmetic module, transitively in multipliers and filters);
//! - `KcmMultiplier` built LUT4 partial-product banks whose init was
//!   all-zero (constants with trailing zeros) — stuck-at-0 LUTs feeding
//!   real adders;
//! - truncated KCMs buffered and registered product bits that were
//!   discarded before delivery (dead cones);
//! - `FirFilter` instantiated full-width KCMs for even coefficients,
//!   adding constant-zero low bits into the accumulation chain
//!   (stuck-at carries in `sum*` adders);
//! - `Rom` spent ROM16X1/LUT primitives on banks whose contents were
//!   uniform, and `PopCount`/`ArrayMultiplier`/`FirFilter` stacked the
//!   relationally-placed carry chains of distinct adder instances onto
//!   the same slice sites;
//! - several generators drove a ground rail that nothing read when
//!   widths lined up (dead GND).
//!
//! Each fix keeps the functional tests bit-identical; this test keeps
//! the library clean as generators evolve.

use ipd_hdl::{Circuit, Generator};
use ipd_modgen::{
    Accumulator, AddSub, ArrayMultiplier, BarrelShifter, BusMux, Comparator, CompareOp,
    CountDirection, Counter, Decoder, FirFilter, GrayCounter, KcmMultiplier, Lfsr, ParityTree,
    PopCount, Register, RippleAdder, Rom, ShiftRegister, Subtractor,
};

fn assert_clean(name: &str, g: &dyn Generator) {
    let circuit = Circuit::from_generator(g).unwrap();
    let report = ipd_lint::lint(&circuit).unwrap();
    assert!(
        report.diags().is_empty(),
        "{name} is not lint-clean:\n{report}"
    );
}

#[test]
fn adders_are_clean() {
    assert_clean("ripple4", &RippleAdder::new(4));
    assert_clean("ripple8", &RippleAdder::new(8));
    assert_clean("ripple8_cin", &RippleAdder::new(8).with_cin());
    assert_clean("ripple8_cout", &RippleAdder::new(8).with_cout());
    assert_clean(
        "ripple8_cin_cout",
        &RippleAdder::new(8).with_cin().with_cout(),
    );
    assert_clean("sub8", &Subtractor::new(8));
    assert_clean("sub8_cout", &Subtractor::new(8).with_cout());
    assert_clean("addsub8", &AddSub::new(8));
    assert_clean("accum8", &Accumulator::new(8));
}

#[test]
fn counters_and_registers_are_clean() {
    assert_clean("counter8_up", &Counter::new(8, CountDirection::Up));
    assert_clean("counter8_down", &Counter::new(8, CountDirection::Down));
    assert_clean(
        "counter8_load",
        &Counter::new(8, CountDirection::Up).loadable(),
    );
    assert_clean("gray4", &GrayCounter::new(4));
    assert_clean("gray7", &GrayCounter::new(7));
    assert_clean("reg8", &Register::new(8));
    assert_clean("reg8_ce_clr", &Register::new(8).with_ce().with_clr());
    assert_clean("shiftreg4x8", &ShiftRegister::new(4, 8));
    assert_clean("lfsr8", &Lfsr::new(8, 0b1000_1110));
}

#[test]
fn multipliers_are_clean() {
    assert_clean("mult4x4", &ArrayMultiplier::new(4, 4));
    assert_clean("mult6x5", &ArrayMultiplier::new(6, 5));
    assert_clean("mult5x5_pipe", &ArrayMultiplier::new(5, 5).pipelined(true));
    // The paper's running example: ×(−56) over 8 signed bits. The
    // constant's three trailing zeros used to leave a column of
    // stuck-at-0 partial-product LUTs.
    let full = KcmMultiplier::new(-56, 8, 1)
        .signed(true)
        .full_product_width();
    assert_clean("kcm_full", &KcmMultiplier::new(-56, 8, full).signed(true));
    assert_clean("kcm_trunc", &KcmMultiplier::new(-56, 8, 12).signed(true));
    assert_clean(
        "kcm_trunc_pipe",
        &KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true),
    );
    assert_clean("kcm_unsigned", &KcmMultiplier::new(200, 10, 14));
    assert_clean("kcm_odd", &KcmMultiplier::new(77, 8, 15).signed(true));
}

#[test]
fn filters_are_clean() {
    // Even coefficients exercise the truncated-KCM path (a full-width
    // product would feed constant-zero bits into the accumulators).
    assert_clean(
        "fir_sym",
        &FirFilter::new(vec![-2, 5, 9, 5, -2], 8).unwrap(),
    );
    assert_clean("fir_small", &FirFilter::new(vec![1, -1], 4).unwrap());
    assert_clean("fir_even", &FirFilter::new(vec![4, -8, 16], 6).unwrap());
}

#[test]
fn logic_generators_are_clean() {
    assert_clean("popcount1", &PopCount::new(1));
    assert_clean("popcount8", &PopCount::new(8));
    assert_clean("popcount12", &PopCount::new(12));
    assert_clean("decoder3", &Decoder::new(3));
    assert_clean("parity8", &ParityTree::new(8));
    assert_clean("busmux2", &BusMux::new(2));
    assert_clean("cmp8_lt", &Comparator::new(8, CompareOp::Lt));
    assert_clean("cmp8_eq", &Comparator::new(8, CompareOp::Eq));
    assert_clean("barrel8", &BarrelShifter::new(8));
}

#[test]
fn roms_are_clean() {
    assert_clean(
        "rom_4x8",
        &Rom::new(4, 8, (0..16).map(|i| i * 7).collect()).unwrap(),
    );
    assert_clean(
        "rom_6x8",
        &Rom::new(6, 8, (0..64).map(|i| (i * 7) % 256).collect()).unwrap(),
    );
    // Heavily zero-padded contents: whole banks (and whole mux
    // subtrees) collapse onto the ground rail.
    assert_clean("rom_sparse", &Rom::new(6, 8, vec![1, 2, 3]).unwrap());
}
