//! The `equiv-mismatch` rule: `Linter::with_golden` must pass
//! faithful revisions, flag functional divergence as an error with
//! the distinguishing vector, and honor waivers like any other rule.

use ipd_hdl::{Circuit, FlatNetlist, PortSpec};
use ipd_lint::{LintConfig, Linter};
use ipd_techlib::LogicCtx;

/// `y = a & b` as a gate, or (the faulty revision) `y = a | b`.
fn two_input(and_gate: bool) -> Circuit {
    let mut c = Circuit::new("unit");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    if and_gate {
        ctx.and2(a, b, y).unwrap();
    } else {
        ctx.or2(a, b, y).unwrap();
    }
    c
}

/// `y = a & b` resynthesized as a LUT2 (INIT=0b1000).
fn two_input_lut() -> Circuit {
    let mut c = Circuit::new("unit");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.lut(0b1000, &[a.into(), b.into()], y).unwrap();
    c
}

fn golden() -> FlatNetlist {
    FlatNetlist::build(&two_input(true)).unwrap()
}

#[test]
fn equivalent_revision_lints_clean() {
    let linter = Linter::with_golden(LintConfig::new(), golden());
    let report = linter.run(&two_input_lut()).unwrap();
    assert_eq!(
        report.by_rule("equiv-mismatch").count(),
        0,
        "resynthesized AND flagged: {report}"
    );
}

#[test]
fn divergent_revision_fails_with_vector() {
    let linter = Linter::with_golden(LintConfig::new(), golden());
    let report = linter.run(&two_input(false)).unwrap();
    assert!(!report.is_clean());
    let diag = report.by_rule("equiv-mismatch").next().expect("finding");
    assert!(
        diag.message.contains("under inputs"),
        "diagnostic must carry the distinguishing vector: {}",
        diag.message
    );
}

#[test]
fn equiv_mismatch_honors_waivers() {
    let mut config = LintConfig::new();
    config.waive("equiv-mismatch", "*", "intentional functional change");
    let linter = Linter::with_golden(config, golden());
    let report = linter.run(&two_input(false)).unwrap();
    assert!(report.is_clean(), "waived mismatch still gates: {report}");
    assert_eq!(report.waived().len(), 1);
}

#[test]
fn boundary_mismatch_is_reported_not_panicked() {
    let mut c = Circuit::new("unit");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.buffer(a, y).unwrap();
    let linter = Linter::with_golden(LintConfig::new(), golden());
    let report = linter.run(&c).unwrap();
    let diag = report.by_rule("equiv-mismatch").next().expect("finding");
    assert!(diag.message.contains("cannot prove equivalence"));
}
