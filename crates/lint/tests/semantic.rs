//! The semantic lint tier, validated against the structural tier and
//! both simulation engines.
//!
//! The contract under test: semantic lint never *invents* structural
//! findings (every `dead-logic`/`constant-logic`/`x-reachable` object
//! it reports, the structural tier reports too — except the
//! semantically-constant nets it newly proves), never *keeps* a
//! finding both simulators contradict, and never *drops* one they
//! confirm. Budget exhaustion must degrade verdicts to `Unknown`
//! (finding kept at `budget-exhausted`), never flip them.

use ipd_hdl::{Circuit, FlatNetlist, Logic, PortSpec, Signal};
use ipd_lint::{extract_dont_cares, LintConfig, LintReport, Linter, OracleOptions, ProofTier};
use ipd_sim::{BatchSimulator, CompiledSimulator};
use ipd_techlib::LogicCtx;
use ipd_testutil::XorShift64;

fn semantic_report(c: &Circuit) -> LintReport {
    Linter::with_oracle(LintConfig::new(), OracleOptions::default())
        .run(c)
        .unwrap()
}

fn structural_report(c: &Circuit) -> LintReport {
    Linter::new().run(c).unwrap()
}

/// (object, message) pairs of one rule, for set comparisons.
fn keys(report: &LintReport, rule: &str) -> Vec<(String, String)> {
    report
        .by_rule(rule)
        .map(|d| (d.object.clone(), d.message.clone()))
        .collect()
}

// ---------------------------------------------------------------- zoo audit

/// The structural rules audited against the oracle across every
/// example generator: no retractions (a retraction would mean a
/// structural false positive shipped for years), no redundant or
/// unreachable-state noise (the generators were fixed until the only
/// surviving semantic findings are SAT-mined stuck nets from sparse
/// value sets, which structure cannot see), and every mined constant
/// differentially confirmed in both engines.
#[test]
fn zoo_semantic_agrees_with_structural_and_stays_clean() {
    let mut rng = XorShift64::new(0x0200_5eed);
    for (name, circuit) in ipd_modgen::example_zoo() {
        let structural = structural_report(&circuit);
        let semantic = semantic_report(&circuit);
        for rule in ["dead-logic", "constant-logic", "x-reachable"] {
            let s = keys(&structural, rule);
            let m: Vec<_> = keys(&semantic, rule)
                .into_iter()
                .filter(|(_, msg)| !msg.contains("semantically stuck"))
                .collect();
            // Structural claims survive (confirmed or budget-kept) and
            // refinement only ever removes x-reachable findings.
            if rule == "x-reachable" {
                for k in &m {
                    assert!(s.contains(k), "{name}: semantic invented x finding {k:?}");
                }
            } else {
                assert_eq!(s, m, "{name}: {rule} disagreement");
            }
        }
        // The delivered examples carry no actionable waste and no
        // unproven noise: semantic lint may only add fully proved
        // mined constants on top of the (empty) structural report.
        assert!(semantic.is_clean(), "{name}:\n{semantic}");
        assert_eq!(
            semantic.by_rule("redundant-logic").count(),
            0,
            "{name}:\n{semantic}"
        );
        assert_eq!(
            semantic.by_rule("unreachable-state").count(),
            0,
            "{name}:\n{semantic}"
        );
        let mined: Vec<(String, Logic)> = semantic
            .diags()
            .iter()
            .map(|d| {
                assert_eq!(d.rule, "constant-logic", "{name}: {d}");
                assert_eq!(d.proof, ProofTier::Proved, "{name}: {d}");
                assert!(d.message.contains("semantically stuck"), "{name}: {d}");
                let net = d
                    .message
                    .strip_prefix("output net ")
                    .and_then(|m| m.split(' ').next())
                    .expect("message names the net")
                    .to_owned();
                let v = if d.message.contains("stuck at 1") {
                    Logic::One
                } else {
                    Logic::Zero
                };
                (net, v)
            })
            .collect();
        if mined.is_empty() {
            continue;
        }
        // Differential confirmation: both engines hold every mined
        // constant at its proved value under random driven stimulus.
        let flat = FlatNetlist::build(&circuit).unwrap();
        let has_clk = flat
            .ports()
            .iter()
            .any(|p| p.name == "clk" && p.dir == ipd_hdl::PortDir::Input);
        let lanes = 4;
        let (mut batch, mut comp) = if has_clk {
            (
                BatchSimulator::with_clock(&circuit, "clk", lanes).unwrap(),
                CompiledSimulator::with_clock(&circuit, "clk", lanes).unwrap(),
            )
        } else {
            (
                BatchSimulator::new(&circuit, lanes).unwrap(),
                CompiledSimulator::new(&circuit, lanes).unwrap(),
            )
        };
        for _ in 0..4 {
            for port in flat.ports() {
                if port.dir != ipd_hdl::PortDir::Input || port.name == "clk" {
                    continue;
                }
                for lane in 0..lanes {
                    let v = rng.next_u64() & ((1u64 << port.nets.len().min(63)) - 1);
                    batch.set_u64_lane(&port.name, lane, v).unwrap();
                    comp.set_u64_lane(&port.name, lane, v).unwrap();
                }
            }
            if has_clk {
                batch.cycle(1).unwrap();
                comp.cycle(1).unwrap();
            }
            for (net, expect) in &mined {
                for lane in 0..lanes {
                    assert_eq!(
                        batch.peek_net_lane(net, lane).unwrap(),
                        *expect,
                        "{name}: batch disagrees on mined constant {net}"
                    );
                    assert_eq!(
                        comp.peek_net_lane(net, lane).unwrap(),
                        *expect,
                        "{name}: compiled disagrees on mined constant {net}"
                    );
                }
            }
        }
    }
}

// ------------------------------------------------- carry-chain confirmation

/// `a + 0` carry chain: the structural evaluator claims both MUXCY
/// carries stuck at 0 (correctly — both data inputs are the rail).
/// The audit requires the oracle to *confirm* these, not retract
/// them: a retraction here would be a carry-chain false positive.
fn add_zero_chain() -> Circuit {
    let mut c = Circuit::new("addz");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 2)).unwrap();
    let s = ctx.add_port(PortSpec::output("s", 3)).unwrap();
    let zero = ctx.wire("zero", 1);
    ctx.gnd(zero).unwrap();
    let mut carry: Signal = zero.into();
    for bit in 0..2u32 {
        let p = ctx.wire(&format!("p{bit}"), 1);
        ctx.xor2(Signal::bit_of(a, bit), zero, p).unwrap();
        ctx.xorcy(carry.clone(), p, Signal::bit_of(s, bit)).unwrap();
        let co: Signal = if bit == 1 {
            Signal::bit_of(s, 2)
        } else {
            ctx.wire(&format!("co{bit}"), 1).into()
        };
        ctx.muxcy(carry, zero, p, co.clone()).unwrap();
        carry = co;
    }
    c
}

#[test]
fn carry_chain_constants_are_confirmed_not_retracted() {
    let c = add_zero_chain();
    let structural = structural_report(&c);
    let semantic = semantic_report(&c);
    let s = keys(&structural, "constant-logic");
    let m = keys(&semantic, "constant-logic");
    assert_eq!(s.len(), 2, "both carry muxes claimed:\n{structural}");
    assert_eq!(s, m, "no retraction, no loss");
    for d in semantic.by_rule("constant-logic") {
        assert_eq!(d.proof, ProofTier::Proved, "{d}");
    }
    // Both engines agree the carries are stuck at 0 under stimulus.
    let flat = FlatNetlist::build(&c).unwrap();
    let carry_nets: Vec<String> = flat
        .nets()
        .iter()
        .filter(|n| n.name.ends_with("/co0") || n.name.ends_with("/s[2]"))
        .map(|n| n.name.clone())
        .collect();
    assert_eq!(carry_nets.len(), 2);
    let lanes = 4;
    let mut batch = BatchSimulator::new(&c, lanes).unwrap();
    let mut comp = CompiledSimulator::new(&c, lanes).unwrap();
    for lane in 0..lanes {
        batch.set_u64_lane("a", lane, lane as u64).unwrap();
        comp.set_u64_lane("a", lane, lane as u64).unwrap();
    }
    for net in &carry_nets {
        for lane in 0..lanes {
            assert_eq!(batch.peek_net_lane(net, lane).unwrap(), Logic::Zero);
            assert_eq!(comp.peek_net_lane(net, lane).unwrap(), Logic::Zero);
        }
    }
}

// ---------------------------------------------- semantically-constant nets

/// `w ^ w` is structurally "varying" (its input varies) but
/// semantically stuck at 0 — exactly the class the signature-mining
/// path must catch and structure alone cannot.
#[test]
fn semantically_constant_xor_is_mined_and_proved() {
    let mut c = Circuit::new("selfx");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let w = ctx.wire("w", 1);
    ctx.and2(a, b, w).unwrap();
    ctx.xor2(w, w, y).unwrap();
    let structural = structural_report(&c);
    assert_eq!(
        keys(&structural, "constant-logic"),
        vec![],
        "structure alone must miss it"
    );
    let semantic = semantic_report(&c);
    let diag = semantic
        .by_rule("constant-logic")
        .next()
        .expect("mined constant");
    assert_eq!(diag.proof, ProofTier::Proved);
    assert!(diag.message.contains("semantically stuck at 0"), "{diag}");
    // Both engines: y never leaves 0.
    let lanes = 4;
    let mut batch = BatchSimulator::new(&c, lanes).unwrap();
    let mut comp = CompiledSimulator::new(&c, lanes).unwrap();
    for lane in 0..lanes {
        batch.set_u64_lane("a", lane, (lane & 1) as u64).unwrap();
        batch.set_u64_lane("b", lane, (lane >> 1) as u64).unwrap();
        comp.set_u64_lane("a", lane, (lane & 1) as u64).unwrap();
        comp.set_u64_lane("b", lane, (lane >> 1) as u64).unwrap();
        assert_eq!(batch.peek_net_lane("selfx/y", lane).unwrap(), Logic::Zero);
        assert_eq!(comp.peek_net_lane("selfx/y", lane).unwrap(), Logic::Zero);
    }
}

// ------------------------------------------------- RAM async-read X audit

/// RAM16X1 with `we` grounded and a floating `d`: the structural
/// X-taint sweeps through the sequential element (its data input is
/// undriven) and flags the read output — but no write ever commits,
/// so the output only ever reads the known init word. The semantic
/// tier must refine the false positive away, and both simulators
/// must agree the output never goes X.
fn ram_never_written() -> Circuit {
    let mut c = Circuit::new("ramnx");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let addr = ctx.add_port(PortSpec::input("addr", 4)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    let zero = ctx.wire("zero", 1);
    ctx.gnd(zero).unwrap();
    ctx.ram16x1(0xBEEF, clk, zero, floating, addr, y).unwrap();
    c
}

#[test]
fn ram_async_read_x_false_positive_is_refined_away() {
    let c = ram_never_written();
    let structural = structural_report(&c);
    assert_eq!(
        keys(&structural, "x-reachable").len(),
        1,
        "the structural false positive this audit pins:\n{structural}"
    );
    let semantic = semantic_report(&c);
    assert_eq!(
        keys(&semantic, "x-reachable"),
        vec![],
        "proved never-X, so the finding must be dropped:\n{semantic}"
    );
    // Differential confirmation in both engines, across cycles.
    let lanes = 4;
    let mut batch = BatchSimulator::with_clock(&c, "clk", lanes).unwrap();
    let mut comp = CompiledSimulator::with_clock(&c, "clk", lanes).unwrap();
    let mut rng = XorShift64::new(0x5eed);
    for _ in 0..6 {
        for lane in 0..lanes {
            let a = rng.next_u64() & 0xF;
            batch.set_u64_lane("addr", lane, a).unwrap();
            comp.set_u64_lane("addr", lane, a).unwrap();
        }
        batch.cycle(1).unwrap();
        comp.cycle(1).unwrap();
        for lane in 0..lanes {
            let vb = batch.peek_net_lane("ramnx/y", lane).unwrap();
            let vc = comp.peek_net_lane("ramnx/y", lane).unwrap();
            assert!(vb.is_driven(), "batch saw X on never-written RAM read");
            assert_eq!(vb, vc, "engines disagree");
        }
    }
}

// ------------------------------------------ refuted X with replayed witness

#[test]
fn real_x_leak_keeps_finding_with_witness_tier() {
    let mut c = Circuit::new("leak");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    ctx.xor2(a, floating, y).unwrap();
    let semantic = semantic_report(&c);
    let diag = semantic
        .by_rule("x-reachable")
        .next()
        .expect("the leak is real and must be kept");
    assert_eq!(diag.object, "y[0]");
    // The oracle replayed its witness through both engines before this
    // tier could be assigned; re-confirm independently here.
    assert_eq!(diag.proof, ProofTier::RefutedWithWitness);
    let mut batch = BatchSimulator::new(&c, 1).unwrap();
    batch.set_u64_lane("a", 0, 0).unwrap();
    assert!(!batch.peek_net_lane("leak/y", 0).unwrap().is_driven());
    let mut comp = CompiledSimulator::new(&c, 1).unwrap();
    comp.set_u64_lane("a", 0, 0).unwrap();
    assert!(!comp.peek_net_lane("leak/y", 0).unwrap().is_driven());
}

// --------------------------------------------------- budget exhaustion

/// `y = floating & (parity_chain(i) ^ parity_tree(i))`. The mask is
/// identically 0, so `y` never carries X — but proving that requires
/// a real SAT proof of 6-input parity equivalence. With the default
/// budget the finding is refined away; with a 1-conflict budget the
/// verdict must degrade to `Unknown` and the structural claim must
/// survive at `budget-exhausted` — never flip to a wrong answer.
fn masked_x_parity() -> Circuit {
    let mut c = Circuit::new("pmask");
    let mut ctx = c.root_ctx();
    let i = ctx.add_port(PortSpec::input("i", 6)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    // Chain parity.
    let mut chain: Signal = Signal::bit_of(i, 0);
    for bit in 1..6u32 {
        let w = ctx.wire(&format!("ch{bit}"), 1);
        ctx.xor2(chain, Signal::bit_of(i, bit), w).unwrap();
        chain = w.into();
    }
    // Tree parity (different shape, same function).
    let mut level: Vec<Signal> = (0..3)
        .map(|k| {
            let w = ctx.wire(&format!("t0_{k}"), 1);
            ctx.xor2(Signal::bit_of(i, 2 * k), Signal::bit_of(i, 2 * k + 1), w)
                .unwrap();
            w.into()
        })
        .collect();
    let t1 = ctx.wire("t1", 1);
    ctx.xor2(level[0].clone(), level[1].clone(), t1).unwrap();
    let tree = ctx.wire("tree", 1);
    ctx.xor2(t1, level.pop().unwrap(), tree).unwrap();
    let mask = ctx.wire("mask", 1);
    ctx.xor2(chain, tree, mask).unwrap();
    ctx.and2(floating, mask, y).unwrap();
    c
}

#[test]
fn budget_exhaustion_keeps_claim_as_unknown_never_wrong() {
    let c = masked_x_parity();
    assert_eq!(
        keys(&structural_report(&c), "x-reachable").len(),
        1,
        "structure taints the masked output"
    );

    // Default budget: the parity-equivalence proof closes and the
    // false positive is refined away.
    let refined = semantic_report(&c);
    assert_eq!(keys(&refined, "x-reachable"), vec![], "{refined}");
    // Both engines: y never X under driven stimulus.
    let lanes = 8;
    let mut batch = BatchSimulator::new(&c, lanes).unwrap();
    let mut comp = CompiledSimulator::new(&c, lanes).unwrap();
    let mut rng = XorShift64::new(0xabc);
    for _ in 0..4 {
        for lane in 0..lanes {
            let v = rng.next_u64() & 0x3F;
            batch.set_u64_lane("i", lane, v).unwrap();
            comp.set_u64_lane("i", lane, v).unwrap();
        }
        for lane in 0..lanes {
            assert_eq!(batch.peek_net_lane("pmask/y", lane).unwrap(), Logic::Zero);
            assert_eq!(comp.peek_net_lane("pmask/y", lane).unwrap(), Logic::Zero);
        }
    }

    // One-conflict budget: Unknown, claim kept, tier recorded.
    let opts = OracleOptions {
        conflict_budget: 1,
        ..OracleOptions::default()
    };
    let starved = Linter::with_oracle(LintConfig::new(), opts)
        .run(&c)
        .unwrap();
    let diag = starved
        .by_rule("x-reachable")
        .next()
        .expect("budget exhaustion must keep the structural claim");
    assert_eq!(diag.proof, ProofTier::BudgetExhausted);
    assert!(
        starved
            .to_json()
            .contains("\"proof\": \"budget-exhausted\""),
        "Unknown verdicts must be visible in the JSON report"
    );
}

// ----------------------------------------------------- unreachable state

/// q0 toggles, q1 delays q0, q2 loads `q0 & q1` — which is never 1 in
/// any reachable state, so q2 is stuck at its power-on 0.
fn stuck_state_machine() -> Circuit {
    let mut c = Circuit::new("onehot");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let q0 = ctx.wire("q0", 1);
    let q1 = ctx.wire("q1", 1);
    let q2 = ctx.wire("q2", 1);
    let nq0 = ctx.wire("nq0", 1);
    let a01 = ctx.wire("a01", 1);
    ctx.inv(q0, nq0).unwrap();
    ctx.and2(q0, q1, a01).unwrap();
    ctx.fd(clk, nq0, q0).unwrap();
    ctx.fd(clk, q0, q1).unwrap();
    ctx.fd(clk, a01, q2).unwrap();
    ctx.or3(q0, q1, q2, y).unwrap();
    c
}

#[test]
fn stuck_register_bit_reported_as_unreachable_state() {
    let semantic = semantic_report(&stuck_state_machine());
    let diags: Vec<_> = semantic.by_rule("unreachable-state").collect();
    assert_eq!(diags.len(), 1, "{semantic}");
    assert!(diags[0].object.ends_with("/fd_3"), "{}", diags[0].object);
    assert!(
        diags[0]
            .message
            .contains("stuck at 0 across all 3 reachable state(s)"),
        "{}",
        diags[0].message
    );
    assert_eq!(diags[0].proof, ProofTier::Proved);
    // The simulators agree: q2 never rises over a long run.
    let c = stuck_state_machine();
    let mut batch = BatchSimulator::with_clock(&c, "clk", 1).unwrap();
    for _ in 0..16 {
        batch.cycle(1).unwrap();
        assert_eq!(batch.peek_net_lane("onehot/q2", 0).unwrap(), Logic::Zero);
    }
    // A full-period machine (every state reachable) reports nothing.
    let gray = Circuit::from_generator(&ipd_modgen::GrayCounter::new(4)).unwrap();
    let report = semantic_report(&gray);
    assert_eq!(report.by_rule("unreachable-state").count(), 0, "{report}");
}

// ------------------------------------------------------- redundant logic

/// Three implementations of `a & b`: the original, a duplicate, and a
/// complemented LUT (NAND) — plus one genuinely distinct gate.
fn duplicated_gates() -> Circuit {
    let mut c = Circuit::new("dup");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 4)).unwrap();
    ctx.and2(a, b, Signal::bit_of(y, 0)).unwrap();
    ctx.and2(a, b, Signal::bit_of(y, 1)).unwrap();
    // LUT2 init 0x7: NAND — the complement of bit 0.
    ctx.lut(0x7, &[a.into(), b.into()], Signal::bit_of(y, 2))
        .unwrap();
    ctx.or2(a, b, Signal::bit_of(y, 3)).unwrap();
    c
}

#[test]
fn duplicate_and_complemented_gates_are_flagged() {
    let semantic = semantic_report(&duplicated_gates());
    let diags: Vec<_> = semantic.by_rule("redundant-logic").collect();
    assert_eq!(diags.len(), 2, "{semantic}");
    let messages: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("y[1] is SAT-equivalent to net dup/y[0]")
                && !m.contains("complemented")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("y[2] is SAT-equivalent to net dup/y[0] (complemented)")),
        "{messages:?}"
    );
    for d in &diags {
        assert_eq!(d.proof, ProofTier::Proved);
    }
    // The OR gate is genuinely distinct and must not be flagged.
    assert!(!messages.iter().any(|m| m.contains("y[3]")), "{messages:?}");
}

#[test]
fn waivers_apply_to_semantic_rules() {
    let mut config = LintConfig::new();
    config.waive(
        "redundant-logic",
        "dup/*",
        "duplication is deliberate redundancy",
    );
    config.waive("unreachable-state", "*", "power-on lockout bit");
    let report = Linter::with_oracle(config, OracleOptions::default())
        .run(&duplicated_gates())
        .unwrap();
    assert_eq!(report.by_rule("redundant-logic").count(), 0);
    assert_eq!(report.waived().len(), 2, "{report}");
    for w in report.waived() {
        assert_eq!(w.proof, ProofTier::Proved, "waived diags keep their tier");
    }
}

// ---------------------------------------------------- dead logic upgrade

#[test]
fn dead_leaf_is_proved_unobservable() {
    let mut c = Circuit::new("deadp");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let dead = ctx.wire("dead", 1);
    ctx.buffer(a, y).unwrap();
    ctx.inv(a, dead).unwrap();
    let semantic = semantic_report(&c);
    let diag = semantic
        .by_rule("dead-logic")
        .next()
        .expect("dead inverter");
    assert_eq!(diag.object, "deadp/inv");
    assert_eq!(diag.proof, ProofTier::Proved);
}

// ------------------------------------------- random DAG differential sweep

/// Random loop-free gate networks: every Proved constant-logic
/// verdict must agree with both engines under random driven stimulus.
#[test]
fn random_dag_constant_verdicts_agree_with_both_engines() {
    ipd_testutil::check_n("semantic constants vs simulators", 8, |rng| {
        let mut c = Circuit::new("dag");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
        let mut nets: Vec<Signal> = vec![a.into(), b.into()];
        let gates = 4 + rng.index(10);
        for g in 0..gates {
            let out = ctx.wire(&format!("w{g}"), 1);
            let x = nets[rng.index(nets.len())].clone();
            let y = nets[rng.index(nets.len())].clone();
            match rng.index(3) {
                0 => ctx.and2(x, y, out).unwrap(),
                1 => ctx.xor2(x, y, out).unwrap(),
                _ => ctx.or2(x, y, out).unwrap(),
            };
            nets.push(out.into());
        }
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.buffer(nets.last().unwrap().clone(), y).unwrap();

        let semantic = semantic_report(&c);
        let claims: Vec<(String, Logic)> = semantic
            .by_rule("constant-logic")
            .map(|d| {
                assert_eq!(
                    d.proof,
                    ProofTier::Proved,
                    "random DAGs have no budget outs"
                );
                let msg = &d.message;
                let net = msg
                    .strip_prefix("output net ")
                    .and_then(|m| m.split(' ').next())
                    .expect("message names the net")
                    .to_owned();
                let at = msg.find("stuck at ").expect("message names the value");
                let v = match msg.as_bytes()[at + "stuck at ".len()] {
                    b'0' => Logic::Zero,
                    b'1' => Logic::One,
                    other => panic!("unexpected constant {other}"),
                };
                (net, v)
            })
            .collect();
        if claims.is_empty() {
            return;
        }
        let lanes = 4;
        let mut batch = BatchSimulator::new(&c, lanes).unwrap();
        let mut comp = CompiledSimulator::new(&c, lanes).unwrap();
        for round in 0..4u64 {
            for lane in 0..lanes {
                let v = rng.next_u64();
                batch.set_u64_lane("a", lane, v & 1).unwrap();
                batch.set_u64_lane("b", lane, (v >> 1) & 1).unwrap();
                comp.set_u64_lane("a", lane, v & 1).unwrap();
                comp.set_u64_lane("b", lane, (v >> 1) & 1).unwrap();
            }
            for (net, expect) in &claims {
                for lane in 0..lanes {
                    assert_eq!(
                        batch.peek_net_lane(net, lane).unwrap(),
                        *expect,
                        "batch disagrees on {net} round {round}"
                    );
                    assert_eq!(
                        comp.peek_net_lane(net, lane).unwrap(),
                        *expect,
                        "compiled disagrees on {net} round {round}"
                    );
                }
            }
        }
    });
}

// ------------------------------------------------------ don't-care artifact

#[test]
fn dont_care_report_is_deterministic_and_names_odc_nets() {
    // n = b | k; y = b & n. When b = 0, flipping n changes nothing:
    // n's ODC set is exactly the b=0 minterms.
    let mut c = Circuit::new("dc");
    let mut ctx = c.root_ctx();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let k = ctx.add_port(PortSpec::input("k", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let n = ctx.wire("n", 1);
    ctx.or2(b, k, n).unwrap();
    ctx.and2(b, n, y).unwrap();
    let flat = FlatNetlist::build(&c).unwrap();
    let report = extract_dont_cares(&flat, OracleOptions::default(), 0).unwrap();
    let entry = report
        .nodes
        .iter()
        .find(|e| e.net == "dc/n")
        .expect("or-gate output present");
    let odc = entry.odc.as_ref().expect("odc extracted");
    assert!(odc.complete);
    let b_idx = odc.inputs.iter().position(|i| i == "dc/b").unwrap();
    for m in 0..4u16 {
        let b_zero = m & (1 << b_idx) == 0;
        assert_eq!(
            odc.minterms.contains(&m),
            b_zero,
            "minterm {m} classification"
        );
    }
    // Deterministic serialization across fresh extractions.
    let again = extract_dont_cares(&flat, OracleOptions::default(), 0).unwrap();
    assert_eq!(report.to_json(), again.to_json());
    assert!(report.to_json().contains("\"design\": \"dc\""));
    assert!(report.skipped == 0);
    // The cap is honored and reported, never silent.
    let capped = extract_dont_cares(&flat, OracleOptions::default(), 1).unwrap();
    assert_eq!(capped.nodes.len(), 1);
    assert!(capped.skipped >= 1);
}
