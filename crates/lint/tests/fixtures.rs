//! Positive and negative fixtures for every built-in pass: each rule
//! has at least one circuit that trips it and one that stays clean.

use ipd_hdl::{Circuit, PortSpec, Primitive, Severity, Signal};
use ipd_lint::{lint, LintConfig, LintLevel, Linter};
use ipd_techlib::LogicCtx;

fn nor2_ports() -> Vec<PortSpec> {
    vec![
        PortSpec::input("i0", 1),
        PortSpec::input("i1", 1),
        PortSpec::output("o", 1),
    ]
}

/// Cross-coupled NOR SR latch: the canonical combinational loop.
fn sr_latch() -> Circuit {
    let mut c = Circuit::new("latch");
    let mut ctx = c.root_ctx();
    let s = ctx.add_port(PortSpec::input("s", 1)).unwrap();
    let r = ctx.add_port(PortSpec::input("r", 1)).unwrap();
    let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
    let nq = ctx.wire("nq", 1);
    ctx.leaf(
        Primitive::new("virtex", "nor2"),
        nor2_ports(),
        "n0",
        &[("i0", r.into()), ("i1", nq.into()), ("o", q.into())],
    )
    .unwrap();
    ctx.leaf(
        Primitive::new("virtex", "nor2"),
        nor2_ports(),
        "n1",
        &[("i0", s.into()), ("i1", q.into()), ("o", nq.into())],
    )
    .unwrap();
    c
}

/// A small clean pipeline: a -> inv -> fd -> y, plus b -> xor -> y2.
fn clean_design() -> Circuit {
    let mut c = Circuit::new("clean");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let y2 = ctx.add_port(PortSpec::output("y2", 1)).unwrap();
    let na = ctx.wire("na", 1);
    ctx.inv(a, na).unwrap();
    ctx.fd(clk, na, y).unwrap();
    ctx.xor2(a, b, y2).unwrap();
    c
}

fn rules_of(report: &ipd_lint::LintReport) -> Vec<&'static str> {
    report.diags().iter().map(|d| d.rule).collect()
}

#[test]
fn clean_design_is_clean() {
    let report = lint(&clean_design()).unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.diags().len(), 0, "{report}");
}

#[test]
fn unknown_primitive_is_an_error() {
    let mut c = Circuit::new("top");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.leaf(
        Primitive::new("virtex", "frobnicator"),
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
        "u0",
        &[("i", a.into()), ("o", y.into())],
    )
    .unwrap();
    let report = lint(&c).unwrap();
    assert!(!report.is_clean());
    let diag = report.by_rule("unknown-primitive").next().expect("diag");
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(diag.object, "top/u0");
}

#[test]
fn multiple_drivers_names_both_driver_paths() {
    let mut c = Circuit::new("top");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.buffer(a, y).unwrap();
    ctx.buffer(a, y).unwrap();
    let report = lint(&c).unwrap();
    let diag = report.by_rule("multiple-drivers").next().expect("diag");
    assert_eq!(diag.severity, Severity::Error);
    assert!(diag.message.contains(".o"), "driver pins named: {diag}");
}

#[test]
fn undriven_and_unused_nets_warn() {
    let mut c = Circuit::new("top");
    let mut ctx = c.root_ctx();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    let orphan = ctx.wire("orphan", 1);
    ctx.buffer(floating, y).unwrap();
    ctx.inv(y, orphan).unwrap(); // drives `orphan`, nobody reads it
    let report = lint(&c).unwrap();
    let rules = rules_of(&report);
    assert!(rules.contains(&"undriven-net"), "{report}");
    assert!(rules.contains(&"unused-net"), "{report}");
    // `floating-input` escalates the undriven read to an error on the
    // consuming instance.
    let diag = report.by_rule("floating-input").next().expect("diag");
    assert_eq!(diag.severity, Severity::Error);
    assert!(diag.message.contains("floating"), "{diag}");
}

#[test]
fn comb_loop_detected_with_member_paths() {
    let report = lint(&sr_latch()).unwrap();
    let diag = report.by_rule("comb-loop").next().expect("diag");
    assert_eq!(diag.severity, Severity::Error);
    assert!(
        diag.message.contains("n0") && diag.message.contains("n1"),
        "members named: {diag}"
    );
    // The clean pipeline has no loops.
    let clean = lint(&clean_design()).unwrap();
    assert_eq!(clean.by_rule("comb-loop").count(), 0);
}

/// Two clock domains with an unsynchronized crossing through an
/// inverter, and a properly synchronized crossing next to it.
fn cdc_pair(synchronized: bool) -> Circuit {
    let mut c = Circuit::new("cdc");
    let mut ctx = c.root_ctx();
    let clk_a = ctx.add_port(PortSpec::input("clk_a", 1)).unwrap();
    let clk_b = ctx.add_port(PortSpec::input("clk_b", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let qa = ctx.wire("qa", 1);
    ctx.fd(clk_a, d, qa).unwrap();
    if synchronized {
        // qa -> s1 -> s2, both in domain B: a two-flop synchronizer.
        let s1 = ctx.wire("s1", 1);
        ctx.fd(clk_b, qa, s1).unwrap();
        ctx.fd(clk_b, s1, y).unwrap();
    } else {
        // Combinational logic on the crossing wire: not a synchronizer.
        let nqa = ctx.wire("nqa", 1);
        ctx.inv(qa, nqa).unwrap();
        ctx.fd(clk_b, nqa, y).unwrap();
    }
    c
}

#[test]
fn unsynchronized_cdc_warns() {
    let report = lint(&cdc_pair(false)).unwrap();
    let diag = report.by_rule("cdc-unsync").next().expect("diag");
    assert!(
        diag.message.contains("clk_a") && diag.message.contains("clk_b"),
        "domains named: {diag}"
    );
}

#[test]
fn two_flop_synchronizer_is_exempt() {
    let report = lint(&cdc_pair(true)).unwrap();
    assert_eq!(report.by_rule("cdc-unsync").count(), 0, "{report}");
}

#[test]
fn buffered_clock_is_same_domain() {
    let mut c = Circuit::new("bufclk");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let clk_buf = ctx.wire("clk_buf", 1);
    let q0 = ctx.wire("q0", 1);
    ctx.buffer(clk, clk_buf).unwrap();
    ctx.fd(clk, d, q0).unwrap();
    ctx.fd(clk_buf, q0, y).unwrap(); // same root domain through buffer
    let report = lint(&c).unwrap();
    assert_eq!(report.by_rule("cdc-unsync").count(), 0, "{report}");
}

#[test]
fn dead_logic_flagged_outside_output_cone() {
    let mut c = Circuit::new("dead");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.inv(a, y).unwrap();
    // Chain feeding nothing observable.
    let w1 = ctx.wire("w1", 1);
    let w2 = ctx.wire("w2", 1);
    ctx.inv(a, w1).unwrap();
    ctx.inv(w1, w2).unwrap();
    let report = lint(&c).unwrap();
    let dead: Vec<_> = report.by_rule("dead-logic").collect();
    assert_eq!(dead.len(), 2, "{report}");
    // The live inverter is not flagged.
    assert!(dead.iter().all(|d| d.object != "i0"), "{report}");
    let clean = lint(&clean_design()).unwrap();
    assert_eq!(clean.by_rule("dead-logic").count(), 0);
}

#[test]
fn constant_logic_with_varying_input_warns() {
    let mut c = Circuit::new("konst");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let zero = ctx.wire("zero", 1);
    ctx.gnd(zero).unwrap();
    ctx.and2(a, zero, y).unwrap(); // y is stuck at 0 whatever `a` does
    let report = lint(&c).unwrap();
    let diag = report.by_rule("constant-logic").next().expect("diag");
    assert!(diag.message.contains("stuck at 0"), "{diag}");
    // An intentional rail tap (all-constant inputs) stays clean.
    let mut c2 = Circuit::new("rail");
    let mut ctx2 = c2.root_ctx();
    let y2 = ctx2.add_port(PortSpec::output("y", 1)).unwrap();
    ctx2.vcc(y2).unwrap();
    let report2 = lint(&c2).unwrap();
    assert_eq!(report2.by_rule("constant-logic").count(), 0, "{report2}");
}

#[test]
fn x_reachable_output_warns() {
    let mut c = Circuit::new("xprop");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let yx = ctx.add_port(PortSpec::output("yx", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    ctx.xor2(a, floating, yx).unwrap(); // X from the floating wire
    ctx.inv(a, y).unwrap(); // clean path
    let report = lint(&c).unwrap();
    let objects: Vec<_> = report
        .by_rule("x-reachable")
        .map(|d| d.object.as_str())
        .collect();
    assert_eq!(objects, vec!["yx[0]"], "{report}");
}

#[test]
fn black_box_outputs_are_x_sources() {
    let mut c = Circuit::new("bb");
    let mut ctx = c.root_ctx();
    let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.black_box(
        "secret",
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
        "u0",
        &[("i", i.into()), ("o", y.into())],
    )
    .unwrap();
    let report = lint(&c).unwrap();
    assert_eq!(report.by_rule("x-reachable").count(), 1, "{report}");
    // The black box is an observer, so nothing is dead.
    assert_eq!(report.by_rule("dead-logic").count(), 0, "{report}");
}

#[test]
fn high_fanout_warns_but_clocks_are_exempt() {
    let mut c = Circuit::new("fanout");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 4)).unwrap();
    for bit in 0..4 {
        let n = ctx.wire(&format!("n{bit}"), 1);
        ctx.inv(a, n).unwrap(); // `a` fans out to 4 inverters
        ctx.fd(clk, n, Signal::bit_of(y, bit)).unwrap(); // clk fans out to 4 FFs
    }
    let mut config = LintConfig::new();
    config.max_fanout = 2;
    let report = Linter::with_config(config).run(&c).unwrap();
    let objects: Vec<_> = report
        .by_rule("high-fanout")
        .map(|d| d.object.as_str())
        .collect();
    assert_eq!(objects, vec!["fanout/a"], "clock exempt: {report}");
    let diag = report.by_rule("high-fanout").next().unwrap();
    assert!(diag.message.contains("ns"), "delay quoted: {diag}");
}

#[test]
fn placement_overlap_beyond_slice_capacity_warns() {
    let build = |n: u32| {
        let mut c = Circuit::new("packed");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", n)).unwrap();
        for bit in 0..n {
            let g = ctx.inv(a, Signal::bit_of(y, bit)).unwrap();
            ctx.set_rloc(g, ipd_hdl::Rloc::new(0, 0));
        }
        c
    };
    // Eight leaves on one site is legitimate slice packing (2 LUTs,
    // 2 FFs, 2 MUXCYs, 2 XORCYs)...
    let report = lint(&build(8)).unwrap();
    assert_eq!(report.by_rule("placement-overlap").count(), 0, "{report}");
    // ...nine is an overlap, and the message names the crowd.
    let report = lint(&build(9)).unwrap();
    let diag = report.by_rule("placement-overlap").next().expect("diag");
    assert!(
        diag.message.contains("9 leaves") && diag.message.contains("packed/inv"),
        "{diag}"
    );
}

#[test]
fn over_wide_port_warns() {
    let mut c = Circuit::new("wide");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 8)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 8)).unwrap();
    for bit in 0..8 {
        ctx.buffer(Signal::bit_of(a, bit), Signal::bit_of(y, bit))
            .unwrap();
    }
    let mut config = LintConfig::new();
    config.max_port_width = 4;
    let report = Linter::with_config(config).run(&c).unwrap();
    assert_eq!(report.by_rule("port-width").count(), 2, "{report}");
}

#[test]
fn waivers_unblock_and_stay_auditable() {
    let mut config = LintConfig::new();
    config.waive(
        "comb-loop",
        "latch/n*",
        "cross-coupled latch is intentional",
    );
    let report = Linter::with_config(config).run(&sr_latch()).unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.by_rule("comb-loop").count(), 0);
    assert_eq!(report.waived().len(), 1);
    assert!(report.to_string().contains("intentional"));
}

#[test]
fn severity_overrides_apply() {
    let mut config = LintConfig::new();
    config.set_level("comb-loop", LintLevel::Warning);
    let report = Linter::with_config(config).run(&sr_latch()).unwrap();
    assert!(report.is_clean(), "downgraded: {report}");
    let mut config = LintConfig::new();
    config.set_level("comb-loop", LintLevel::Allow);
    let report = Linter::with_config(config).run(&sr_latch()).unwrap();
    assert_eq!(report.by_rule("comb-loop").count(), 0);
}

#[test]
fn report_serialization_is_stable() {
    let report = lint(&sr_latch()).unwrap();
    let report2 = lint(&sr_latch()).unwrap();
    assert_eq!(report.to_string(), report2.to_string());
    assert_eq!(report.to_json(), report2.to_json());
    assert!(report.to_json().contains("\"rule\": \"comb-loop\""));
}
