//! Differential validation of the static analyses against the
//! simulator.
//!
//! * X-propagation: on loop-free designs built from taint-exact
//!   primitives (inv / buf / xor / fd) the static mask must agree with
//!   `BatchSimulator` *exactly* — every lint-marked net really carries
//!   X after settling, and no lint-clean net ever does.
//! * Combinational loops: lint's Tarjan SCC detection must agree with
//!   the simulator's levelizer on both looping and randomly generated
//!   loop-free netlists.

use ipd_hdl::{Circuit, FlatNetlist, PortSpec, Primitive, Signal};
use ipd_lint::{lint, x_reachable, LintModel};
use ipd_sim::{BatchSimulator, CompiledSimulator, Simulator};
use ipd_techlib::LogicCtx;
use ipd_testutil::XorShift64;

/// Loop-free mixed design: one X-contaminated pipeline (a floating
/// wire XORed in, then registered) beside a clean one. Only inv, buf,
/// xor and fd — primitives whose X propagation is exact, so the static
/// may-analysis equals the dynamic must-behaviour.
fn xprop_fixture() -> Circuit {
    let mut c = Circuit::new("xdiff");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let yx = ctx.add_port(PortSpec::output("yx", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let floating = ctx.wire("floating", 1);
    // Tainted pipeline: (a ^ floating) -> fd -> inv -> fd -> yx.
    let w1 = ctx.wire("w1", 1);
    let q1 = ctx.wire("q1", 1);
    let w2 = ctx.wire("w2", 1);
    ctx.xor2(a, floating, w1).unwrap();
    ctx.fd(clk, w1, q1).unwrap();
    ctx.inv(q1, w2).unwrap();
    ctx.fd(clk, w2, yx).unwrap();
    // Clean pipeline: (a ^ b) -> fd -> buf -> fd -> y.
    let w3 = ctx.wire("w3", 1);
    let q3 = ctx.wire("q3", 1);
    let w4 = ctx.wire("w4", 1);
    ctx.xor2(a, b, w3).unwrap();
    ctx.fd(clk, w3, q3).unwrap();
    ctx.buffer(q3, w4).unwrap();
    ctx.fd(clk, w4, y).unwrap();
    c
}

/// Shared body of the X-propagation differential: drives the fixture
/// through the given simulator and checks every net of every lane
/// against the static mask. The closure-shaped plumbing lets the same
/// stimulus and assertions run against both engines.
macro_rules! xprop_differential {
    ($sim_ty:ident, $engine:literal) => {{
        let circuit = xprop_fixture();
        let flat = FlatNetlist::build(&circuit).unwrap();
        let model = LintModel::build(&flat);
        let mask = x_reachable(&model);

        let lanes = 8;
        let mut sim = $sim_ty::with_clock(&circuit, "clk", lanes).unwrap();
        assert!(sim.is_levelized());
        // Drive every input with known, lane-distinct values and let X
        // reach the deepest register (pipeline depth 2, run 4).
        for lane in 0..lanes {
            sim.set_u64_lane("a", lane, (lane & 1) as u64).unwrap();
            sim.set_u64_lane("b", lane, ((lane >> 1) & 1) as u64)
                .unwrap();
        }
        sim.cycle(4).unwrap();

        for (i, net) in flat.nets().iter().enumerate() {
            for lane in 0..lanes {
                let value = sim.peek_net_lane(&net.name, lane).unwrap();
                assert_eq!(
                    value.to_bool().is_none(),
                    mask[i],
                    "[{}] net {} lane {lane}: simulator says {value}, lint mask says {}",
                    $engine,
                    net.name,
                    mask[i]
                );
            }
        }
        // And the report flags exactly the contaminated output.
        let report = lint(&circuit).unwrap();
        let objects: Vec<_> = report
            .by_rule("x-reachable")
            .map(|d| d.object.as_str())
            .collect();
        assert_eq!(objects, vec!["yx[0]"]);
    }};
}

#[test]
fn xprop_mask_matches_batch_simulator_exactly() {
    xprop_differential!(BatchSimulator, "batch");
}

#[test]
fn xprop_mask_matches_compiled_simulator_exactly() {
    xprop_differential!(CompiledSimulator, "compiled");
}

fn nor2_ports() -> Vec<PortSpec> {
    vec![
        PortSpec::input("i0", 1),
        PortSpec::input("i1", 1),
        PortSpec::output("o", 1),
    ]
}

#[test]
fn comb_loop_agrees_with_levelizer_on_latch() {
    let mut c = Circuit::new("latch");
    let mut ctx = c.root_ctx();
    let s = ctx.add_port(PortSpec::input("s", 1)).unwrap();
    let r = ctx.add_port(PortSpec::input("r", 1)).unwrap();
    let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
    let nq = ctx.wire("nq", 1);
    ctx.leaf(
        Primitive::new("virtex", "nor2"),
        nor2_ports(),
        "n0",
        &[("i0", r.into()), ("i1", nq.into()), ("o", q.into())],
    )
    .unwrap();
    ctx.leaf(
        Primitive::new("virtex", "nor2"),
        nor2_ports(),
        "n1",
        &[("i0", s.into()), ("i1", q.into()), ("o", nq.into())],
    )
    .unwrap();
    let sim = Simulator::new(&c).unwrap();
    assert!(!sim.is_levelized(), "levelizer sees the loop");
    let report = lint(&c).unwrap();
    assert_eq!(report.by_rule("comb-loop").count(), 1, "{report}");
}

/// Random loop-free gate network: every gate reads only wires defined
/// before it, so the graph is a DAG by construction.
fn random_dag(rng: &mut XorShift64) -> Circuit {
    let mut c = Circuit::new("dag");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let mut nets: Vec<Signal> = vec![a.into(), b.into()];
    let gates = 3 + rng.index(12);
    for g in 0..gates {
        let out = ctx.wire(&format!("w{g}"), 1);
        let x = nets[rng.index(nets.len())].clone();
        let y = nets[rng.index(nets.len())].clone();
        match rng.index(3) {
            0 => ctx.and2(x, y, out).unwrap(),
            1 => ctx.xor2(x, y, out).unwrap(),
            _ => ctx.or2(x, y, out).unwrap(),
        };
        nets.push(out.into());
    }
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.buffer(nets.last().unwrap().clone(), y).unwrap();
    c
}

#[test]
fn comb_loop_agrees_with_levelizer_on_random_dags() {
    ipd_testutil::check_n("random dags levelize and lint loop-free", 16, |rng| {
        let c = random_dag(rng);
        let sim = Simulator::new(&c).unwrap();
        assert!(sim.is_levelized());
        let report = lint(&c).unwrap();
        assert_eq!(report.by_rule("comb-loop").count(), 0, "{report}");
    });
}
