use ipd_hdl::{Circuit, FlatNetlist};
use ipd_lint::{default_passes, LintConfig, Linter};
use ipd_modgen::KcmMultiplier;

#[test]
#[ignore]
fn per_pass_timing() {
    let full = KcmMultiplier::new(-12345, 16, 1)
        .signed(true)
        .full_product_width();
    let kcm = KcmMultiplier::new(-12345, 16, full).signed(true);
    let circuit = Circuit::from_generator(&kcm).unwrap();
    let t0 = std::time::Instant::now();
    let flat = FlatNetlist::build(&circuit).unwrap();
    println!("flatten: {:?}", t0.elapsed());

    // Model build alone: linter with zero passes.
    let empty = Linter::with_passes(LintConfig::new(), Vec::new());
    let t = std::time::Instant::now();
    for _ in 0..2000 {
        std::hint::black_box(empty.run_flat(std::hint::black_box(&flat)));
    }
    println!("model build only: {:?}/run", t.elapsed() / 2000);

    for pass in default_passes() {
        let name = pass.name();
        let linter = Linter::with_passes(LintConfig::new(), vec![pass]);
        let t = std::time::Instant::now();
        for _ in 0..2000 {
            std::hint::black_box(linter.run_flat(std::hint::black_box(&flat)));
        }
        println!("{name}: {:?}/run (incl model build)", t.elapsed() / 2000);
    }
    let linter = Linter::new();
    let t = std::time::Instant::now();
    for _ in 0..2000 {
        std::hint::black_box(linter.run_flat(std::hint::black_box(&flat)));
    }
    println!("all passes: {:?}/run", t.elapsed() / 2000);
}

#[test]
#[ignore]
fn model_component_timing() {
    use ipd_techlib::PrimKind;
    let full = KcmMultiplier::new(-12345, 16, 1)
        .signed(true)
        .full_product_width();
    let kcm = KcmMultiplier::new(-12345, 16, full).signed(true);
    let circuit = Circuit::from_generator(&kcm).unwrap();
    let flat = FlatNetlist::build(&circuit).unwrap();
    println!("nets={} leaves={}", flat.net_count(), flat.leaves().len());

    let t = std::time::Instant::now();
    for _ in 0..2000 {
        let d = flat.drivers();
        let r = flat.readers();
        std::hint::black_box((d, r));
    }
    println!("drivers+readers: {:?}/run", t.elapsed() / 2000);

    let t = std::time::Instant::now();
    for _ in 0..2000 {
        for leaf in flat.leaves() {
            if let ipd_hdl::FlatKind::Primitive(p) = &leaf.kind {
                let k = PrimKind::from_primitive(p).unwrap();
                std::hint::black_box(k);
            }
        }
    }
    println!("from_primitive: {:?}/run", t.elapsed() / 2000);

    let t = std::time::Instant::now();
    for _ in 0..2000 {
        for leaf in flat.leaves() {
            if let ipd_hdl::FlatKind::Primitive(p) = &leaf.kind {
                let k = PrimKind::from_primitive(p).unwrap();
                for spec in k.ports() {
                    let c = leaf.conn(&spec.name).unwrap();
                    std::hint::black_box(c);
                }
            }
        }
    }
    println!("from_primitive+ports+conn: {:?}/run", t.elapsed() / 2000);
}
