//! The connectivity and placement rules that started life in
//! `ipd_hdl::validate` — re-homed in the pass framework with
//! path-accurate diagnostics. `ipd_hdl::validate` remains as a
//! dependency-free compatibility wrapper; this pass is the maintained
//! implementation, and upgrades each message with the full
//! hierarchical instance paths of the drivers/readers involved.

use ipd_hdl::{NetId, Rloc, Severity};

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Single-driver, undriven/unused-net and placement-overlap checks.
pub struct SeedRulesPass;

const SEED_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "multiple-drivers",
        severity: Severity::Error,
        help: "a net is driven by more than one output (contention)",
    },
    RuleInfo {
        id: "undriven-net",
        severity: Severity::Warning,
        help: "a net is read but nothing drives it",
    },
    RuleInfo {
        id: "unused-net",
        severity: Severity::Warning,
        help: "a whole named net is driven but never read",
    },
    RuleInfo {
        id: "placement-overlap",
        severity: Severity::Warning,
        help: "more leaves share one placement site than a slice can host",
    },
];

/// How many instance paths to spell out before eliding.
const MAX_NAMED: usize = 4;

fn name_endpoints(model: &LintModel<'_>, pairs: &[(usize, usize)], primary: bool) -> String {
    let mut names: Vec<String> = pairs
        .iter()
        .take(MAX_NAMED)
        .map(|&(leaf, port)| {
            let conn = &model.flat().leaves()[leaf].conns[port];
            format!("{}.{}", model.leaf_path(leaf), conn.port)
        })
        .collect();
    if primary {
        names.push("<primary port>".to_owned());
    }
    let elided = (pairs.len() + usize::from(primary)).saturating_sub(names.len());
    if elided > 0 {
        names.push(format!("... {elided} more"));
    }
    names.join(", ")
}

impl Pass for SeedRulesPass {
    fn name(&self) -> &'static str {
        "seed-rules"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        SEED_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        let flat = model.flat();
        for (i, net) in flat.nets().iter().enumerate() {
            let id = NetId::from_index(i);
            let drive_count = model.driver_count(id);
            let read_count = model.fanout(id);
            if drive_count > 1 {
                ctx.emit(
                    "multiple-drivers",
                    Severity::Error,
                    &net.name,
                    format!(
                        "net has {drive_count} drivers: {}",
                        name_endpoints(model, model.drivers_of(id), model.is_primary_driven(id))
                    ),
                );
            }
            if drive_count == 0 && read_count > 0 {
                ctx.emit(
                    "undriven-net",
                    Severity::Warning,
                    &net.name,
                    format!(
                        "net is read but never driven; readers: {}",
                        name_endpoints(model, model.readers_of(id), model.is_primary_read(id))
                    ),
                );
            }
            if drive_count == 1 && read_count == 0 && !net.name.ends_with(']') {
                // Dangling bit nets (names end in `]`) are usually an
                // intentionally unused carry/sum bit; whole named nets
                // are not.
                ctx.emit(
                    "unused-net",
                    Severity::Warning,
                    &net.name,
                    format!(
                        "net is driven but never read; driver: {}",
                        name_endpoints(model, model.drivers_of(id), model.is_primary_driven(id))
                    ),
                );
            }
        }

        // A slice site legitimately hosts two LUTs, two flip-flops, two
        // carry muxes and two carry xors; more than eight leaves at one
        // location suggests a generator placement bug.
        const SLICE_CAPACITY: usize = 8;
        let mut placed: Vec<(Rloc, usize)> = flat
            .leaves()
            .iter()
            .enumerate()
            .filter_map(|(li, leaf)| leaf.loc.map(|loc| (loc, li)))
            .collect();
        placed.sort_unstable();
        let mut overfull: Vec<(Rloc, Vec<usize>)> = Vec::new();
        let mut i = 0;
        while i < placed.len() {
            let loc = placed[i].0;
            let j = placed[i..].partition_point(|&(l, _)| l == loc) + i;
            if j - i > SLICE_CAPACITY {
                overfull.push((loc, placed[i..j].iter().map(|&(_, l)| l).collect()));
            }
            i = j;
        }
        for (loc, leaves) in overfull {
            let named: Vec<&str> = leaves
                .iter()
                .take(MAX_NAMED)
                .map(|&l| model.leaf_path(l))
                .collect();
            ctx.emit(
                "placement-overlap",
                Severity::Warning,
                model.leaf_path(leaves[0]),
                format!(
                    "{} leaves at {loc} exceed the slice capacity of {SLICE_CAPACITY} \
                     (first {}: {})",
                    leaves.len(),
                    named.len(),
                    named.join(", ")
                ),
            );
        }
    }
}
