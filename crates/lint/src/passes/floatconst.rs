//! Floating-input and constant-logic analysis.
//!
//! `floating-input` is the error-severity cousin of the seed
//! `undriven-net` warning: it fires on the *instance* whose input pin
//! is attached to a driverless net, because an undriven pin means the
//! gate evaluates on garbage. `constant-logic` propagates the gnd/vcc
//! rails through the combinational graph with the primitive
//! evaluator's unknown-insensitivity (a LUT whose cofactors agree is
//! constant even with varying inputs) and flags gates whose output can
//! never change.

use ipd_hdl::{NetId, PortDir, Severity};
use ipd_techlib::PrimKind;

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Flags floating instance inputs and provably constant gates.
#[derive(Default)]
pub struct FloatConstPass {
    /// When set, skip the structural `constant-logic` analysis — the
    /// semantic tier re-derives it with SAT confirmation, so running
    /// both would duplicate findings.
    skip_constants: bool,
}

impl FloatConstPass {
    /// The variant run under [`crate::Linter::with_oracle`]: only the
    /// `floating-input` check, leaving `constant-logic` to the
    /// semantic pass (which confirms or retracts each claim).
    #[must_use]
    pub fn floating_only() -> Self {
        FloatConstPass {
            skip_constants: true,
        }
    }
}

const FLOATCONST_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "floating-input",
        severity: Severity::Error,
        help: "an instance input pin is attached to a net nothing drives",
    },
    RuleInfo {
        id: "constant-logic",
        severity: Severity::Warning,
        help: "a gate's output is provably stuck at a constant value",
    },
];

pub(crate) fn is_buffer(kind: PrimKind) -> bool {
    matches!(
        kind,
        PrimKind::Buf | PrimKind::Bufg | PrimKind::Ibuf | PrimKind::Obuf
    )
}

impl Pass for FloatConstPass {
    fn name(&self) -> &'static str {
        "float-const"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        FLOATCONST_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        for (li, leaf) in model.flat().leaves().iter().enumerate() {
            for conn in &leaf.conns {
                if conn.dir != PortDir::Input {
                    continue;
                }
                for (bit, &net) in conn.nets.iter().enumerate() {
                    if model.driver_count(net) == 0 {
                        ctx.emit(
                            "floating-input",
                            Severity::Error,
                            model.leaf_path(li),
                            format!(
                                "input pin {}[{bit}] floats (net {} has no driver)",
                                conn.port,
                                model.net_name(net)
                            ),
                        );
                    }
                }
            }
        }

        if self.skip_constants {
            return;
        }
        let value = model.const_values();
        for node in model.comb_nodes() {
            let Some(kind) = node.kind else { continue };
            // The rails themselves and buffer trees distributing them
            // are intentional; flag the first real gate.
            if is_buffer(kind) {
                continue;
            }
            let Some(v) = value[node.output.index()] else {
                continue;
            };
            // Direct rail taps (all inputs constant) are how gnd/vcc
            // are *meant* to be used; a gate is suspicious only when it
            // wastes varying inputs on a constant result.
            let has_varying_input = node
                .inputs
                .iter()
                .any(|n: &NetId| value[n.index()].is_none());
            if !has_varying_input {
                continue;
            }
            if model.fanout(node.output) == 0 {
                continue; // dead-logic territory
            }
            ctx.emit(
                "constant-logic",
                Severity::Warning,
                model.leaf_path(node.leaf),
                format!(
                    "output net {} is stuck at {v} despite varying inputs",
                    model.net_name(node.output)
                ),
            );
        }
    }
}
