//! X-propagation reachability.
//!
//! A *may*-analysis: which nets can ever carry an unknown value? X
//! sources are driverless nets, black-box outputs (contents unknown),
//! and combinational loops (a ring settles nowhere, so the simulator
//! reports X). Taint propagates forward through combinational nodes
//! and — across clock edges, hence the fixpoint — through sequential
//! elements; provably-constant nets block it, since a stuck-at net
//! can never go unknown. On loop-free designs built from
//! taint-exact primitives (inverters, buffers, XOR, flip-flops) the
//! analysis is *exact*, which the differential test against
//! `BatchSimulator` exploits: every lint-marked net really goes X and
//! no lint-clean net does.

use ipd_hdl::{PortDir, Severity};

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Flags primary outputs that can carry X.
pub struct XPropPass;

const XPROP_RULES: &[RuleInfo] = &[RuleInfo {
    id: "x-reachable",
    severity: Severity::Warning,
    help: "a primary output can carry an unknown (X) value",
}];

/// Per-net X-reachability mask (index = net index).
///
/// Exposed so differential tests can compare the full mask against the
/// simulator, not just the primary-output subset the pass reports.
#[must_use]
pub fn x_reachable(model: &LintModel<'_>) -> Vec<bool> {
    let flat = model.flat();
    let konst = model.const_values();
    let mut x = vec![false; flat.net_count()];

    // Sources: driverless nets (Z at simulation time) ...
    for i in 0..flat.net_count() {
        if model.driver_count(ipd_hdl::NetId::from_index(i)) == 0 && konst[i].is_none() {
            x[i] = true;
        }
    }
    // ... black-box outputs (unknowable contents) ...
    for &bb in model.black_boxes() {
        for conn in &flat.leaves()[bb].conns {
            if conn.dir != PortDir::Input {
                for &n in &conn.nets {
                    x[n.index()] = true;
                }
            }
        }
    }
    // ... and combinational loops (never settle; the levelizer rejects
    // them and the event-driven simulator reports X).
    for scc in model.loop_sccs() {
        for &node in scc {
            x[model.comb_nodes()[node].output.index()] = true;
        }
    }

    // Forward fixpoint across comb nodes (in dataflow order, so the
    // combinational part settles in one sweep) and clock edges. Taint
    // only ever turns on, so this terminates.
    loop {
        let mut changed = false;
        let taint = |out: ipd_hdl::NetId, x: &mut Vec<bool>| {
            if !x[out.index()] && konst[out.index()].is_none() {
                x[out.index()] = true;
                true
            } else {
                false
            }
        };
        for &ni in model.topo_order() {
            let node = &model.comb_nodes()[ni];
            if node.inputs.iter().any(|n| x[n.index()]) {
                changed |= taint(node.output, &mut x);
            }
        }
        for seq in model.seq() {
            let tainted_in = seq
                .data_inputs
                .iter()
                .chain(std::iter::once(&seq.clock))
                .any(|n| x[n.index()]);
            if tainted_in {
                for &out in &seq.outputs {
                    changed |= taint(out, &mut x);
                }
            }
        }
        if !changed {
            return x;
        }
    }
}

impl Pass for XPropPass {
    fn name(&self) -> &'static str {
        "x-prop"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        XPROP_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        let x = x_reachable(model);
        for port in model.flat().ports() {
            if port.dir == PortDir::Input {
                continue;
            }
            for (bit, &net) in port.nets.iter().enumerate() {
                if x[net.index()] {
                    ctx.emit(
                        "x-reachable",
                        Severity::Warning,
                        format!("{}[{bit}]", port.name),
                        format!(
                            "primary output can carry X (via net {})",
                            model.net_name(net)
                        ),
                    );
                }
            }
        }
    }
}
