//! Formal equivalence pass: checks the design under lint against a
//! golden reference netlist with the `ipd-verify` engine and reports
//! any functional divergence as an `equiv-mismatch` diagnostic — so
//! "still computes the golden function" gates delivery through the
//! same severity/waiver machinery as every structural rule.

use ipd_hdl::{FlatNetlist, Severity};
use ipd_verify::{check_equiv, EquivConfig, EquivVerdict};

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Checks the linted design for combinational-and-sequential
/// equivalence against a golden reference.
///
/// A refuted check emits one diagnostic carrying the distinguishing
/// input/state vector (already replayed through both simulation
/// engines by the verify crate). A check the engine cannot carry out
/// at all — mismatched ports, combinational loops, black boxes — also
/// emits `equiv-mismatch`: a design whose boundary differs from the
/// golden reference is certainly not a safe revision of it.
pub struct EquivPass {
    golden: FlatNetlist,
    config: EquivConfig,
}

impl EquivPass {
    /// An equivalence pass against `golden` with default checker
    /// settings.
    #[must_use]
    pub fn new(golden: FlatNetlist) -> Self {
        EquivPass {
            golden,
            config: EquivConfig::default(),
        }
    }

    /// Overrides the checker configuration (clock naming, state
    /// matching, SAT budgets).
    #[must_use]
    pub fn with_equiv_config(mut self, config: EquivConfig) -> Self {
        self.config = config;
        self
    }
}

const EQUIV_RULES: &[RuleInfo] = &[RuleInfo {
    id: "equiv-mismatch",
    severity: Severity::Error,
    help: "design is not formally equivalent to the golden reference netlist",
}];

impl Pass for EquivPass {
    fn name(&self) -> &'static str {
        "equiv"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        EQUIV_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        match check_equiv(&self.golden, model.flat(), &self.config) {
            Ok(report) => match report.verdict {
                EquivVerdict::Equivalent => {}
                EquivVerdict::NotEquivalent(cex) => {
                    let inputs: Vec<String> =
                        cex.inputs.iter().map(|(p, v)| format!("{p}={v}")).collect();
                    let state: Vec<String> = cex
                        .state
                        .iter()
                        .map(|s| format!("{}={}", s.golden_path, s.value))
                        .collect();
                    let mut detail = format!(
                        "differs from golden '{}' at {}: golden={}, revised={} under inputs [{}]",
                        self.golden.design_name(),
                        cex.function,
                        u8::from(cex.golden_value),
                        u8::from(cex.revised_value),
                        inputs.join(", "),
                    );
                    if !state.is_empty() {
                        detail.push_str(&format!(" state [{}]", state.join(", ")));
                    }
                    ctx.emit(
                        "equiv-mismatch",
                        Severity::Error,
                        cex.function.clone(),
                        detail,
                    );
                }
            },
            Err(e) => ctx.emit(
                "equiv-mismatch",
                Severity::Error,
                model.flat().design_name().to_owned(),
                format!(
                    "cannot prove equivalence to golden '{}': {e}",
                    self.golden.design_name()
                ),
            ),
        }
    }
}
