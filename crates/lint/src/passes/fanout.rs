//! Fanout and port-width limit checks, fed by the timing estimator's
//! delay model.
//!
//! High-fanout nets dominate unplaced routing delay
//! (`DelayModel::net_delay_unplaced` grows linearly in fanout), so
//! each violation quotes the modelled net delay and, when the design
//! levelizes, the estimated critical path for scale. Clock nets are
//! exempt — the architecture routes them on dedicated low-skew trees.
//! Port widths beyond 64 bits exceed the simulator's `u64` convenience
//! API and usually indicate a generator parameter mistake.

use ipd_estimate::estimate_timing_flat;
use ipd_hdl::{NetId, Severity};
use ipd_techlib::DelayModel;

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Flags over-limit fanout nets and over-wide primary ports.
pub struct FanoutPass;

const FANOUT_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "high-fanout",
        severity: Severity::Warning,
        help: "a non-clock net exceeds the configured fanout limit",
    },
    RuleInfo {
        id: "port-width",
        severity: Severity::Warning,
        help: "a primary port is wider than the configured limit",
    },
];

impl Pass for FanoutPass {
    fn name(&self) -> &'static str {
        "fanout"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        FANOUT_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        let delay = DelayModel::virtex();
        let limit = ctx.config().max_fanout;
        // Critical-path context, computed only once a violation needs
        // it (the estimate costs more than the whole scan on clean
        // designs); unavailable when the design does not levelize
        // (loops, unknown primitives) — omitted then.
        let mut critical: Option<Option<f64>> = None;

        for i in 0..model.flat().net_count() {
            let net = NetId::from_index(i);
            let fanout = model.fanout(net);
            if fanout <= limit || model.is_clock_net(net) {
                continue;
            }
            let mut message = format!(
                "fanout {fanout} exceeds limit {limit}; ~{:.2} ns modelled net delay",
                delay.net_delay_unplaced(fanout)
            );
            let cp = critical.get_or_insert_with(|| {
                estimate_timing_flat(model.flat(), &delay)
                    .ok()
                    .map(|t| t.critical_path_ns)
            });
            if let Some(cp) = *cp {
                message.push_str(&format!(" (critical path {cp:.2} ns)"));
            }
            ctx.emit(
                "high-fanout",
                Severity::Warning,
                model.net_name(net),
                message,
            );
        }

        let width_limit = ctx.config().max_port_width;
        for port in model.flat().ports() {
            let width = port.nets.len() as u32;
            if width > width_limit {
                ctx.emit(
                    "port-width",
                    Severity::Warning,
                    &port.name,
                    format!("port is {width} bits wide (limit {width_limit})"),
                );
            }
        }
    }
}
