//! Static timing pass: evaluates the design against a set of
//! [`TimingConstraints`] with the `ipd-estimate` STA engine and turns
//! slack into lint diagnostics, so timing closure rides the same
//! severity/waiver machinery as every structural rule.

use ipd_estimate::{Sta, TimingConstraints};
use ipd_hdl::Severity;
use ipd_techlib::DelayModel;

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Runs the STA engine under a constraint set and reports negative
/// setup slack as errors and unconstrained endpoints as warnings.
///
/// With an empty constraint set the pass is inert — an unconstrained
/// design is not a timing failure, it is simply not timed. A design
/// whose combinational graph is cyclic is also skipped silently:
/// [`crate::passes::CombLoopPass`] already reports the loop, and a
/// second diagnostic for the same root cause would be noise.
pub struct TimingPass {
    constraints: TimingConstraints,
    model: DelayModel,
}

impl TimingPass {
    /// A timing pass evaluating `constraints` under `model`.
    #[must_use]
    pub fn new(constraints: TimingConstraints, model: DelayModel) -> Self {
        TimingPass { constraints, model }
    }
}

const TIMING_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "setup-violation",
        severity: Severity::Error,
        help: "endpoint fails its setup constraint (negative slack)",
    },
    RuleInfo {
        id: "unconstrained-endpoint",
        severity: Severity::Warning,
        help: "timing endpoint not covered by any clock or output-delay constraint",
    },
];

impl Pass for TimingPass {
    fn name(&self) -> &'static str {
        "timing"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        TIMING_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        if self.constraints.is_empty() {
            return;
        }
        let Ok(mut sta) = Sta::build(model.flat(), &self.model) else {
            return; // comb loop: CombLoopPass owns that diagnostic
        };
        let report = sta.analyze(&self.constraints);
        for ep in &report.endpoints {
            if ep.slack_ns < 0.0 {
                ctx.emit(
                    "setup-violation",
                    Severity::Error,
                    ep.endpoint.clone(),
                    format!(
                        "setup slack {:.3} ns against clock {} (arrival {:.3} ns, required {:.3} ns, from {})",
                        ep.slack_ns, ep.clock, ep.arrival_ns, ep.required_ns, ep.startpoint
                    ),
                );
            }
        }
        for ep in &report.unconstrained {
            ctx.emit(
                "unconstrained-endpoint",
                Severity::Warning,
                ep.clone(),
                "endpoint is not covered by any constraint; its paths are untimed",
            );
        }
    }
}
