//! The semantic lint tier: structural findings upgraded by SAT.
//!
//! Structural passes reason about graph shape; this pass re-derives
//! their claims and asks an `ipd-verify` [`Oracle`] whether each one
//! *holds over every input and reachable-state assignment*:
//!
//! * `dead-logic` — a structurally dead leaf is upgraded to `Proved`
//!   when flipping each of its outputs provably changes no primary
//!   output and no next-state function.
//! * `constant-logic` — each structural stuck-at claim is confirmed
//!   (`Proved`), retracted (the solver found a toggling assignment),
//!   or kept at `BudgetExhausted`; random-signature mining then finds
//!   *semantically* constant nets structure alone misses (a mux whose
//!   arms agree, cancelling XOR chains).
//! * `x-reachable` — each structurally X-tainted primary output is
//!   re-judged against the dual-rail model: proved-never-X findings
//!   are dropped, refuted ones ship a simulator-replayed witness.
//! * `unreachable-state` (new) — bounded reachability across the
//!   register cut; a state bit stuck at its power-on value across the
//!   entire reachable set means half its state space is dead.
//! * `redundant-logic` (new) — signature-bucketed SAT equivalence
//!   finds gates duplicating an existing net (possibly complemented),
//!   and observability don't-care analysis finds gates replaceable by
//!   a constant.
//!
//! Every verdict is three-valued; the conflict budget makes `Unknown`
//! (never a wrong answer) the worst case, and every refutation has
//! been replayed through both simulation engines before it reaches
//! the report. When the design refuses to lower (combinational
//! loops, black boxes, undriven cones), the pass degrades to the
//! structural findings at tier `Structural` — semantic lint never
//! reports *less* than structural lint.

use std::collections::BTreeMap;

use ipd_hdl::{Logic, NetId, PortDir, Severity};
use ipd_techlib::PrimKind;
use ipd_verify::{Oracle, OracleOptions, Verdict};

use super::dead::live_leaves;
use super::floatconst::is_buffer;
use super::xprop::x_reachable;
use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};
use crate::report::ProofTier;

/// Upgrades structural findings with SAT proofs and adds the
/// reachability and redundancy rule families.
pub struct SemanticPass {
    opts: OracleOptions,
    /// Cap on `prove_unobservable` queries (each may lower a flipped
    /// design copy); dead leaves beyond it stay `Structural`.
    unobservable_cap: usize,
    /// Cap on pairwise `prove_equal` queries.
    equal_cap: usize,
    /// Cap on ODC extractions (each is up to 16 SAT calls).
    odc_cap: usize,
}

const SEMANTIC_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "unreachable-state",
        severity: Severity::Warning,
        help: "a register bit is stuck at its power-on value across every reachable state",
    },
    RuleInfo {
        id: "redundant-logic",
        severity: Severity::Warning,
        help: "a gate is SAT-equivalent to an existing net, or constant under observability don't-cares",
    },
];

const DEAD_MSG: &str = "leaf is outside the cone of influence of every primary output";

impl SemanticPass {
    /// A semantic pass querying an [`Oracle`] built with `opts`.
    #[must_use]
    pub fn new(opts: OracleOptions) -> Self {
        SemanticPass {
            opts,
            unobservable_cap: 32,
            equal_cap: 64,
            odc_cap: 24,
        }
    }
}

/// One structural `constant-logic` claim, re-derived exactly as
/// [`super::FloatConstPass`] derives it (same skip conditions, so the
/// semantic tier confirms or retracts precisely what the structural
/// tier would have reported).
struct ConstClaim {
    leaf: usize,
    net: NetId,
    value: Logic,
}

fn structural_const_claims(model: &LintModel<'_>) -> Vec<ConstClaim> {
    let value = model.const_values();
    let mut claims = Vec::new();
    for node in model.comb_nodes() {
        let Some(kind) = node.kind else { continue };
        if is_buffer(kind) {
            continue;
        }
        let Some(v) = value[node.output.index()] else {
            continue;
        };
        let has_varying_input = node.inputs.iter().any(|n| value[n.index()].is_none());
        if !has_varying_input {
            continue;
        }
        if model.fanout(node.output) == 0 {
            continue;
        }
        claims.push(ConstClaim {
            leaf: node.leaf,
            net: node.output,
            value: v,
        });
    }
    claims
}

fn const_message(model: &LintModel<'_>, net: NetId, v: Logic) -> String {
    format!(
        "output net {} is stuck at {v} despite varying inputs",
        model.net_name(net)
    )
}

/// The structural `dead-logic`/`constant-logic` findings at tier
/// `Structural` — the degradation path when the design has no
/// two-valued model (loops, black boxes, undriven cones).
fn structural_dead_const(model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
    let live = live_leaves(model);
    for (li, leaf) in model.flat().leaves().iter().enumerate() {
        if !live[li] {
            ctx.emit(
                "dead-logic",
                Severity::Warning,
                &leaf.path,
                DEAD_MSG.to_owned(),
            );
        }
    }
    for claim in structural_const_claims(model) {
        ctx.emit(
            "constant-logic",
            Severity::Warning,
            model.leaf_path(claim.leaf),
            const_message(model, claim.net, claim.value),
        );
    }
}

/// The structural `x-reachable` findings at tier `Structural` — used
/// only when even the oracle's graph refuses to build.
fn structural_x(model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
    let x = x_reachable(model);
    for port in model.flat().ports() {
        if port.dir == PortDir::Input {
            continue;
        }
        for (bit, &net) in port.nets.iter().enumerate() {
            if x[net.index()] {
                ctx.emit(
                    "x-reachable",
                    Severity::Warning,
                    format!("{}[{bit}]", port.name),
                    format!(
                        "primary output can carry X (via net {})",
                        model.net_name(net)
                    ),
                );
            }
        }
    }
}

impl Pass for SemanticPass {
    fn name(&self) -> &'static str {
        "semantic"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        SEMANTIC_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        let mut oracle = match Oracle::new(model.flat(), self.opts.clone()) {
            Ok(o) => o,
            Err(_) => {
                structural_dead_const(model, ctx);
                structural_x(model, ctx);
                return;
            }
        };
        if oracle.has_model() {
            let live = live_leaves(model);
            self.dead_logic(model, &mut oracle, &live, ctx);
            let claimed = self.constant_logic(model, &mut oracle, ctx);
            self.unreachable_state(&mut oracle, ctx);
            self.redundant_logic(model, &mut oracle, &live, &claimed, ctx);
        } else {
            // No two-valued model (undriven cones, loops): the proof
            // families above degrade to structural claims, but the
            // dual-rail X analysis below still works — undriven nets
            // are exactly what it models.
            structural_dead_const(model, ctx);
        }
        self.x_reach(model, &mut oracle, ctx);
    }
}

impl SemanticPass {
    /// Structurally dead leaves, upgraded to `Proved` when every
    /// output net of the leaf is provably unobservable.
    fn dead_logic(
        &self,
        model: &LintModel<'_>,
        oracle: &mut Oracle<'_>,
        live: &[bool],
        ctx: &mut PassCtx<'_>,
    ) {
        let mut budget = self.unobservable_cap;
        for (li, leaf) in model.flat().leaves().iter().enumerate() {
            if live[li] {
                continue;
            }
            let outs: Vec<NetId> = leaf
                .conns
                .iter()
                .filter(|c| c.dir != PortDir::Input)
                .flat_map(|c| c.nets.iter().copied())
                .collect();
            let mut tier = ProofTier::Structural;
            if budget >= outs.len() {
                budget -= outs.len();
                let all_proved = outs
                    .iter()
                    .all(|&n| matches!(oracle.prove_unobservable(n), Ok(v) if v.is_proved()));
                if all_proved {
                    tier = ProofTier::Proved;
                }
            }
            ctx.emit_proof(
                "dead-logic",
                Severity::Warning,
                &leaf.path,
                DEAD_MSG.to_owned(),
                tier,
            );
        }
    }

    /// Confirms/retracts the structural stuck-at claims, then mines
    /// semantically constant nets via random signatures. Returns the
    /// per-net mask of emitted constant findings (so redundancy
    /// analysis skips them).
    fn constant_logic(
        &self,
        model: &LintModel<'_>,
        oracle: &mut Oracle<'_>,
        ctx: &mut PassCtx<'_>,
    ) -> Vec<bool> {
        let mut claimed = vec![false; model.flat().net_count()];
        for claim in structural_const_claims(model) {
            claimed[claim.net.index()] = true;
            let message = const_message(model, claim.net, claim.value);
            let path = model.leaf_path(claim.leaf).to_owned();
            let Some(v) = claim.value.to_bool() else {
                ctx.emit_proof(
                    "constant-logic",
                    Severity::Warning,
                    path,
                    message,
                    ProofTier::Structural,
                );
                continue;
            };
            match oracle.prove_constant(claim.net, v) {
                Ok(Verdict::Proved) => {
                    ctx.emit_proof(
                        "constant-logic",
                        Severity::Warning,
                        path,
                        message,
                        ProofTier::Proved,
                    );
                }
                // The solver found a toggling assignment: the
                // structural claim was a false positive. Retract it.
                Ok(Verdict::Refuted(_)) => {}
                Ok(Verdict::Unknown { .. }) => {
                    ctx.emit_proof(
                        "constant-logic",
                        Severity::Warning,
                        path,
                        message,
                        ProofTier::BudgetExhausted,
                    );
                }
                Err(_) => {
                    ctx.emit_proof(
                        "constant-logic",
                        Severity::Warning,
                        path,
                        message,
                        ProofTier::Structural,
                    );
                }
            }
        }

        // Signature mining: a net whose 512-pattern random signature
        // never toggles is a constant *candidate*; only a SAT proof
        // promotes it to a finding.
        let konst = model.const_values();
        let sigs = oracle.net_signatures().to_vec();
        for node in model.comb_nodes() {
            let Some(kind) = node.kind else { continue };
            if is_buffer(kind)
                || claimed[node.output.index()]
                || model.fanout(node.output) == 0
                || konst[node.output.index()].is_some()
            {
                continue;
            }
            // Direct rail taps are how constants are meant to be used.
            if node.inputs.iter().all(|n| konst[n.index()].is_some()) {
                continue;
            }
            let Some(sig) = sigs.get(node.output.index()).copied().flatten() else {
                continue;
            };
            let guess = if sig.iter().all(|&w| w == 0) {
                false
            } else if sig.iter().all(|&w| w == u64::MAX) {
                true
            } else {
                continue;
            };
            if let Ok(Verdict::Proved) = oracle.prove_constant(node.output, guess) {
                claimed[node.output.index()] = true;
                ctx.emit_proof(
                    "constant-logic",
                    Severity::Warning,
                    model.leaf_path(node.leaf),
                    format!(
                        "output net {} is semantically stuck at {} (structure varies, function does not)",
                        model.net_name(node.output),
                        Logic::from_bool(guess)
                    ),
                    ProofTier::Proved,
                );
            }
        }
        claimed
    }

    /// Re-judges each structurally X-tainted primary output against
    /// the dual-rail model: proved-never-X findings are dropped.
    fn x_reach(&self, model: &LintModel<'_>, oracle: &mut Oracle<'_>, ctx: &mut PassCtx<'_>) {
        let x = x_reachable(model);
        for port in model.flat().ports() {
            if port.dir == PortDir::Input {
                continue;
            }
            for (bit, &net) in port.nets.iter().enumerate() {
                if !x[net.index()] {
                    continue;
                }
                let tier = match oracle.prove_never_x(net) {
                    // Structural taint was pessimistic: the output can
                    // never actually carry X. Drop the finding.
                    Ok(Verdict::Proved) => continue,
                    Ok(Verdict::Refuted(_)) => ProofTier::RefutedWithWitness,
                    // `conflicts == 0` means the dual-rail model never
                    // built, not that a budget ran out.
                    Ok(Verdict::Unknown { conflicts: 0 }) => ProofTier::Structural,
                    Ok(Verdict::Unknown { .. }) => ProofTier::BudgetExhausted,
                    Err(_) => ProofTier::Structural,
                };
                ctx.emit_proof(
                    "x-reachable",
                    Severity::Warning,
                    format!("{}[{bit}]", port.name),
                    format!(
                        "primary output can carry X (via net {})",
                        model.net_name(net)
                    ),
                    tier,
                );
            }
        }
    }

    /// Bounded reachability across the register cut: report bits that
    /// never leave their power-on value. Only *complete* enumerations
    /// may produce findings.
    fn unreachable_state(&self, oracle: &mut Oracle<'_>, ctx: &mut PassCtx<'_>) {
        let Ok(Some(reach)) = oracle.reachable_states() else {
            return;
        };
        if !reach.complete {
            return;
        }
        let n = reach.states.len();
        for (path, bit, v) in reach.stuck_bits() {
            ctx.emit_proof(
                "unreachable-state",
                Severity::Warning,
                path,
                format!(
                    "state bit [{bit}] is stuck at {} across all {n} reachable state(s)",
                    u8::from(v)
                ),
                ProofTier::Proved,
            );
        }
    }

    /// Redundancy: signature-bucketed SAT equivalence between comb
    /// outputs, plus full-ODC nets replaceable by a constant.
    fn redundant_logic(
        &self,
        model: &LintModel<'_>,
        oracle: &mut Oracle<'_>,
        live: &[bool],
        claimed: &[bool],
        ctx: &mut PassCtx<'_>,
    ) {
        let konst = model.const_values();
        let sigs = oracle.net_signatures().to_vec();
        // Dedicated carry-fabric primitives (MUXCY/XORCY/MULT_AND) are
        // never redundancy candidates: they cost no LUT, so proving
        // one equivalent to an existing net recovers nothing.
        let eligible = |node: &crate::model::CombNode| {
            node.kind.is_some_and(|k| {
                !is_buffer(k) && !matches!(k, PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd)
            }) && model.fanout(node.output) > 0
                && !claimed[node.output.index()]
                && konst[node.output.index()].is_none()
        };
        // Nets read by something other than a carry primitive. A LUT
        // whose only consumers are MUXCY/XORCY pins is the
        // architecturally required in-slice function generator for
        // that chain position — equivalence to another net is true
        // but unactionable, so such nodes are exempt.
        let mut non_carry_read = vec![false; model.flat().net_count()];
        for node in model.comb_nodes() {
            if matches!(node.kind, Some(PrimKind::Muxcy | PrimKind::Xorcy)) {
                continue;
            }
            for &inp in node.inputs.iter() {
                non_carry_read[inp.index()] = true;
            }
        }
        for seq in model.seq() {
            for &inp in &seq.data_inputs {
                non_carry_read[inp.index()] = true;
            }
        }

        // Phase-normalized signature buckets, filled in topo order so
        // the earliest producer of a function is the keeper.
        let mut buckets: BTreeMap<[u64; 8], Vec<(NetId, bool)>> = BTreeMap::new();
        for &ni in model.topo_order() {
            let node = &model.comb_nodes()[ni];
            if !eligible(node) {
                continue;
            }
            if !non_carry_read[node.output.index()] && !model.is_primary_read(node.output) {
                continue; // feeds only carry-chain pins: required in-slice
            }
            let Some(sig) = sigs.get(node.output.index()).copied().flatten() else {
                continue;
            };
            if sig.iter().all(|&w| w == 0) || sig.iter().all(|&w| w == u64::MAX) {
                continue; // constant candidates, handled above
            }
            let phase = sig[0] & 1 == 1;
            let mut norm = sig;
            if phase {
                for w in &mut norm {
                    *w = !*w;
                }
            }
            buckets.entry(norm).or_default().push((node.output, phase));
        }

        let mut redundant = vec![false; model.flat().net_count()];
        let mut budget = self.equal_cap;
        for group in buckets.values() {
            let Some(&(keeper, keeper_phase)) = group.first() else {
                continue;
            };
            for &(net, phase) in &group[1..] {
                let complement = phase != keeper_phase;
                // An inverter that complements an existing net is the
                // idiomatic way to complement, not a redundancy.
                if complement
                    && model
                        .producer(net)
                        .is_some_and(|n| n.kind == Some(PrimKind::Inv))
                {
                    continue;
                }
                if budget == 0 {
                    return;
                }
                budget -= 1;
                if let Ok(Verdict::Proved) = oracle.prove_equal(net, keeper, complement) {
                    redundant[net.index()] = true;
                    let leaf = model
                        .producer(net)
                        .expect("bucketed nets are comb outputs")
                        .leaf;
                    ctx.emit_proof(
                        "redundant-logic",
                        Severity::Warning,
                        model.leaf_path(leaf),
                        format!(
                            "output net {} is SAT-equivalent to net {}{}",
                            model.net_name(net),
                            model.net_name(keeper),
                            if complement { " (complemented)" } else { "" }
                        ),
                        ProofTier::Proved,
                    );
                }
            }
        }

        // Full-ODC nets: every input minterm of the driving node is an
        // observability don't-care — equivalently, flipping the net
        // changes no output or next-state function — so the gate can
        // be replaced by a constant. One unobservability proof answers
        // the whole minterm enumeration at once (`Oracle::odc` stays
        // the cube-level view for the don't-care export). Dead leaves
        // are excluded (dead-logic owns them).
        let mut odc_budget = self.odc_cap;
        for &ni in model.topo_order() {
            let node = &model.comb_nodes()[ni];
            if !eligible(node)
                || redundant[node.output.index()]
                || !live[node.leaf]
                || model.is_primary_read(node.output)
                || node.inputs.is_empty()
            {
                continue;
            }
            if odc_budget == 0 {
                return;
            }
            odc_budget -= 1;
            if matches!(oracle.prove_unobservable(node.output), Ok(v) if v.is_proved()) {
                ctx.emit_proof(
                    "redundant-logic",
                    Severity::Warning,
                    model.leaf_path(node.leaf),
                    format!(
                        "output net {} is replaceable by a constant under observability don't-cares",
                        model.net_name(node.output)
                    ),
                    ProofTier::Proved,
                );
            }
        }
    }
}
