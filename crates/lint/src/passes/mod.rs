//! The built-in analysis passes.
//!
//! Each pass is a pure function over the shared [`crate::LintModel`];
//! see `DESIGN.md` for the rule catalog. Pass order is fixed by
//! [`crate::default_passes`], but passes are independent — none reads
//! another's diagnostics.

mod cdc;
mod comb_loop;
mod dead;
mod equiv;
mod fanout;
pub(crate) mod floatconst;
mod seed;
mod semantic;
mod timing;
mod xprop;

pub use cdc::CdcPass;
pub use comb_loop::CombLoopPass;
pub use dead::DeadLogicPass;
pub use equiv::EquivPass;
pub use fanout::FanoutPass;
pub use floatconst::FloatConstPass;
pub use seed::SeedRulesPass;
pub use semantic::SemanticPass;
pub use timing::TimingPass;
pub use xprop::{x_reachable, XPropPass};

use ipd_hdl::Severity;

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Reports leaves whose primitive reference could not be interpreted
/// against the technology library. Every other pass silently excludes
/// such leaves from its graphs, so this pass makes the blind spot
/// visible.
pub struct ModelPass;

const MODEL_RULES: &[RuleInfo] = &[RuleInfo {
    id: "unknown-primitive",
    severity: Severity::Error,
    help: "leaf references a primitive the technology library cannot interpret",
}];

impl Pass for ModelPass {
    fn name(&self) -> &'static str {
        "model"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        MODEL_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        for (leaf, error) in model.unknown_primitives() {
            ctx.emit(
                "unknown-primitive",
                Severity::Error,
                model.leaf_path(*leaf),
                format!("unresolvable primitive: {error}"),
            );
        }
    }
}
