//! Clock-domain-crossing detection.
//!
//! Clock domains are the canonical clock-root nets of every sequential
//! element ([`LintModel::clock_root`] follows buffer chains). For each
//! sequential element, the pass walks the combinational cone behind
//! its data-side inputs; any source register clocked from a different
//! domain is a crossing. A crossing is tolerated only when it enters a
//! recognizable two-flop synchronizer: the destination flop samples
//! the source register output *directly* (no combinational logic on
//! the crossing wire) and its own output feeds another flop in the
//! same destination domain.

use std::collections::HashSet;

use ipd_hdl::{NetId, Severity};

use crate::model::{LintModel, SeqElem};
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Flags unsynchronized clock-domain crossings.
pub struct CdcPass;

const CDC_RULES: &[RuleInfo] = &[RuleInfo {
    id: "cdc-unsync",
    severity: Severity::Warning,
    help: "data crosses clock domains without a two-flop synchronizer",
}];

/// Registers in the combinational fan-in of `nets`, found by walking
/// producer nodes backwards. Returns sorted indices into `model.seq()`.
fn source_registers(model: &LintModel<'_>, nets: &[NetId]) -> Vec<usize> {
    let mut sources = Vec::new();
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut work: Vec<NetId> = nets.to_vec();
    while let Some(n) = work.pop() {
        if !seen.insert(n) {
            continue;
        }
        if let Some(si) = model.seq_index_of_output(n) {
            sources.push(si);
            continue; // the register is a timing endpoint; stop here
        }
        if let Some(node) = model.producer(n) {
            work.extend(node.inputs.iter().copied());
        }
    }
    sources.sort_unstable();
    sources.dedup();
    sources
}

/// `true` when `dest` is the first stage of a two-flop synchronizer
/// sampling `source`: the crossing wire is register-to-register with
/// no logic, and `dest.q` directly feeds another flop in `dest`'s
/// domain.
fn is_synchronizer(model: &LintModel<'_>, source: &SeqElem, dest: &SeqElem) -> bool {
    let Some(d) = dest.d else { return false };
    if !source.outputs.contains(&d) {
        return false; // combinational logic on the crossing wire
    }
    dest.outputs.iter().any(|&q| {
        model
            .seq()
            .iter()
            .any(|s2| s2.d == Some(q) && s2.domain == dest.domain && s2.leaf != dest.leaf)
    })
}

impl Pass for CdcPass {
    fn name(&self) -> &'static str {
        "cdc"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        CDC_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        for dest in model.seq() {
            for si in source_registers(model, &dest.data_inputs) {
                let source = &model.seq()[si];
                if source.domain == dest.domain {
                    continue;
                }
                if is_synchronizer(model, source, dest) {
                    continue;
                }
                ctx.emit(
                    "cdc-unsync",
                    Severity::Warning,
                    model.leaf_path(dest.leaf),
                    format!(
                        "samples {} (domain {}) from domain {} without a synchronizer",
                        model.leaf_path(source.leaf),
                        model.net_name(source.domain),
                        model.net_name(dest.domain),
                    ),
                );
            }
        }
    }
}
