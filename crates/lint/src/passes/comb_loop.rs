//! Combinational-loop detection.
//!
//! The model already computes the strongly connected components of the
//! combinational graph (Tarjan); this pass turns each looping
//! component into one diagnostic naming the member instances. The
//! simulator's levelizer rejects the same designs
//! ([`ipd-sim`]'s `SimError::CombinationalLoop`), which the
//! differential tests cross-check.

use ipd_hdl::Severity;

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Flags strongly connected combinational components.
pub struct CombLoopPass;

const LOOP_RULES: &[RuleInfo] = &[RuleInfo {
    id: "comb-loop",
    severity: Severity::Error,
    help: "combinational logic feeds back on itself without a register",
}];

const MAX_NAMED: usize = 8;

impl Pass for CombLoopPass {
    fn name(&self) -> &'static str {
        "comb-loop"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        LOOP_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        for scc in model.loop_sccs() {
            let nodes = model.comb_nodes();
            let mut members: Vec<&str> = scc
                .iter()
                .take(MAX_NAMED)
                .map(|&n| model.leaf_path(nodes[n].leaf))
                .collect();
            members.sort_unstable();
            let elided = scc.len().saturating_sub(members.len());
            let mut message = format!(
                "combinational loop through {} instance(s): {}",
                scc.len(),
                members.join(", ")
            );
            if elided > 0 {
                message.push_str(&format!(", ... {elided} more"));
            }
            ctx.emit(
                "comb-loop",
                Severity::Error,
                model.leaf_path(nodes[scc[0]].leaf),
                message,
            );
        }
    }
}
