//! Dead-logic / cone-of-influence analysis.
//!
//! A leaf is *live* when some path leads from one of its outputs to a
//! primary output or inout, or into a black box (whose internals are
//! invisible, so its inputs must be assumed observable). Liveness is
//! computed backwards from those sinks; everything the sweep never
//! reaches is dead — it consumes area and power but cannot influence
//! any observable signal. Clock and control pins count as uses, so a
//! register whose output is consumed keeps its whole clock tree alive.

use ipd_hdl::{PortDir, Severity};

use crate::model::LintModel;
use crate::pass::{Pass, PassCtx, RuleInfo};

/// Flags leaves outside the cone of influence of every primary output.
pub struct DeadLogicPass;

const DEAD_RULES: &[RuleInfo] = &[RuleInfo {
    id: "dead-logic",
    severity: Severity::Warning,
    help: "leaf cannot influence any primary output or black box",
}];

/// Live-leaf mask, computed backwards from primary outputs and black
/// boxes. Public so tests can assert the cone directly.
#[must_use]
pub(crate) fn live_leaves(model: &LintModel<'_>) -> Vec<bool> {
    let flat = model.flat();
    let leaf_count = flat.leaves().len();
    let mut live_leaf = vec![false; leaf_count];
    let mut live_net = vec![false; flat.net_count()];
    let mut work: Vec<usize> = Vec::new();

    let mark_net = |net: usize, live_net: &mut Vec<bool>, work: &mut Vec<usize>| {
        if !live_net[net] {
            live_net[net] = true;
            work.push(net);
        }
    };

    for port in flat.ports() {
        if matches!(port.dir, PortDir::Output | PortDir::Inout) {
            for &n in &port.nets {
                mark_net(n.index(), &mut live_net, &mut work);
            }
        }
    }
    // Black boxes are opaque observers: anything reaching one is live.
    for &bb in model.black_boxes() {
        live_leaf[bb] = true;
        for conn in &flat.leaves()[bb].conns {
            if conn.dir == PortDir::Input {
                for &n in &conn.nets {
                    mark_net(n.index(), &mut live_net, &mut work);
                }
            }
        }
    }

    while let Some(net) = work.pop() {
        for &(leaf, _port) in model.drivers_of(ipd_hdl::NetId::from_index(net)) {
            if live_leaf[leaf] {
                continue;
            }
            live_leaf[leaf] = true;
            for conn in &flat.leaves()[leaf].conns {
                if conn.dir == PortDir::Input {
                    for &n in &conn.nets {
                        mark_net(n.index(), &mut live_net, &mut work);
                    }
                }
            }
        }
    }
    live_leaf
}

impl Pass for DeadLogicPass {
    fn name(&self) -> &'static str {
        "dead-logic"
    }

    fn rules(&self) -> &'static [RuleInfo] {
        DEAD_RULES
    }

    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>) {
        let live = live_leaves(model);
        for (li, leaf) in model.flat().leaves().iter().enumerate() {
            if !live[li] {
                ctx.emit(
                    "dead-logic",
                    Severity::Warning,
                    &leaf.path,
                    "leaf is outside the cone of influence of every primary output".to_owned(),
                );
            }
        }
    }
}
