//! The shared analysis model every lint pass runs against.
//!
//! A [`LintModel`] is built once per lint run from a [`FlatNetlist`]:
//! resolved primitive kinds, driver/reader tables, the combinational
//! edge graph (including the asynchronous read paths of SRL16/RAM16
//! memories), sequential elements with their clock nets, constant
//! drivers, and the strongly connected components of the combinational
//! graph. Passes are pure functions over this model, so adding a rule
//! never re-derives connectivity.

use ipd_hdl::{FlatKind, FlatNetlist, Logic, NetId, PortDir};
use ipd_techlib::{FfControl, PrimClass, PrimKind};

/// Compressed adjacency: per-net `(leaf, port)` endpoint lists stored
/// as one flat array plus offsets, so building the model costs two
/// passes over the connections and zero per-net allocations.
#[derive(Debug, Default)]
struct NetEndpoints {
    offsets: Vec<u32>,
    pairs: Vec<(usize, usize)>,
}

impl NetEndpoints {
    fn of(&self, net: NetId) -> &[(usize, usize)] {
        let i = net.index();
        &self.pairs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Builds driver and reader endpoint tables in one sweep.
fn endpoint_tables(flat: &FlatNetlist) -> (NetEndpoints, NetEndpoints) {
    let net_count = flat.net_count();
    let mut drv_counts = vec![0u32; net_count + 1];
    let mut rdr_counts = vec![0u32; net_count + 1];
    for leaf in flat.leaves() {
        for conn in &leaf.conns {
            for &net in &conn.nets {
                if conn.dir != PortDir::Input {
                    drv_counts[net.index() + 1] += 1;
                }
                if conn.dir != PortDir::Output {
                    rdr_counts[net.index() + 1] += 1;
                }
            }
        }
    }
    for i in 0..net_count {
        drv_counts[i + 1] += drv_counts[i];
        rdr_counts[i + 1] += rdr_counts[i];
    }
    let mut drivers = NetEndpoints {
        pairs: vec![(0, 0); drv_counts[net_count] as usize],
        offsets: drv_counts,
    };
    let mut readers = NetEndpoints {
        pairs: vec![(0, 0); rdr_counts[net_count] as usize],
        offsets: rdr_counts,
    };
    let mut drv_cursor = drivers.offsets.clone();
    let mut rdr_cursor = readers.offsets.clone();
    for (li, leaf) in flat.leaves().iter().enumerate() {
        for (pi, conn) in leaf.conns.iter().enumerate() {
            for &net in &conn.nets {
                if conn.dir != PortDir::Input {
                    let at = &mut drv_cursor[net.index()];
                    drivers.pairs[*at as usize] = (li, pi);
                    *at += 1;
                }
                if conn.dir != PortDir::Output {
                    let at = &mut rdr_cursor[net.index()];
                    readers.pairs[*at as usize] = (li, pi);
                    *at += 1;
                }
            }
        }
    }
    (drivers, readers)
}

/// Inline input-net list. Every combinational evaluation node has at
/// most four input bits (a LUT4 or a 16×1 memory address), so input
/// lists live inside the node — no per-node heap allocation. Derefs to
/// `[NetId]`, so it reads like a slice.
#[derive(Debug, Clone)]
pub struct InputNets {
    buf: [NetId; 4],
    len: u8,
}

impl InputNets {
    fn new() -> Self {
        InputNets {
            buf: [NetId::from_index(0); 4],
            len: 0,
        }
    }

    fn push(&mut self, net: NetId) {
        self.buf[usize::from(self.len)] = net;
        self.len += 1;
    }
}

impl std::ops::Deref for InputNets {
    type Target = [NetId];

    fn deref(&self) -> &[NetId] {
        &self.buf[..usize::from(self.len)]
    }
}

/// One combinational evaluation node: a comb primitive, a ROM read, or
/// the asynchronous address→output read path of an SRL16/RAM16.
#[derive(Debug, Clone)]
pub struct CombNode {
    /// Index of the originating leaf in [`FlatNetlist::leaves`].
    pub leaf: usize,
    /// The primitive, when the node is a plain combinational gate.
    /// `None` for SRL/RAM read paths (output depends on hidden state).
    pub kind: Option<PrimKind>,
    /// Input nets in primitive port order.
    pub inputs: InputNets,
    /// The driven net.
    pub output: NetId,
}

/// A sequential element (FF, SRL16 or RAM16) with its resolved nets.
#[derive(Debug, Clone)]
pub struct SeqElem {
    /// Index of the leaf in [`FlatNetlist::leaves`].
    pub leaf: usize,
    /// The net connected to the clock pin.
    pub clock: NetId,
    /// [`LintModel::clock_root`] of `clock` — the canonical domain net.
    pub domain: NetId,
    /// Output nets (`q` / `o`).
    pub outputs: Vec<NetId>,
    /// Data-side input nets: `d`, plus `ce`/`clr`/`r`/`we`/`a` bits.
    pub data_inputs: Vec<NetId>,
    /// The plain `d` input net (used for synchronizer recognition).
    pub d: Option<NetId>,
}

/// The prepared analysis model.
#[derive(Debug)]
pub struct LintModel<'a> {
    flat: &'a FlatNetlist,
    kinds: Vec<Option<PrimKind>>,
    /// `(leaf index, parse error)` for unresolvable primitives.
    unknown: Vec<(usize, String)>,
    drivers: NetEndpoints,
    readers: NetEndpoints,
    primary_driven: Vec<bool>,
    primary_read: Vec<bool>,
    comb_nodes: Vec<CombNode>,
    /// Net → index of the comb node driving it, if any.
    producer: Vec<Option<usize>>,
    const_drives: Vec<(NetId, Logic)>,
    seq: Vec<SeqElem>,
    /// Net → index into `seq` of the element driving it.
    seq_of_output: Vec<Option<usize>>,
    black_boxes: Vec<usize>,
    /// Comb-node SCCs of size > 1, or singletons with a self-loop.
    loop_sccs: Vec<Vec<usize>>,
    /// Comb-node indices in dataflow (topological) order; nodes inside
    /// loops come last, in index order. Forward dataflow sweeps that
    /// walk this order converge in one pass on loop-free designs.
    topo_order: Vec<usize>,
    /// Lazily computed per-net constant values (see
    /// [`LintModel::const_values`]).
    const_cache: std::cell::OnceCell<Vec<Option<Logic>>>,
}

impl<'a> LintModel<'a> {
    /// Builds the model. Never fails: leaves whose primitive reference
    /// cannot be interpreted are recorded in
    /// [`LintModel::unknown_primitives`] and excluded from the graphs.
    #[must_use]
    pub fn build(flat: &'a FlatNetlist) -> Self {
        let net_count = flat.net_count();
        let (drivers, readers) = endpoint_tables(flat);
        let mut primary_driven = vec![false; net_count];
        let mut primary_read = vec![false; net_count];
        for port in flat.ports() {
            for &net in &port.nets {
                match port.dir {
                    PortDir::Input => primary_driven[net.index()] = true,
                    PortDir::Output => primary_read[net.index()] = true,
                    PortDir::Inout => {
                        primary_driven[net.index()] = true;
                        primary_read[net.index()] = true;
                    }
                }
            }
        }

        let mut kinds = Vec::with_capacity(flat.leaves().len());
        let mut unknown = Vec::new();
        let mut comb_nodes = Vec::new();
        let mut const_drives = Vec::new();
        let mut seq = Vec::new();
        let mut black_boxes = Vec::new();

        for (li, leaf) in flat.leaves().iter().enumerate() {
            let prim = match &leaf.kind {
                FlatKind::BlackBox(_) => {
                    black_boxes.push(li);
                    kinds.push(None);
                    continue;
                }
                FlatKind::Primitive(p) => p,
            };
            let kind = match PrimKind::from_primitive(prim) {
                Ok(k) => k,
                Err(e) => {
                    unknown.push((li, e.to_string()));
                    kinds.push(None);
                    continue;
                }
            };
            kinds.push(Some(kind));
            let conn1 = |name: &str| -> NetId { leaf.conn(name).expect("port exists").nets[0] };
            match kind.class() {
                PrimClass::Const(v) => const_drives.push((conn1("o"), v)),
                PrimClass::Comb | PrimClass::Rom16 => {
                    let mut inputs = InputNets::new();
                    for name in kind.comb_input_names() {
                        let conn = leaf.conn(name).expect("port exists");
                        for &net in &conn.nets {
                            inputs.push(net);
                        }
                    }
                    comb_nodes.push(CombNode {
                        leaf: li,
                        kind: Some(kind),
                        inputs,
                        output: conn1(kind.output_name()),
                    });
                }
                PrimClass::Ff { has_ce, control } => {
                    let d = conn1("d");
                    let mut data_inputs = vec![d];
                    if has_ce {
                        data_inputs.push(conn1("ce"));
                    }
                    match control {
                        FfControl::None => {}
                        FfControl::AsyncClear => data_inputs.push(conn1("clr")),
                        FfControl::SyncReset => data_inputs.push(conn1("r")),
                    }
                    seq.push(SeqElem {
                        leaf: li,
                        clock: conn1("c"),
                        domain: NetId::from_index(0), // resolved below
                        outputs: vec![conn1("q")],
                        data_inputs,
                        d: Some(d),
                    });
                }
                PrimClass::Srl16 => {
                    let mut addr = InputNets::new();
                    for &net in &leaf.conn("a").expect("srl addr").nets {
                        addr.push(net);
                    }
                    let q = conn1("q");
                    seq.push(SeqElem {
                        leaf: li,
                        clock: conn1("c"),
                        domain: NetId::from_index(0),
                        outputs: vec![q],
                        data_inputs: vec![conn1("d"), conn1("ce")],
                        d: Some(conn1("d")),
                    });
                    comb_nodes.push(CombNode {
                        leaf: li,
                        kind: None,
                        inputs: addr,
                        output: q,
                    });
                }
                PrimClass::Ram16 => {
                    let mut addr = InputNets::new();
                    for &net in &leaf.conn("a").expect("ram addr").nets {
                        addr.push(net);
                    }
                    let o = conn1("o");
                    let mut data_inputs = vec![conn1("d"), conn1("we")];
                    data_inputs.extend(addr.iter().copied());
                    seq.push(SeqElem {
                        leaf: li,
                        clock: conn1("c"),
                        domain: NetId::from_index(0),
                        outputs: vec![o],
                        data_inputs,
                        d: Some(conn1("d")),
                    });
                    comb_nodes.push(CombNode {
                        leaf: li,
                        kind: None,
                        inputs: addr,
                        output: o,
                    });
                }
            }
        }

        let mut producer = vec![None; net_count];
        for (i, node) in comb_nodes.iter().enumerate() {
            producer[node.output.index()] = Some(i);
        }
        let mut seq_of_output = vec![None; net_count];
        for (i, s) in seq.iter().enumerate() {
            for &o in &s.outputs {
                seq_of_output[o.index()] = Some(i);
            }
        }

        let mut model = LintModel {
            flat,
            kinds,
            unknown,
            drivers,
            readers,
            primary_driven,
            primary_read,
            comb_nodes,
            producer,
            const_drives,
            seq,
            seq_of_output,
            black_boxes,
            loop_sccs: Vec::new(),
            topo_order: Vec::new(),
            const_cache: std::cell::OnceCell::new(),
        };
        for i in 0..model.seq.len() {
            model.seq[i].domain = model.clock_root(model.seq[i].clock);
        }
        let succs = model.comb_succs();
        model.loop_sccs = model.compute_loop_sccs(&succs);
        model.topo_order = model.compute_topo_order(&succs);
        model
    }

    /// The underlying flattened design.
    #[must_use]
    pub fn flat(&self) -> &FlatNetlist {
        self.flat
    }

    /// Resolved primitive kind per leaf (`None` for black boxes and
    /// unknown primitives).
    #[must_use]
    pub fn kinds(&self) -> &[Option<PrimKind>] {
        &self.kinds
    }

    /// Leaves whose primitive reference failed to resolve, with the
    /// parse error text.
    #[must_use]
    pub fn unknown_primitives(&self) -> &[(usize, String)] {
        &self.unknown
    }

    /// `(leaf index, port index)` pairs whose output side drives `net`.
    #[must_use]
    pub fn drivers_of(&self, net: NetId) -> &[(usize, usize)] {
        self.drivers.of(net)
    }

    /// `(leaf index, port index)` pairs whose input side reads `net`.
    #[must_use]
    pub fn readers_of(&self, net: NetId) -> &[(usize, usize)] {
        self.readers.of(net)
    }

    /// `true` when the net is driven by a primary input/inout port.
    #[must_use]
    pub fn is_primary_driven(&self, net: NetId) -> bool {
        self.primary_driven[net.index()]
    }

    /// `true` when the net is read by a primary output/inout port.
    #[must_use]
    pub fn is_primary_read(&self, net: NetId) -> bool {
        self.primary_read[net.index()]
    }

    /// Total driver count of a net: leaf output drivers plus one when a
    /// primary input drives it.
    #[must_use]
    pub fn driver_count(&self, net: NetId) -> usize {
        self.drivers.of(net).len() + usize::from(self.primary_driven[net.index()])
    }

    /// Fanout of a net: leaf readers plus one per primary output.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> usize {
        self.readers.of(net).len() + usize::from(self.primary_read[net.index()])
    }

    /// All combinational evaluation nodes.
    #[must_use]
    pub fn comb_nodes(&self) -> &[CombNode] {
        &self.comb_nodes
    }

    /// The comb node driving a net, if any.
    #[must_use]
    pub fn producer(&self, net: NetId) -> Option<&CombNode> {
        self.producer[net.index()].map(|i| &self.comb_nodes[i])
    }

    /// `(net, value)` constant drivers (gnd/vcc leaves).
    #[must_use]
    pub fn const_drives(&self) -> &[(NetId, Logic)] {
        &self.const_drives
    }

    /// All sequential elements.
    #[must_use]
    pub fn seq(&self) -> &[SeqElem] {
        &self.seq
    }

    /// The sequential element driving a net, if any.
    #[must_use]
    pub fn seq_of_output(&self, net: NetId) -> Option<&SeqElem> {
        self.seq_of_output[net.index()].map(|i| &self.seq[i])
    }

    /// Index into [`LintModel::seq`] of the element driving a net.
    #[must_use]
    pub fn seq_index_of_output(&self, net: NetId) -> Option<usize> {
        self.seq_of_output[net.index()]
    }

    /// Leaf indices of black boxes.
    #[must_use]
    pub fn black_boxes(&self) -> &[usize] {
        &self.black_boxes
    }

    /// Comb-node indices in dataflow order (loop members last). Forward
    /// dataflow analyses that sweep in this order converge in a single
    /// pass on loop-free designs.
    #[must_use]
    pub fn topo_order(&self) -> &[usize] {
        &self.topo_order
    }

    /// Constant value per net where provable, via monotone forward
    /// propagation of the gnd/vcc rails with the primitive evaluator's
    /// unknown-insensitivity (a LUT whose cofactors agree is constant
    /// even with varying inputs). Computed lazily, once per model —
    /// both the constant-logic and X-propagation passes share it.
    #[must_use]
    pub fn const_values(&self) -> &[Option<Logic>] {
        self.const_cache.get_or_init(|| {
            let mut value: Vec<Option<Logic>> = vec![None; self.flat.net_count()];
            for &(net, v) in &self.const_drives {
                value[net.index()] = Some(v);
            }
            // Widest comb primitive input list is a ROM's 4 address
            // bits; the fixed buffer avoids a per-node allocation.
            let mut buf = [Logic::X; 8];
            // Monotone fixpoint: facts only ever appear, so this
            // terminates; in topo order one sweep settles everything
            // outside loops, and a final sweep detects quiescence.
            loop {
                let mut changed = false;
                for &ni in &self.topo_order {
                    let node = &self.comb_nodes[ni];
                    let Some(kind) = node.kind else { continue }; // SRL/RAM reads
                    if value[node.output.index()].is_some() {
                        continue;
                    }
                    for (k, n) in node.inputs.iter().enumerate() {
                        buf[k] = value[n.index()].unwrap_or(Logic::X);
                    }
                    let out = kind.eval_comb(&buf[..node.inputs.len()]);
                    if out.to_bool().is_some() {
                        value[node.output.index()] = Some(out);
                        changed = true;
                    }
                }
                if !changed {
                    return value;
                }
            }
        })
    }

    /// Combinational SCCs that form loops: components with more than
    /// one node, or single nodes reading their own output.
    #[must_use]
    pub fn loop_sccs(&self) -> &[Vec<usize>] {
        &self.loop_sccs
    }

    /// Hierarchical instance path of a leaf.
    #[must_use]
    pub fn leaf_path(&self, leaf: usize) -> &str {
        &self.flat.leaves()[leaf].path
    }

    /// Hierarchical name of a net.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.flat.nets()[net.index()].name
    }

    /// Follows buffer chains (`buf`/`bufg`/`ibuf`) backwards to the
    /// canonical source net — the clock-domain representative.
    #[must_use]
    pub fn clock_root(&self, mut net: NetId) -> NetId {
        let mut hops = 0usize;
        while let Some(pi) = self.producer[net.index()] {
            let node = &self.comb_nodes[pi];
            let through_buffer = matches!(
                node.kind,
                Some(PrimKind::Buf | PrimKind::Bufg | PrimKind::Ibuf)
            );
            if !through_buffer || hops > self.flat.net_count() {
                break;
            }
            net = node.inputs[0];
            hops += 1;
        }
        net
    }

    /// `true` when a net feeds the clock pin of any sequential element
    /// (directly or through buffers) — such nets are exempt from
    /// fanout limits.
    #[must_use]
    pub fn is_clock_net(&self, net: NetId) -> bool {
        self.seq
            .iter()
            .any(|s| s.clock == net || s.domain == net || self.clock_root(s.clock) == net)
    }

    /// Successor lists of the comb-node graph: node → nodes reading
    /// its output net, built backwards through the producer table (an
    /// edge p → i exists exactly when node i reads the net node p
    /// drives).
    fn comb_succs(&self) -> Vec<Vec<usize>> {
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); self.comb_nodes.len()];
        for (i, node) in self.comb_nodes.iter().enumerate() {
            for &input in node.inputs.iter() {
                if let Some(p) = self.producer[input.index()] {
                    succs[p].push(i);
                }
            }
        }
        succs
    }

    /// Kahn's algorithm over the comb-node graph: dataflow order, with
    /// loop members (never reaching in-degree zero) appended last in
    /// index order.
    fn compute_topo_order(&self, succs: &[Vec<usize>]) -> Vec<usize> {
        let n = self.comb_nodes.len();
        let mut indegree = vec![0usize; n];
        for ss in succs {
            for &s in ss {
                indegree[s] += 1;
            }
        }
        let mut order: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &s in &succs[v] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    order.push(s);
                }
            }
        }
        if order.len() < n {
            let mut placed = vec![false; n];
            for &v in &order {
                placed[v] = true;
            }
            order.extend((0..n).filter(|&i| !placed[i]));
        }
        order
    }

    /// Tarjan's algorithm (iterative) over the comb-node graph.
    fn compute_loop_sccs(&self, succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let n = self.comb_nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs = Vec::new();
        // Explicit DFS frames: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos < succs[v].len() {
                    let w = succs[v][*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack holds component");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let is_loop = comp.len() > 1 || comp.iter().any(|&c| succs[c].contains(&c));
                        if is_loop {
                            comp.sort_unstable();
                            sccs.push(comp);
                        }
                    }
                }
            }
        }
        sccs.sort_by_key(|c| c[0]);
        sccs
    }
}
