//! The pass framework: the [`Pass`] trait, the emission context that
//! applies configuration (severity overrides + waivers), and the
//! [`Linter`] driver that builds one [`LintModel`] and runs every pass
//! over it.

use ipd_estimate::TimingConstraints;
use ipd_hdl::{Circuit, FlatNetlist, Severity};
use ipd_techlib::DelayModel;

use crate::config::LintConfig;
use crate::model::LintModel;
use crate::passes;
use crate::report::{LintDiag, LintReport, ProofTier};

/// Catalog entry for one rule a pass can fire.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier, e.g. `"cdc-unsync"`.
    pub id: &'static str,
    /// Default severity before configuration overrides.
    pub severity: Severity,
    /// One-line description for `--rules` style listings.
    pub help: &'static str,
}

/// Emission context handed to each pass. Routes diagnostics through the
/// configuration: severity overrides are applied, `allow`ed rules are
/// dropped, and waived diagnostics go to the report's waived section.
pub struct PassCtx<'c> {
    config: &'c LintConfig,
    report: LintReport,
}

impl<'c> PassCtx<'c> {
    pub(crate) fn new(config: &'c LintConfig) -> Self {
        PassCtx {
            config,
            report: LintReport::default(),
        }
    }

    /// The active configuration (passes read limits from here).
    #[must_use]
    pub fn config(&self) -> &LintConfig {
        self.config
    }

    /// Emits a diagnostic. `default` is the rule's catalog severity;
    /// the configuration may re-level or suppress it, and a matching
    /// waiver moves it to the waived section.
    pub fn emit(
        &mut self,
        rule: &'static str,
        default: Severity,
        object: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.emit_proof(rule, default, object, message, ProofTier::Structural);
    }

    /// [`PassCtx::emit`] with an explicit proof tier — used by the
    /// semantic pass family to record how strongly a finding is backed.
    pub fn emit_proof(
        &mut self,
        rule: &'static str,
        default: Severity,
        object: impl Into<String>,
        message: impl Into<String>,
        proof: ProofTier,
    ) {
        let Some(severity) = self.config.severity_for(rule, default) else {
            return;
        };
        let object = object.into();
        let waived = self
            .config
            .waiver_for(rule, &object)
            .map(|w| w.reason.clone());
        self.report.push(LintDiag {
            severity,
            rule,
            object,
            message: message.into(),
            waived,
            proof,
        });
    }

    pub(crate) fn into_report(mut self) -> LintReport {
        self.report.finish();
        self.report
    }
}

/// One static analysis over the shared [`LintModel`].
pub trait Pass {
    /// Short pass name for logs, e.g. `"cdc"`.
    fn name(&self) -> &'static str;
    /// The rules this pass can fire.
    fn rules(&self) -> &'static [RuleInfo];
    /// Runs the analysis, emitting diagnostics into `ctx`.
    fn run(&self, model: &LintModel<'_>, ctx: &mut PassCtx<'_>);
}

/// The lint driver: a configuration plus an ordered list of passes.
pub struct Linter {
    config: LintConfig,
    passes: Vec<Box<dyn Pass>>,
}

impl Default for Linter {
    fn default() -> Self {
        Linter::new()
    }
}

impl Linter {
    /// A linter with the default configuration and all built-in passes.
    #[must_use]
    pub fn new() -> Self {
        Linter::with_config(LintConfig::new())
    }

    /// A linter with all built-in passes and the given configuration.
    #[must_use]
    pub fn with_config(config: LintConfig) -> Self {
        Linter {
            config,
            passes: default_passes(),
        }
    }

    /// A linter with all built-in passes plus a [`passes::TimingPass`]
    /// evaluating `constraints` under the default Virtex delay model,
    /// so timing violations gate delivery exactly like structural lint
    /// errors (and can be waived the same way).
    #[must_use]
    pub fn with_timing(config: LintConfig, constraints: TimingConstraints) -> Self {
        let mut linter = Linter::with_config(config);
        linter.add_pass(Box::new(passes::TimingPass::new(
            constraints,
            DelayModel::virtex(),
        )));
        linter
    }

    /// A linter with all built-in passes plus a [`passes::EquivPass`]
    /// proving the linted design formally equivalent to `golden`, so
    /// functional divergence from the reference netlist gates delivery
    /// exactly like structural lint errors (and can be waived the
    /// same way).
    #[must_use]
    pub fn with_golden(config: LintConfig, golden: FlatNetlist) -> Self {
        let mut linter = Linter::with_config(config);
        linter.add_pass(Box::new(passes::EquivPass::new(golden)));
        linter
    }

    /// A linter with the semantic tier enabled: the structural
    /// `dead-logic`/`constant-logic`/`x-reachable` passes are replaced
    /// by [`passes::SemanticPass`], which re-derives the structural
    /// findings and upgrades them with SAT proofs from an
    /// `ipd-verify` [`Oracle`](ipd_verify::Oracle) — confirming or
    /// dropping each claim, catching semantically-constant and
    /// redundant nodes structure alone misses, and adding bounded
    /// state-reachability findings. Every refutation ships a witness
    /// replayed through both simulation engines.
    #[must_use]
    pub fn with_oracle(config: LintConfig, opts: ipd_verify::OracleOptions) -> Self {
        let passes: Vec<Box<dyn Pass>> = vec![
            Box::new(passes::ModelPass),
            Box::new(passes::SeedRulesPass),
            Box::new(passes::CombLoopPass),
            Box::new(passes::CdcPass),
            Box::new(passes::FloatConstPass::floating_only()),
            Box::new(passes::FanoutPass),
            Box::new(passes::SemanticPass::new(opts)),
        ];
        Linter { config, passes }
    }

    /// A linter running only the given passes — for focused re-checks
    /// of a single rule family, or benchmarking one analysis.
    #[must_use]
    pub fn with_passes(config: LintConfig, passes: Vec<Box<dyn Pass>>) -> Self {
        Linter { config, passes }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Adds a custom pass after the built-in ones.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Lints a hierarchical circuit (flattens first, so diagnostics
    /// carry full instance paths).
    ///
    /// # Errors
    ///
    /// Propagates flattening failures (e.g. recursive hierarchy); rule
    /// violations are *reported*, never returned as errors.
    pub fn run(&self, circuit: &Circuit) -> ipd_hdl::Result<LintReport> {
        let flat = FlatNetlist::build(circuit)?;
        Ok(self.run_flat(&flat))
    }

    /// Lints an already-flattened design.
    #[must_use]
    pub fn run_flat(&self, flat: &FlatNetlist) -> LintReport {
        let model = LintModel::build(flat);
        let mut ctx = PassCtx::new(&self.config);
        for pass in &self.passes {
            pass.run(&model, &mut ctx);
        }
        ctx.into_report()
    }
}

/// All built-in passes in execution order.
#[must_use]
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(passes::ModelPass),
        Box::new(passes::SeedRulesPass),
        Box::new(passes::CombLoopPass),
        Box::new(passes::CdcPass),
        Box::new(passes::DeadLogicPass),
        Box::new(passes::FloatConstPass::default()),
        Box::new(passes::XPropPass),
        Box::new(passes::FanoutPass),
    ]
}

/// The full rule catalog across all built-in passes (plus the
/// opt-in timing and equivalence passes), in pass order.
#[must_use]
pub fn rule_catalog() -> Vec<RuleInfo> {
    let mut all = default_passes();
    all.push(Box::new(passes::TimingPass::new(
        TimingConstraints::new(),
        DelayModel::virtex(),
    )));
    all.push(Box::new(passes::EquivPass::new(
        FlatNetlist::build(&Circuit::new("golden")).expect("empty design flattens"),
    )));
    all.push(Box::new(passes::SemanticPass::new(
        ipd_verify::OracleOptions::default(),
    )));
    all.iter().flat_map(|p| p.rules().iter().copied()).collect()
}

/// Lints a circuit with the default configuration.
///
/// # Errors
///
/// Propagates flattening failures.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let report = ipd_lint::lint(&Circuit::new("empty"))?;
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub fn lint(circuit: &Circuit) -> ipd_hdl::Result<LintReport> {
    Linter::new().run(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintLevel;

    #[test]
    fn catalog_has_unique_rule_ids() {
        let catalog = rule_catalog();
        assert!(catalog.len() >= 12, "expected a rich catalog");
        for (i, a) in catalog.iter().enumerate() {
            for b in &catalog[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate rule id {}", a.id);
            }
        }
    }

    #[test]
    fn emit_respects_allow_override_and_waiver() {
        let mut config = LintConfig::new();
        config.set_level("a", LintLevel::Allow);
        config.set_level("b", LintLevel::Error);
        config.waive("c", "obj/*", "known good");
        let mut ctx = PassCtx::new(&config);
        ctx.emit("a", Severity::Error, "x", "dropped");
        ctx.emit("b", Severity::Warning, "y", "upgraded");
        ctx.emit("c", Severity::Error, "obj/net", "waived");
        ctx.emit("c", Severity::Error, "other", "kept");
        let report = ctx.into_report();
        assert_eq!(report.diags().len(), 2);
        assert_eq!(report.diags()[0].rule, "b");
        assert_eq!(report.diags()[0].severity, Severity::Error);
        assert_eq!(report.waived().len(), 1);
        assert_eq!(report.waived()[0].waived.as_deref(), Some("known good"));
    }
}
