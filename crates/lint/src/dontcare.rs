//! Don't-care extraction as a shippable artifact.
//!
//! Synthesis-style don't-cares are useful beyond lint findings: a
//! downstream optimizer (or a customer inspecting delivered IP) wants
//! the full per-node map, not just the gates the linter flagged. This
//! module walks every combinational node of a design and asks the
//! `ipd-verify` oracle for its satisfiability don't-cares (input
//! minterms the surrounding logic can never produce) and observability
//! don't-cares (minterms under which the node's output is invisible),
//! collecting them into a [`DontCareReport`] with a deterministic JSON
//! serialization.
//!
//! Extraction is separate from [`crate::Linter::with_oracle`] on
//! purpose: ODC extraction lowers a flipped design copy per node, so
//! the full sweep costs far more than a lint run and is opt-in.

use ipd_hdl::FlatNetlist;
use ipd_verify::{CubeList, Oracle, OracleOptions, VerifyError};

use crate::model::LintModel;
use crate::passes;

/// Don't-care sets of one combinational node.
#[derive(Debug, Clone)]
pub struct DontCareEntry {
    /// The node's output net (hierarchical name).
    pub net: String,
    /// The driving leaf's instance path.
    pub leaf: String,
    /// Satisfiability don't-cares (`None` when the node was skipped —
    /// e.g. more inputs than the cube encoding supports).
    pub sdc: Option<CubeList>,
    /// Observability don't-cares, same convention. Every SDC minterm
    /// is also an ODC minterm (an unreachable input is trivially
    /// unobservable), so `odc` is a superset when both are complete.
    pub odc: Option<CubeList>,
}

/// The per-design don't-care artifact.
#[derive(Debug, Clone)]
pub struct DontCareReport {
    /// The design the sets were extracted from.
    pub design: String,
    /// One entry per examined combinational node, in dataflow order.
    pub nodes: Vec<DontCareEntry>,
    /// Nodes skipped because the extraction cap was reached.
    pub skipped: usize,
}

impl DontCareReport {
    /// Total don't-care minterms across all entries (SDC + ODC).
    #[must_use]
    pub fn total_minterms(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| [&n.sdc, &n.odc])
            .filter_map(|c| c.as_ref())
            .map(|c| c.minterms.len())
            .sum()
    }

    /// Deterministic JSON serialization (hand-rolled; the workspace
    /// has no registry dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let cubes = |out: &mut String, c: &Option<CubeList>| match c {
            None => out.push_str("null"),
            Some(c) => {
                out.push_str(&format!(
                    "{{\"inputs\": [{}], \"minterms\": [{}], \"complete\": {}}}",
                    c.inputs
                        .iter()
                        .map(|i| format!("\"{i}\""))
                        .collect::<Vec<_>>()
                        .join(", "),
                    c.minterms
                        .iter()
                        .map(u16::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    c.complete
                ));
            }
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"design\": \"{}\",\n", self.design));
        out.push_str(&format!("  \"skipped\": {},\n", self.skipped));
        out.push_str("  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"net\": \"{}\", \"leaf\": \"{}\", \"sdc\": ",
                n.net, n.leaf
            ));
            cubes(&mut out, &n.sdc);
            out.push_str(", \"odc\": ");
            cubes(&mut out, &n.odc);
            out.push('}');
        }
        if !self.nodes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Extracts per-node don't-care sets from a flattened design.
///
/// `cap` bounds the number of nodes examined (0 = unlimited); nodes
/// beyond it are counted in [`DontCareReport::skipped`], never
/// silently dropped. Buffers, fanout-free nets, and nodes the oracle
/// cannot encode are excluded up front.
///
/// # Errors
///
/// Propagates oracle construction failures; designs without a
/// two-valued model (loops, black boxes) yield an empty report
/// rather than an error.
pub fn extract_dont_cares(
    flat: &FlatNetlist,
    opts: OracleOptions,
    cap: usize,
) -> Result<DontCareReport, VerifyError> {
    let model = LintModel::build(flat);
    let mut oracle = Oracle::new(flat, opts)?;
    let mut report = DontCareReport {
        design: flat.design_name().to_owned(),
        nodes: Vec::new(),
        skipped: 0,
    };
    if !oracle.has_model() {
        return Ok(report);
    }
    for &ni in model.topo_order() {
        let node = &model.comb_nodes()[ni];
        let Some(kind) = node.kind else { continue };
        if passes::floatconst::is_buffer(kind)
            || model.fanout(node.output) == 0
            || node.inputs.is_empty()
        {
            continue;
        }
        if cap != 0 && report.nodes.len() >= cap {
            report.skipped += 1;
            continue;
        }
        let sdc = oracle.sdc(node.output)?;
        let odc = oracle.odc(node.output)?;
        if sdc.is_none() && odc.is_none() {
            continue;
        }
        report.nodes.push(DontCareEntry {
            net: model.net_name(node.output).to_owned(),
            leaf: model.leaf_path(node.leaf).to_owned(),
            sdc,
            odc,
        });
    }
    Ok(report)
}
