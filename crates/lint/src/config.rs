//! Lint configuration: per-rule severity overrides and waivers keyed
//! by rule + object path.
//!
//! A configuration travels with a design through the delivery flow:
//! the vendor decides which rules gate packaging, and records reviewed
//! exceptions as waivers. Waived diagnostics stay visible in the
//! report (in the *waived* section) but no longer count as errors, so
//! a sealed delivery can proceed.

use std::collections::HashMap;
use std::fmt;

use ipd_hdl::Severity;

/// Effective reporting level for a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Suppress the rule entirely.
    Allow,
    /// Report at warning severity.
    Warning,
    /// Report at error severity (blocks sealed delivery).
    Error,
}

impl LintLevel {
    /// The severity this level maps to; `None` for [`LintLevel::Allow`].
    #[must_use]
    pub fn severity(self) -> Option<Severity> {
        match self {
            LintLevel::Allow => None,
            LintLevel::Warning => Some(Severity::Warning),
            LintLevel::Error => Some(Severity::Error),
        }
    }
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintLevel::Allow => "allow",
            LintLevel::Warning => "warning",
            LintLevel::Error => "error",
        })
    }
}

/// A reviewed exception: one rule, one object pattern, one reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier the waiver applies to, or `"*"` for any rule.
    pub rule: String,
    /// Object path the waiver covers. Exact match, or a prefix match
    /// when the pattern ends with `*` (e.g. `top/u_fir/*`).
    pub object: String,
    /// Why the violation is acceptable (required; audits read this).
    pub reason: String,
}

impl Waiver {
    /// `true` when this waiver covers the given rule + object.
    #[must_use]
    pub fn covers(&self, rule: &str, object: &str) -> bool {
        (self.rule == "*" || self.rule == rule) && pattern_matches(&self.object, object)
    }
}

fn pattern_matches(pattern: &str, object: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => object.starts_with(prefix),
        None => pattern == object,
    }
}

/// Per-run lint configuration.
///
/// # Examples
///
/// ```
/// use ipd_lint::{LintConfig, LintLevel};
///
/// let mut config = LintConfig::new();
/// config.set_level("high-fanout", LintLevel::Error);
/// config.waive("multiple-drivers", "top/bus*", "external tristate bus");
/// assert!(config.waiver_for("multiple-drivers", "top/bus[3]").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintConfig {
    levels: HashMap<String, LintLevel>,
    waivers: Vec<Waiver>,
    /// Maximum allowed fanout of a non-clock net before the
    /// `high-fanout` rule fires.
    pub max_fanout: usize,
    /// Maximum primary-port width before `port-width` fires (the
    /// simulator's u64 convenience API covers 64 bits).
    pub max_port_width: u32,
}

impl LintConfig {
    /// The default configuration: catalog severities, fanout limit 64,
    /// port-width limit 64, no waivers.
    #[must_use]
    pub fn new() -> Self {
        LintConfig {
            levels: HashMap::new(),
            waivers: Vec::new(),
            max_fanout: 64,
            max_port_width: 64,
        }
    }

    /// Overrides the reporting level of a rule.
    pub fn set_level(&mut self, rule: impl Into<String>, level: LintLevel) -> &mut Self {
        self.levels.insert(rule.into(), level);
        self
    }

    /// Adds a waiver for a rule + object pattern.
    pub fn waive(
        &mut self,
        rule: impl Into<String>,
        object: impl Into<String>,
        reason: impl Into<String>,
    ) -> &mut Self {
        self.waivers.push(Waiver {
            rule: rule.into(),
            object: object.into(),
            reason: reason.into(),
        });
        self
    }

    /// The effective severity of a rule given its catalog default;
    /// `None` means suppressed.
    #[must_use]
    pub fn severity_for(&self, rule: &str, default: Severity) -> Option<Severity> {
        match self.levels.get(rule) {
            Some(level) => level.severity(),
            None => Some(default),
        }
    }

    /// The first waiver covering a rule + object, if any.
    #[must_use]
    pub fn waiver_for(&self, rule: &str, object: &str) -> Option<&Waiver> {
        self.waivers.iter().find(|w| w.covers(rule, object))
    }

    /// All waivers.
    #[must_use]
    pub fn waivers(&self) -> &[Waiver] {
        &self.waivers
    }

    /// Parses the textual configuration format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// level high-fanout error
    /// waive multiple-drivers top/bus* external tristate bus
    /// fanout-limit 32
    /// port-width-limit 48
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = LintConfig::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |msg: &str| Err(format!("line {}: {msg}: {line}", lineno + 1));
            let mut words = line.split_whitespace();
            match words.next() {
                Some("level") => {
                    let (Some(rule), Some(level)) = (words.next(), words.next()) else {
                        return bad("expected `level <rule> <allow|warning|error>`");
                    };
                    let level = match level {
                        "allow" => LintLevel::Allow,
                        "warning" => LintLevel::Warning,
                        "error" => LintLevel::Error,
                        _ => return bad("unknown level"),
                    };
                    config.set_level(rule, level);
                }
                Some("waive") => {
                    let (Some(rule), Some(object)) = (words.next(), words.next()) else {
                        return bad("expected `waive <rule> <object> <reason...>`");
                    };
                    let reason = words.collect::<Vec<_>>().join(" ");
                    if reason.is_empty() {
                        return bad("waiver requires a reason");
                    }
                    config.waive(rule, object, reason);
                }
                Some("fanout-limit") => {
                    let Some(n) = words.next().and_then(|w| w.parse().ok()) else {
                        return bad("expected `fanout-limit <n>`");
                    };
                    config.max_fanout = n;
                }
                Some("port-width-limit") => {
                    let Some(n) = words.next().and_then(|w| w.parse().ok()) else {
                        return bad("expected `port-width-limit <n>`");
                    };
                    config.max_port_width = n;
                }
                _ => return bad("unknown directive"),
            }
        }
        Ok(config)
    }

    /// Serializes back to the [`LintConfig::parse`] format (stable
    /// ordering: limits, levels sorted by rule, waivers in insertion
    /// order).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fanout-limit {}\n", self.max_fanout));
        out.push_str(&format!("port-width-limit {}\n", self.max_port_width));
        let mut levels: Vec<_> = self.levels.iter().collect();
        levels.sort();
        for (rule, level) in levels {
            out.push_str(&format!("level {rule} {level}\n"));
        }
        for w in &self.waivers {
            out.push_str(&format!("waive {} {} {}\n", w.rule, w.object, w.reason));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_patterns() {
        let w = Waiver {
            rule: "dead-logic".to_owned(),
            object: "top/u0/*".to_owned(),
            reason: "spare logic".to_owned(),
        };
        assert!(w.covers("dead-logic", "top/u0/lut3"));
        assert!(!w.covers("dead-logic", "top/u1/lut3"));
        assert!(!w.covers("high-fanout", "top/u0/lut3"));
        let any = Waiver {
            rule: "*".to_owned(),
            object: "top/dbg".to_owned(),
            reason: "debug hook".to_owned(),
        };
        assert!(any.covers("dead-logic", "top/dbg"));
    }

    #[test]
    fn levels_override_defaults() {
        let mut config = LintConfig::new();
        assert_eq!(
            config.severity_for("x", Severity::Warning),
            Some(Severity::Warning)
        );
        config.set_level("x", LintLevel::Error);
        assert_eq!(
            config.severity_for("x", Severity::Warning),
            Some(Severity::Error)
        );
        config.set_level("x", LintLevel::Allow);
        assert_eq!(config.severity_for("x", Severity::Warning), None);
    }

    #[test]
    fn parse_round_trips() {
        let text = "fanout-limit 32\nport-width-limit 48\nlevel high-fanout error\nwaive dead-logic top/u0/* spare logic kept for ECO\n";
        let config = LintConfig::parse(text).expect("parse");
        assert_eq!(config.max_fanout, 32);
        assert_eq!(config.max_port_width, 48);
        assert_eq!(config.to_text(), text);
        assert_eq!(LintConfig::parse(&config.to_text()), Ok(config));
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(LintConfig::parse("level only-two")
            .unwrap_err()
            .contains("line 1"));
        assert!(LintConfig::parse("waive r obj")
            .unwrap_err()
            .contains("reason"));
        assert!(LintConfig::parse("frobnicate 3")
            .unwrap_err()
            .contains("unknown directive"));
    }
}
