//! Lint diagnostics and the report they accumulate into.
//!
//! The report serializes to two stable forms: a line-oriented text
//! format (`Display`) and JSON (`to_json`). Both orders are
//! deterministic — diagnostics sort by severity (errors first), then
//! rule, then object path — so reports diff cleanly across runs and
//! can be committed as golden files.

use std::fmt;

use ipd_hdl::Severity;

/// Version of the JSON report schema emitted by
/// [`LintReport::to_json`]. Bumped whenever a field is added, removed
/// or renamed, so downstream consumers can detect incompatible
/// reports instead of mis-parsing them. Version 3 added the `proof`
/// field (the semantic-lint proof tier).
pub const REPORT_SCHEMA_VERSION: u32 = 3;

/// How strongly a finding is backed: the proof ladder.
///
/// Structural findings come from graph heuristics alone. The semantic
/// tier upgrades them: `Proved` means a SAT proof closed over every
/// input and reachable-state assignment, `RefutedWithWitness` means
/// the *safe* direction was disproved and the finding ships a
/// simulator-replayed witness vector, and `BudgetExhausted` means the
/// solver ran out of conflicts — the structural claim stands,
/// unconfirmed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProofTier {
    /// Graph-structural evidence only (the pre-semantic default).
    #[default]
    Structural,
    /// SAT-proved over all inputs and cut states.
    Proved,
    /// The safe claim was refuted; a replay-confirmed witness exists.
    RefutedWithWitness,
    /// The SAT budget ran out; the structural claim is unconfirmed.
    BudgetExhausted,
}

impl ProofTier {
    /// The stable identifier used in text and JSON reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ProofTier::Structural => "structural",
            ProofTier::Proved => "proved",
            ProofTier::RefutedWithWitness => "refuted-with-witness",
            ProofTier::BudgetExhausted => "budget-exhausted",
        }
    }
}

impl fmt::Display for ProofTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    /// Effective severity after configuration overrides.
    pub severity: Severity,
    /// Stable rule identifier, e.g. `"cdc-unsync"`.
    pub rule: &'static str,
    /// Hierarchical path of the offending object (net or instance).
    pub object: String,
    /// Human-readable description.
    pub message: String,
    /// Waiver reason when the diagnostic was waived, else `None`.
    pub waived: Option<String>,
    /// How strongly the finding is backed (the proof ladder).
    pub proof: ProofTier,
}

impl fmt::Display for LintDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.waived {
            Some(reason) => write!(
                f,
                "waived {} [{}] {}: {} (waiver: {reason})",
                self.severity, self.rule, self.object, self.message
            )?,
            None => write!(
                f,
                "{} [{}] {}: {}",
                self.severity, self.rule, self.object, self.message
            )?,
        }
        // Structural is the historical default: omitting it keeps
        // pre-semantic golden outputs byte-identical.
        if self.proof != ProofTier::Structural {
            write!(f, " (proof: {})", self.proof)?;
        }
        Ok(())
    }
}

/// The aggregated result of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    diags: Vec<LintDiag>,
    waived: Vec<LintDiag>,
}

impl LintReport {
    pub(crate) fn push(&mut self, diag: LintDiag) {
        if diag.waived.is_some() {
            self.waived.push(diag);
        } else {
            self.diags.push(diag);
        }
    }

    /// Sorts both sections into the stable report order.
    pub(crate) fn finish(&mut self) {
        let key = |d: &LintDiag| {
            (
                std::cmp::Reverse(d.severity),
                d.rule,
                d.object.clone(),
                d.message.clone(),
            )
        };
        self.diags.sort_by_key(key);
        self.waived.sort_by_key(key);
    }

    /// Active (non-waived) diagnostics, errors first.
    #[must_use]
    pub fn diags(&self) -> &[LintDiag] {
        &self.diags
    }

    /// Diagnostics suppressed by waivers (still reported for audit).
    #[must_use]
    pub fn waived(&self) -> &[LintDiag] {
        &self.waived
    }

    /// Active diagnostics of a given rule.
    pub fn by_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a LintDiag> + 'a {
        self.diags.iter().filter(move |d| d.rule == rule)
    }

    /// Count of active error-severity diagnostics.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Count of active warning-severity diagnostics.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when no active error-severity diagnostics exist.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// One-line summary, e.g. `"2 error(s), 1 warning(s), 3 waived"`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} waived",
            self.error_count(),
            self.warning_count(),
            self.waived.len()
        )
    }

    /// Serializes the report to JSON (hand-rolled; the workspace has no
    /// registry dependencies). The output is fully deterministic:
    /// `schema_version` leads, field order is fixed, and both
    /// diagnostic arrays are in the stable sort order established by
    /// `finish` (severity, rule, object, message) — so reports can be
    /// committed as golden files and diffed across runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {REPORT_SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"waived\": {},\n",
            self.error_count(),
            self.warning_count(),
            self.waived.len()
        ));
        out.push_str("  \"diagnostics\": [");
        push_diag_array(&mut out, &self.diags);
        out.push_str("],\n  \"waivers\": [");
        push_diag_array(&mut out, &self.waived);
        out.push_str("]\n}\n");
        out
    }
}

fn push_diag_array(out: &mut String, diags: &[LintDiag]) {
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"severity\": \"{}\", \"rule\": \"{}\", \"object\": \"{}\", \"message\": \"{}\", \"proof\": \"{}\"",
            d.severity,
            d.rule,
            json_escape(&d.object),
            json_escape(&d.message),
            d.proof
        ));
        if let Some(reason) = &d.waived {
            out.push_str(&format!(", \"waiver\": \"{}\"", json_escape(reason)));
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        for d in &self.waived {
            writeln!(f, "{d}")?;
        }
        writeln!(f, "lint: {}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity, rule: &'static str, object: &str) -> LintDiag {
        LintDiag {
            severity,
            rule,
            object: object.to_owned(),
            message: format!("problem at {object}"),
            waived: None,
            proof: ProofTier::Structural,
        }
    }

    #[test]
    fn proof_tier_renders_in_text_and_json() {
        let mut r = LintReport::default();
        let mut d = diag(Severity::Warning, "dead-logic", "top/u1");
        d.proof = ProofTier::Proved;
        r.push(d);
        r.push(diag(Severity::Warning, "dead-logic", "top/u2"));
        r.finish();
        let text = r.to_string();
        assert!(text.contains("top/u1: problem at top/u1 (proof: proved)"));
        assert!(!text.contains("top/u2: problem at top/u2 (proof:"));
        let json = r.to_json();
        assert!(json.contains("\"proof\": \"proved\""));
        assert!(json.contains("\"proof\": \"structural\""));
        assert!(json.contains("\"schema_version\": 3"));
    }

    #[test]
    fn report_orders_errors_first() {
        let mut r = LintReport::default();
        r.push(diag(Severity::Warning, "b-rule", "z"));
        r.push(diag(Severity::Error, "a-rule", "m"));
        r.push(diag(Severity::Warning, "a-rule", "a"));
        r.finish();
        let rules: Vec<_> = r.diags().iter().map(|d| (d.severity, d.rule)).collect();
        assert_eq!(
            rules,
            vec![
                (Severity::Error, "a-rule"),
                (Severity::Warning, "a-rule"),
                (Severity::Warning, "b-rule"),
            ]
        );
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn waived_diags_do_not_count_as_errors() {
        let mut r = LintReport::default();
        let mut d = diag(Severity::Error, "x", "obj");
        d.waived = Some("reviewed".to_owned());
        r.push(d);
        r.finish();
        assert!(r.is_clean());
        assert_eq!(r.diags().len(), 0);
        assert_eq!(r.waived().len(), 1);
        assert!(r.to_string().contains("waiver: reviewed"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = LintReport::default();
        r.push(diag(Severity::Error, "rule", "a\"b"));
        r.finish();
        let json = r.to_json();
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("a\\\"b"));
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn empty_report_json() {
        let r = LintReport::default();
        let json = r.to_json();
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"waivers\": []"));
    }
}
