//! Netlist static analysis for the IP delivery flow.
//!
//! The paper's applet model delivers *executables* that evaluate IP in
//! the customer's browser; a vendor shipping a broken netlist finds
//! out from the customer. This crate is the gate in front of that:
//! a pass framework over the flattened design
//! ([`ipd_hdl::FlatNetlist`]) that runs structural, clocking and
//! reachability analyses and produces a [`LintReport`] with stable
//! text/JSON serializations. `ipd-core`'s sealed-delivery path
//! refuses to package designs whose report contains unwaived errors.
//!
//! # Architecture
//!
//! * [`LintModel`] — connectivity, primitive kinds, the combinational
//!   graph (with SRL/RAM read paths), sequential elements with clock
//!   domains, and Tarjan SCCs, built once per run.
//! * [`Pass`] — a pure analysis over the model emitting diagnostics
//!   through [`PassCtx`], which applies [`LintConfig`] severity
//!   overrides and waivers.
//! * [`Linter`] — drives [`default_passes`] and aggregates a
//!   [`LintReport`].
//!
//! # Examples
//!
//! ```
//! use ipd_hdl::{Circuit, PortSpec, Primitive};
//! use ipd_lint::{LintConfig, LintLevel, Linter};
//!
//! # fn main() -> Result<(), ipd_hdl::HdlError> {
//! let mut circuit = Circuit::new("top");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.leaf(
//!     Primitive::new("virtex", "buf"),
//!     vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
//!     "b0",
//!     &[("i", a.into()), ("o", y.into())],
//! )?;
//!
//! let report = Linter::new().run(&circuit)?;
//! assert!(report.is_clean());
//!
//! // Rules can be re-levelled or waived per object path.
//! let mut config = LintConfig::new();
//! config.set_level("dead-logic", LintLevel::Error);
//! config.waive("high-fanout", "top/clk_tree/*", "dedicated route");
//! let report = Linter::with_config(config).run(&circuit)?;
//! assert!(report.is_clean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod dontcare;
mod model;
mod pass;
pub mod passes;
mod report;

pub use config::{LintConfig, LintLevel, Waiver};
pub use dontcare::{extract_dont_cares, DontCareEntry, DontCareReport};
pub use ipd_estimate::TimingConstraints;
pub use ipd_hdl::Severity;
pub use ipd_verify::OracleOptions;
pub use model::{CombNode, LintModel, SeqElem};
pub use pass::{default_passes, lint, rule_catalog, Linter, Pass, PassCtx, RuleInfo};
pub use passes::{x_reachable, EquivPass, SemanticPass, TimingPass};
pub use report::{LintDiag, LintReport, ProofTier, REPORT_SCHEMA_VERSION};
