//! Differential validation of the STA engine on random combinational
//! DAGs, plus the incremental-speedup contract.
//!
//! Arrival times are validated two ways:
//!
//! 1. **Depth reference** — under a unit delay model (every gate 1 ns,
//!    every net 0 ns) the STA arrival at the output must equal the
//!    longest gate depth, computed here by an independent dynamic
//!    program over the generator's own edge list.
//! 2. **`BatchSimulator` cross-check** — the same DAG is batch-
//!    simulated and compared against a software evaluation of the edge
//!    list, proving the netlist the STA graph was built from is the
//!    netlist the simulator executes (`BatchSimulator` exposes no
//!    propagation-depth API, so depth itself comes from the reference
//!    DP above).

use ipd_estimate::{Sta, TimingConstraints};
use ipd_hdl::{Circuit, FlatNetlist, PortSpec, Signal};
use ipd_sim::BatchSimulator;
use ipd_techlib::{DelayModel, LogicCtx};
use ipd_testutil::XorShift64;

/// Gate op in the reference edge list.
#[derive(Clone, Copy)]
enum Op {
    And,
    Or,
    Xor,
}

/// A random DAG plus its own edge list for independent evaluation.
struct RandomDag {
    circuit: Circuit,
    n_inputs: usize,
    /// Per gate: (op, input a, input b) as net indices, where nets
    /// `0..n_inputs` are the inputs and `n_inputs + g` is gate `g`.
    gates: Vec<(Op, usize, usize)>,
}

fn random_dag(rng: &mut XorShift64, n_inputs: usize, n_gates: usize) -> RandomDag {
    let mut circuit = Circuit::new("rand");
    let mut ctx = circuit.root_ctx();
    let mut nets: Vec<Signal> = (0..n_inputs)
        .map(|i| {
            ctx.add_port(PortSpec::input(format!("x{i}"), 1))
                .unwrap()
                .into()
        })
        .collect();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let mut gates = Vec::new();
    for g in 0..n_gates {
        let a = (rng.next_u64() as usize) % nets.len();
        let b = (rng.next_u64() as usize) % nets.len();
        let out = ctx.wire(&format!("g{g}"), 1);
        let op = match rng.next_u64() % 3 {
            0 => Op::And,
            1 => Op::Or,
            _ => Op::Xor,
        };
        match op {
            Op::And => ctx.and2(nets[a].clone(), nets[b].clone(), out),
            Op::Or => ctx.or2(nets[a].clone(), nets[b].clone(), out),
            Op::Xor => ctx.xor2(nets[a].clone(), nets[b].clone(), out),
        }
        .unwrap();
        gates.push((op, a, b));
        nets.push(out.into());
    }
    // Route the last gate (or an input, for degenerate sizes) to y
    // through one more gate so the output depth is well-defined.
    let last = nets.len() - 1;
    gates.push((Op::Xor, last, last));
    let fin = ctx.wire("fin", 1);
    ctx.xor2(nets[last].clone(), nets[last].clone(), fin)
        .unwrap();
    ctx.buffer(fin, y).unwrap();
    RandomDag {
        circuit,
        n_inputs,
        gates,
    }
}

impl RandomDag {
    /// Longest gate depth from any input to the final gate.
    fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.n_inputs + self.gates.len()];
        for (g, &(_, a, b)) in self.gates.iter().enumerate() {
            depth[self.n_inputs + g] = 1 + depth[a].max(depth[b]);
        }
        *depth.last().unwrap()
    }

    /// Evaluates the edge list for one input assignment.
    fn eval(&self, inputs: &[bool]) -> bool {
        let mut v = inputs.to_vec();
        for &(op, a, b) in &self.gates {
            v.push(match op {
                Op::And => v[a] && v[b],
                Op::Or => v[a] || v[b],
                Op::Xor => v[a] ^ v[b],
            });
        }
        *v.last().unwrap()
    }
}

/// Every gate 1 ns, every net and boundary effect 0 ns: STA arrival
/// becomes pure gate depth.
fn unit_model() -> DelayModel {
    DelayModel {
        lut_ns: 1.0,
        carry_ns: 1.0,
        clk_to_q_ns: 0.0,
        setup_ns: 0.0,
        carry_net_ns: 0.0,
        net_base_ns: 0.0,
        net_per_clb_ns: 0.0,
        net_per_fanout_ns: 0.0,
        unplaced_factor: 1.0,
    }
}

/// Constrain the single output against a virtual clock so its arrival
/// is reported; the period is arbitrary.
fn output_constraints(period: f64) -> TimingConstraints {
    let mut c = TimingConstraints::new();
    c.clock("virt", period, "no_such_net");
    c.output_delay("virt", 0.0, "y");
    c
}

#[test]
fn sta_arrival_matches_depth_reference_on_random_dags() {
    ipd_testutil::check_n("sta-depth", 20, |rng| {
        let n_inputs = 3 + (rng.next_u64() % 6) as usize;
        let n_gates = 5 + (rng.next_u64() % 120) as usize;
        let dag = random_dag(rng, n_inputs, n_gates);
        let flat = FlatNetlist::build(&dag.circuit).expect("flatten");
        let mut sta = Sta::build(&flat, &unit_model()).expect("build");
        let period = 1_000.0;
        let report = sta.analyze(&output_constraints(period));
        let y = report
            .endpoints
            .iter()
            .find(|e| e.endpoint == "y")
            .expect("y endpoint");
        let arrival = period - y.slack_ns;
        // The final buffer is 0 ns (Buf class), so arrival == depth.
        let depth = dag.depth() as f64;
        assert!(
            (arrival - depth).abs() < 1e-9,
            "arrival {arrival} vs depth {depth} ({} gates)",
            dag.gates.len()
        );
        // Levels on the reported worst path agree with the DP too.
        let path = report
            .paths
            .iter()
            .find(|p| p.endpoint == "y")
            .expect("y path");
        assert_eq!(path.levels, dag.depth());
    });
}

#[test]
fn batch_simulator_agrees_with_the_same_edge_list() {
    ipd_testutil::check_n("sta-sim", 10, |rng| {
        let n_inputs = 3 + (rng.next_u64() % 5) as usize;
        let n_gates = 5 + (rng.next_u64() % 60) as usize;
        let dag = random_dag(rng, n_inputs, n_gates);
        let lanes = 16usize;
        let mut sim = BatchSimulator::new(&dag.circuit, lanes).expect("compile");
        let mut stimuli: Vec<Vec<bool>> = Vec::new();
        for lane in 0..lanes {
            let bits: Vec<bool> = (0..n_inputs).map(|_| rng.next_u64() & 1 == 1).collect();
            for (i, &b) in bits.iter().enumerate() {
                sim.set_u64_lane(&format!("x{i}"), lane, u64::from(b))
                    .expect("drive input");
            }
            stimuli.push(bits);
        }
        sim.cycle(1).expect("settle");
        for (lane, bits) in stimuli.iter().enumerate() {
            let got = sim
                .peek_lane("y", lane)
                .expect("read output")
                .to_u64()
                .expect("binary output");
            assert_eq!(got == 1, dag.eval(bits), "lane {lane}");
        }
    });
}

/// Acceptance criterion: after a single constraint edit, incremental
/// re-analysis does ≥ 5× less propagation work than the cold run. The
/// design is 64 independent chains; editing one input's delay dirties
/// only that chain's cone.
#[test]
fn incremental_reanalysis_is_at_least_5x_cheaper() {
    let chains = 64usize;
    let depth = 24usize;
    let mut circuit = Circuit::new("many_chains");
    {
        let mut ctx = circuit.root_ctx();
        for k in 0..chains {
            let x = ctx.add_port(PortSpec::input(format!("x{k}"), 1)).unwrap();
            let y = ctx.add_port(PortSpec::output(format!("y{k}"), 1)).unwrap();
            let mut cur: Signal = x.into();
            for i in 0..depth {
                let nxt = ctx.wire(&format!("c{k}_{i}"), 1);
                ctx.inv(cur, nxt).unwrap();
                cur = nxt.into();
            }
            ctx.buffer(cur, y).unwrap();
        }
    }
    let flat = FlatNetlist::build(&circuit).expect("flatten");
    let mut sta = Sta::build(&flat, &DelayModel::virtex()).expect("build");
    let mut base = TimingConstraints::new();
    base.clock("virt", 100.0, "no_such_net");
    base.output_delay("virt", 0.0, "*");
    base.input_delay("virt", 0.0, "x7");
    let cold = sta.analyze(&base);
    let cold_work = sta.last_work();

    let mut edited = TimingConstraints::new();
    edited.clock("virt", 100.0, "no_such_net");
    edited.output_delay("virt", 0.0, "*");
    edited.input_delay("virt", 2.0, "x7");
    let inc = sta.reanalyze(&edited);
    let inc_work = sta.last_work();
    assert!(inc_work > 0, "edit must repropagate the x7 cone");
    assert!(
        inc_work * 5 <= cold_work,
        "incremental work {inc_work} vs cold {cold_work}"
    );

    // Identical to a cold run on the edited constraints.
    let mut fresh = Sta::build(&flat, &DelayModel::virtex()).expect("build");
    assert_eq!(inc, fresh.analyze(&edited));
    // And the edit moved exactly the x7 chain's slack.
    let slack = |r: &ipd_estimate::StaReport, ep: &str| {
        r.endpoints
            .iter()
            .find(|e| e.endpoint == ep)
            .map(|e| e.slack_ns)
            .unwrap()
    };
    assert!((slack(&cold, "y7") - slack(&inc, "y7") - 2.0).abs() < 1e-9);
    assert!((slack(&cold, "y9") - slack(&inc, "y9")).abs() < 1e-9);
}
