//! Backannotation differential suite: the [`NetDelaySource`] seam must
//! be invisible when heuristic. `NetDelaySource::Heuristic` (and a
//! routed source with an *empty* database, which falls back everywhere)
//! must produce bit-identical `StaReport`s and `TimingReport`s to the
//! pre-seam API across random DAGs, placed and unplaced, through both
//! `analyze` and incremental `reanalyze` — and a *populated* routed
//! database must actually reach the arrival math.

use std::sync::Arc;

use ipd_estimate::{
    auto_place, estimate_timing_flat, estimate_timing_flat_with_source, PlacerConfig, Sta,
    TimingConstraints,
};
use ipd_hdl::{Circuit, FlatNetlist, PortSpec, Signal};
use ipd_techlib::{DelayModel, LogicCtx, NetDelaySource, RoutedDelays};
use ipd_testutil::XorShift64;

/// A random combinational DAG with one registered output.
fn random_dag(rng: &mut XorShift64, n_inputs: usize, n_gates: usize) -> Circuit {
    let mut circuit = Circuit::new("rand");
    let mut ctx = circuit.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let mut nets: Vec<Signal> = (0..n_inputs)
        .map(|i| {
            ctx.add_port(PortSpec::input(format!("x{i}"), 1))
                .unwrap()
                .into()
        })
        .collect();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    for g in 0..n_gates {
        let a = (rng.next_u64() as usize) % nets.len();
        let b = (rng.next_u64() as usize) % nets.len();
        let out = ctx.wire(&format!("g{g}"), 1);
        match rng.next_u64() % 3 {
            0 => ctx.and2(nets[a].clone(), nets[b].clone(), out),
            1 => ctx.or2(nets[a].clone(), nets[b].clone(), out),
            _ => ctx.xor2(nets[a].clone(), nets[b].clone(), out),
        }
        .unwrap();
        nets.push(out.into());
    }
    let last = nets.len() - 1;
    ctx.fd(clk, nets[last].clone(), y).unwrap();
    circuit
}

fn constraints(period: f64) -> TimingConstraints {
    let mut c = TimingConstraints::new();
    c.clock("clk", period, "clk");
    c.output_delay("clk", 0.0, "y");
    c
}

/// Both the heuristic source and an empty routed database reproduce
/// the pre-seam analyzer bit for bit, on unplaced and placed layouts.
#[test]
fn heuristic_and_empty_routed_sources_are_bit_identical() {
    ipd_testutil::check_n("backannotate-identity", 12, |rng| {
        let n_inputs = 3 + (rng.next_u64() % 5) as usize;
        let n_gates = 5 + (rng.next_u64() % 80) as usize;
        let unplaced = random_dag(rng, n_inputs, n_gates);
        let placed = auto_place(&unplaced, &PlacerConfig::default())
            .expect("place")
            .circuit;
        let model = DelayModel::virtex();
        for circuit in [&unplaced, &placed] {
            let flat = FlatNetlist::build(circuit).expect("flatten");
            let cons = constraints(25.0);

            let mut legacy = Sta::build(&flat, &model).expect("legacy build");
            let baseline = legacy.analyze(&cons);

            let mut heuristic =
                Sta::build_with_source(&flat, &model, NetDelaySource::Heuristic).expect("build");
            assert_eq!(baseline, heuristic.analyze(&cons));

            let empty = NetDelaySource::Routed(Arc::new(RoutedDelays::new()));
            let mut routed = Sta::build_with_source(&flat, &model, empty).expect("build");
            assert_eq!(baseline, routed.analyze(&cons));

            // The legacy longest-path estimator too.
            let a = estimate_timing_flat(&flat, &model).expect("legacy");
            let b = estimate_timing_flat_with_source(&flat, &model, NetDelaySource::Heuristic)
                .expect("seam");
            assert_eq!(a, b);
        }
    });
}

/// Incremental `reanalyze` equals a cold `analyze` under every source.
#[test]
fn reanalyze_is_identical_across_sources() {
    ipd_testutil::check_n("backannotate-reanalyze", 8, |rng| {
        let n_inputs = 3 + (rng.next_u64() % 5) as usize;
        let n_gates = 5 + (rng.next_u64() % 60) as usize;
        let circuit = random_dag(rng, n_inputs, n_gates);
        let placed = auto_place(&circuit, &PlacerConfig::default())
            .expect("place")
            .circuit;
        let flat = FlatNetlist::build(&placed).expect("flatten");
        let model = DelayModel::virtex();
        for source in [
            NetDelaySource::Heuristic,
            NetDelaySource::Routed(Arc::new(RoutedDelays::new())),
        ] {
            let mut sta = Sta::build_with_source(&flat, &model, source.clone()).expect("build");
            sta.analyze(&constraints(25.0));
            let incremental = sta.reanalyze(&constraints(40.0));
            let mut fresh = Sta::build_with_source(&flat, &model, source).expect("build");
            let cold = fresh.analyze(&constraints(40.0));
            assert_eq!(incremental, cold);
        }
    });
}

/// A populated routed database must change arrivals: inflating every
/// net the design uses by a fixed amount strictly reduces the worst
/// slack, proving the seam feeds the arrival math (not just storage).
#[test]
fn populated_routed_database_reaches_the_arrival_math() {
    let mut rng = XorShift64::new(0xBACC_A11E);
    let circuit = random_dag(&mut rng, 5, 40);
    let placed = auto_place(&circuit, &PlacerConfig::default())
        .expect("place")
        .circuit;
    let flat = FlatNetlist::build(&placed).expect("flatten");
    let model = DelayModel::virtex();
    let cons = constraints(25.0);

    let mut heuristic =
        Sta::build_with_source(&flat, &model, NetDelaySource::Heuristic).expect("build");
    let base = heuristic.analyze(&cons);

    // Backannotate every net at every placed sink with heuristic + 3ns.
    let mut db = RoutedDelays::new();
    let drivers = flat.drivers();
    let readers = flat.readers();
    for net in 0..flat.net_count() {
        let Some(&(dli, _)) = drivers[net].first() else {
            continue;
        };
        let Some(from) = flat.leaves()[dli].loc else {
            continue;
        };
        let fanout = readers[net].len();
        for &(rli, _) in &readers[net] {
            if let Some(to) = flat.leaves()[rli].loc {
                db.insert(
                    ipd_hdl::NetId::from_index(net),
                    to,
                    model.net_delay_placed(from, to, fanout) + 3.0,
                );
            }
        }
    }
    assert!(!db.is_empty());
    let mut routed =
        Sta::build_with_source(&flat, &model, NetDelaySource::Routed(Arc::new(db))).expect("build");
    let slow = routed.analyze(&cons);
    let base_worst = base.worst_slack().expect("worst");
    let slow_worst = slow.worst_slack().expect("worst");
    assert!(
        slow_worst < base_worst - 1.0,
        "inflated routed delays must cost slack: {base_worst} -> {slow_worst}"
    );
}
