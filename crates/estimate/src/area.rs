//! Area estimation: resource totals, per-primitive breakdown and device
//! fitting.

use std::collections::BTreeMap;
use std::fmt;

use ipd_hdl::{Circuit, FlatKind, FlatNetlist};
use ipd_techlib::{area_of, AreaCost, Device, PrimKind};

use crate::error::EstimateError;

/// The area estimate an IP evaluation executable displays to a customer
/// (paper §3.2: "obtaining area and timing estimates").
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Total resource cost.
    pub total: AreaCost,
    /// Per-primitive-kind counts and costs, keyed by primitive name.
    pub by_primitive: BTreeMap<String, (usize, AreaCost)>,
    /// Number of black-box leaves whose internals are hidden (their
    /// area is *not* included — the vendor reports it separately).
    pub black_boxes: usize,
    /// The smallest catalog device that fits, if any.
    pub device: Option<Device>,
    /// Utilization of the chosen device, percent of the scarcest
    /// resource.
    pub utilization: Option<f64>,
}

impl AreaReport {
    /// Estimated slice count.
    #[must_use]
    pub fn slices(&self) -> u32 {
        self.total.slices()
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "area: {} LUTs, {} FFs, {} carry cells, {} pads ({} slices)",
            self.total.luts,
            self.total.ffs,
            self.total.carries,
            self.total.pads,
            self.slices()
        )?;
        for (name, (count, cost)) in &self.by_primitive {
            writeln!(
                f,
                "  {name:<12} x{count:<5} ({} LUT, {} FF, {} carry)",
                cost.luts, cost.ffs, cost.carries
            )?;
        }
        if self.black_boxes > 0 {
            writeln!(
                f,
                "  (+{} protected black box(es), area not shown)",
                self.black_boxes
            )?;
        }
        match (self.device, self.utilization) {
            (Some(d), Some(u)) => writeln!(f, "fits: {} at {u:.1}% utilization", d.name),
            _ => writeln!(f, "fits: no catalog device is large enough"),
        }
    }
}

/// Estimates the area of a circuit.
///
/// # Errors
///
/// Fails on flattening errors or unknown primitives.
///
/// # Examples
///
/// ```
/// use ipd_estimate::estimate_area;
/// use ipd_hdl::{Circuit, PortSpec};
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("t");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// ctx.xor2(a, a, y)?;
/// let report = estimate_area(&circuit)?;
/// assert_eq!(report.total.luts, 1);
/// # Ok(())
/// # }
/// ```
pub fn estimate_area(circuit: &Circuit) -> Result<AreaReport, EstimateError> {
    let flat = FlatNetlist::build(circuit)?;
    estimate_area_flat(&flat)
}

/// Estimates area from an already-flattened design.
///
/// # Errors
///
/// Fails on unknown primitives.
pub fn estimate_area_flat(flat: &FlatNetlist) -> Result<AreaReport, EstimateError> {
    let mut total = AreaCost::zero();
    let mut by_primitive: BTreeMap<String, (usize, AreaCost)> = BTreeMap::new();
    let mut black_boxes = 0usize;
    for leaf in flat.leaves() {
        match &leaf.kind {
            FlatKind::BlackBox(_) => black_boxes += 1,
            FlatKind::Primitive(p) => {
                let kind = PrimKind::from_primitive(p)?;
                let cost = area_of(&kind);
                total += cost;
                let entry = by_primitive
                    .entry(p.name.clone())
                    .or_insert((0, AreaCost::zero()));
                entry.0 += 1;
                entry.1 += cost;
            }
        }
    }
    let device = Device::smallest_fitting(&total);
    let utilization = device.map(|d| d.utilization(&total));
    Ok(AreaReport {
        total,
        by_primitive,
        black_boxes,
        device,
        utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{PortSpec, Signal};
    use ipd_techlib::LogicCtx;

    #[test]
    fn counts_resources_by_kind() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 4)).unwrap();
        let t = ctx.wire("t", 4);
        for b in 0..4 {
            ctx.inv(Signal::bit_of(a, b), Signal::bit_of(t, b)).unwrap();
            ctx.fd(clk, Signal::bit_of(t, b), Signal::bit_of(y, b))
                .unwrap();
        }
        let report = estimate_area(&c).expect("estimate");
        assert_eq!(report.total.luts, 4);
        assert_eq!(report.total.ffs, 4);
        assert_eq!(report.slices(), 2);
        assert_eq!(report.by_primitive["inv"].0, 4);
        assert_eq!(report.by_primitive["fd"].0, 4);
        assert_eq!(report.device.map(|d| d.name), Some("xcv50"));
        let text = report.to_string();
        assert!(text.contains("4 LUTs"));
        assert!(text.contains("xcv50"));
    }

    #[test]
    fn black_boxes_are_counted_but_not_costed() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        ctx.black_box(
            "secret",
            vec![PortSpec::input("i", 1)],
            "u0",
            &[("i", a.into())],
        )
        .unwrap();
        let report = estimate_area(&c).expect("estimate");
        assert_eq!(report.total, AreaCost::zero());
        assert_eq!(report.black_boxes, 1);
        assert!(report.to_string().contains("protected black box"));
    }

    #[test]
    fn empty_circuit_fits_smallest_part() {
        let c = Circuit::new("empty");
        let report = estimate_area(&c).expect("estimate");
        assert_eq!(report.device.map(|d| d.name), Some("xcv50"));
        assert_eq!(report.utilization, Some(0.0));
    }
}
