//! # ipd-estimate — area and timing estimation
//!
//! The paper's IP delivery executables let a customer "experiment with
//! various parameters to estimate the speed, size and cost of the IP"
//! before licensing it. This crate is that circuit estimator:
//!
//! - [`estimate_area`] → [`AreaReport`]: LUT/FF/carry/pad totals, a
//!   per-primitive breakdown, slice packing and the smallest catalog
//!   device that fits.
//! - [`estimate_timing`] → [`TimingReport`]: placement-aware static
//!   longest-path analysis under the technology delay model, with the
//!   worst path and implied clock frequency.
//! - [`analyze_timing`] / [`Sta`] → [`StaReport`]: full static timing
//!   analysis under a [`TimingConstraints`] set — per-endpoint setup
//!   slack, false-path/multicycle exceptions, critical-path
//!   enumeration, slack histograms, and incremental re-analysis.
//! - [`place_and_route`] → [`PhysicalDesign`]: annealed (or pinned
//!   hand-RLOC) placement, PathFinder-style congestion-negotiated
//!   global routing over the device CLB grid, and STA backannotated
//!   with routed wire lengths through the
//!   [`ipd_techlib::NetDelaySource`] seam.
//!
//! # Example
//!
//! ```
//! use ipd_estimate::{estimate_area, estimate_timing};
//! use ipd_hdl::{Circuit, PortSpec};
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("t");
//! let mut ctx = circuit.root_ctx();
//! let clk = ctx.add_port(PortSpec::input("clk", 1))?;
//! let d = ctx.add_port(PortSpec::input("d", 1))?;
//! let q = ctx.add_port(PortSpec::output("q", 1))?;
//! let t = ctx.wire("t", 1);
//! ctx.inv(d, t)?;
//! ctx.fd(clk, t, q)?;
//!
//! let area = estimate_area(&circuit)?;
//! assert_eq!(area.total.luts, 1);
//! assert_eq!(area.total.ffs, 1);
//!
//! let timing = estimate_timing(&circuit)?;
//! assert!(timing.critical_path_ns > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod error;
mod place;
mod pnr;
pub mod route;
pub mod sta;
mod timing;

pub use area::{estimate_area, estimate_area_flat, AreaReport};
pub use error::EstimateError;
pub use place::{auto_place, PlacementResult, PlacerConfig, PlacerMode};
pub use pnr::{place_and_route, PhysicalDesign, PlacementStrategy, PnrConfig};
pub use route::{route, RouteStats, RoutedNet, RoutedSink, RouterConfig, RoutingResult};
pub use sta::{
    analyze_timing, ClockConstraint, ClockSlack, EndpointSlack, ExceptionKind, PathException,
    PathReport, PathStep, PortDelay, SlackHistogram, SlackSummary, Sta, StaReport,
    TimingConstraints,
};
pub use timing::{
    estimate_timing, estimate_timing_flat, estimate_timing_flat_with_source, estimate_timing_with,
    TimingReport,
};
