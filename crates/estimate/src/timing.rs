//! Static timing estimation: the one-number summary an IP evaluation
//! executable displays, derived from the [`crate::sta`] engine.
//!
//! For sequential designs the report now covers the worst path through
//! *sequential endpoints*, analyzed per structural clock domain (a
//! launch in one domain is never timed against a capture in another) —
//! the historical estimator mixed register-to-register and pin-to-pin
//! paths into one number. Purely combinational designs reduce to a
//! single launch class and reproduce the historical algorithm exactly;
//! the old implementation is retained below as a `cfg(test)` oracle
//! and the equivalence is proven by differential tests.

use std::fmt;

use ipd_hdl::{Circuit, FlatNetlist};
use ipd_techlib::{DelayModel, NetDelaySource};

use crate::error::EstimateError;
use crate::sta::Sta;

/// The timing estimate an IP evaluation executable displays.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst register-to-register / pin-to-pin delay in nanoseconds.
    pub critical_path_ns: f64,
    /// Maximum clock frequency implied by the critical path.
    pub fmax_mhz: f64,
    /// Logic levels (LUT-class primitives) on the critical path.
    pub levels: usize,
    /// Net names along the critical path, source to endpoint.
    pub path: Vec<String>,
    /// Fraction of leaves carrying absolute placement, 0–1. Placed
    /// macros get tighter routing estimates — the benefit the paper's
    /// layout view sells.
    pub placed_fraction: f64,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timing: {:.2} ns critical path ({:.1} MHz), {} logic level(s), {:.0}% placed",
            self.critical_path_ns,
            self.fmax_mhz,
            self.levels,
            self.placed_fraction * 100.0
        )?;
        if !self.path.is_empty() {
            writeln!(f, "  worst path: {}", self.path.join(" -> "))?;
        }
        Ok(())
    }
}

/// Estimates the critical path of a circuit using the default Virtex
/// delay model.
///
/// # Errors
///
/// Fails on flattening errors, unknown primitives, or combinational
/// loops.
pub fn estimate_timing(circuit: &Circuit) -> Result<TimingReport, EstimateError> {
    estimate_timing_with(circuit, &DelayModel::virtex())
}

/// Estimates the critical path with an explicit delay model.
///
/// # Errors
///
/// As for [`estimate_timing`].
pub fn estimate_timing_with(
    circuit: &Circuit,
    model: &DelayModel,
) -> Result<TimingReport, EstimateError> {
    let flat = FlatNetlist::build(circuit)?;
    estimate_timing_flat(&flat, model)
}

/// Estimates timing from an already-flattened design.
///
/// # Errors
///
/// As for [`estimate_timing`].
pub fn estimate_timing_flat(
    flat: &FlatNetlist,
    model: &DelayModel,
) -> Result<TimingReport, EstimateError> {
    estimate_timing_flat_with_source(flat, model, NetDelaySource::Heuristic)
}

/// Estimates timing from an already-flattened design with an explicit
/// net-delay source — [`NetDelaySource::Routed`] makes the one-number
/// summary reflect real wire geometry instead of distance heuristics.
///
/// # Errors
///
/// As for [`estimate_timing`].
pub fn estimate_timing_flat_with_source(
    flat: &FlatNetlist,
    model: &DelayModel,
    source: NetDelaySource,
) -> Result<TimingReport, EstimateError> {
    let mut sta = Sta::build_with_source(flat, model, source)?;
    sta.analyze_legacy();
    let (critical, levels, path) = sta.legacy_worst();
    Ok(TimingReport {
        critical_path_ns: critical,
        fmax_mhz: model.to_mhz(critical),
        levels,
        path,
        placed_fraction: sta.placed_fraction(),
    })
}

/// The pre-STA single-pass estimator, kept verbatim as a differential
/// oracle: on purely combinational designs (one launch class) the STA
/// derivation must reproduce it bit for bit.
#[cfg(test)]
mod oracle {
    use ipd_hdl::{FlatKind, FlatNetlist, NetId, PortDir, Rloc};
    use ipd_techlib::{DelayModel, PrimClass, PrimKind};

    use super::TimingReport;
    use crate::error::EstimateError;

    struct TimingNode {
        kind: PrimKind,
        inputs: Vec<NetId>,
        output: NetId,
        loc: Option<Rloc>,
    }

    pub fn estimate_timing_flat(
        flat: &FlatNetlist,
        model: &DelayModel,
    ) -> Result<TimingReport, EstimateError> {
        let net_count = flat.net_count();
        let mut arrival = vec![0.0f64; net_count];
        let mut level = vec![0usize; net_count];
        let mut pred: Vec<Option<NetId>> = vec![None; net_count];
        let mut driver_loc: Vec<Option<Rloc>> = vec![None; net_count];
        let mut driver_carry = vec![false; net_count];
        let mut fanout = vec![0usize; net_count];
        for (net, readers) in flat.readers().iter().enumerate() {
            fanout[net] = readers.len();
        }

        let mut nodes: Vec<TimingNode> = Vec::new();
        let mut endpoints: Vec<(NetId, f64, Option<Rloc>, String)> = Vec::new();
        let mut placed = 0usize;
        let mut total_leaves = 0usize;

        for leaf in flat.leaves() {
            total_leaves += 1;
            if leaf.loc.is_some() {
                placed += 1;
            }
            match &leaf.kind {
                FlatKind::BlackBox(_) => {
                    for conn in &leaf.conns {
                        match conn.dir {
                            PortDir::Input => {
                                for &n in &conn.nets {
                                    endpoints.push((n, 0.0, leaf.loc, leaf.path.clone()));
                                }
                            }
                            _ => {
                                for &n in &conn.nets {
                                    driver_loc[n.index()] = leaf.loc;
                                }
                            }
                        }
                    }
                }
                FlatKind::Primitive(p) => {
                    let kind = PrimKind::from_primitive(p)?;
                    match kind.class() {
                        PrimClass::Comb | PrimClass::Rom16 => {
                            let mut inputs = Vec::new();
                            let mut output = None;
                            for conn in &leaf.conns {
                                match conn.dir {
                                    PortDir::Input => inputs.extend(conn.nets.iter().copied()),
                                    _ => output = conn.nets.first().copied(),
                                }
                            }
                            if let Some(output) = output {
                                driver_loc[output.index()] = leaf.loc;
                                driver_carry[output.index()] = kind.is_carry();
                                nodes.push(TimingNode {
                                    kind,
                                    inputs,
                                    output,
                                    loc: leaf.loc,
                                });
                            }
                        }
                        PrimClass::Const(_) => {
                            for conn in &leaf.conns {
                                if conn.dir != PortDir::Input {
                                    for &n in &conn.nets {
                                        driver_loc[n.index()] = leaf.loc;
                                    }
                                }
                            }
                        }
                        PrimClass::Ff { .. } => {
                            for conn in &leaf.conns {
                                match (conn.port.as_str(), conn.dir) {
                                    ("c", _) => {}
                                    (_, PortDir::Input) => {
                                        for &n in &conn.nets {
                                            endpoints.push((
                                                n,
                                                model.setup_ns,
                                                leaf.loc,
                                                leaf.path.clone(),
                                            ));
                                        }
                                    }
                                    (_, _) => {
                                        for &n in &conn.nets {
                                            arrival[n.index()] = model.clk_to_q_ns;
                                            driver_loc[n.index()] = leaf.loc;
                                        }
                                    }
                                }
                            }
                        }
                        PrimClass::Srl16 | PrimClass::Ram16 => {
                            let mut addr = Vec::new();
                            let mut out_net = None;
                            for conn in &leaf.conns {
                                match (conn.port.as_str(), conn.dir) {
                                    ("c", _) => {}
                                    ("a", _) => addr = conn.nets.clone(),
                                    (_, PortDir::Input) => {
                                        for &n in &conn.nets {
                                            endpoints.push((
                                                n,
                                                model.setup_ns,
                                                leaf.loc,
                                                leaf.path.clone(),
                                            ));
                                        }
                                    }
                                    (_, _) => out_net = conn.nets.first().copied(),
                                }
                            }
                            if let Some(output) = out_net {
                                driver_loc[output.index()] = leaf.loc;
                                arrival[output.index()] = model.clk_to_q_ns;
                                nodes.push(TimingNode {
                                    kind,
                                    inputs: addr,
                                    output,
                                    loc: leaf.loc,
                                });
                            }
                        }
                    }
                }
            }
        }

        for port in flat.ports() {
            if port.dir == PortDir::Output {
                for &n in &port.nets {
                    endpoints.push((n, 0.0, None, format!("output {}", port.name)));
                }
            }
        }

        let order =
            topo_order(&nodes, net_count).map_err(|net| EstimateError::CombinationalLoop {
                net: flat.nets()[net.index()].name.clone(),
            })?;

        for &i in &order {
            let node = &nodes[i];
            let mut best = 0.0f64;
            let mut best_pred = None;
            let mut best_level = 0usize;
            for &input in &node.inputs {
                let net_delay = model.net_delay_edge(
                    driver_loc[input.index()],
                    node.loc,
                    fanout[input.index()],
                    driver_carry[input.index()] && node.kind.is_carry(),
                );
                let t = arrival[input.index()] + net_delay;
                if t > best {
                    best = t;
                    best_pred = Some(input);
                    best_level = level[input.index()];
                }
            }
            let out = node.output.index();
            let t = best + model.prim_delay(&node.kind);
            if t > arrival[out] {
                arrival[out] = t;
                pred[out] = best_pred;
                let is_lut_level = !matches!(
                    node.kind,
                    PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd | PrimKind::Buf
                );
                level[out] = best_level + usize::from(is_lut_level);
            }
        }

        let mut critical = 0.0f64;
        let mut worst_net: Option<NetId> = None;
        for (net, extra, sink_loc, _label) in &endpoints {
            let net_delay = match (driver_loc[net.index()], *sink_loc) {
                (Some(from), Some(to)) => model.net_delay_placed(from, to, fanout[net.index()]),
                _ => model.net_delay_unplaced(fanout[net.index()]),
            };
            let t = arrival[net.index()] + net_delay + extra;
            if t > critical {
                critical = t;
                worst_net = Some(*net);
            }
        }

        let mut path = Vec::new();
        let mut levels = 0usize;
        if let Some(mut net) = worst_net {
            levels = level[net.index()];
            loop {
                path.push(flat.nets()[net.index()].name.clone());
                match pred[net.index()] {
                    Some(p) => net = p,
                    None => break,
                }
            }
            path.reverse();
        }

        let placed_fraction = if total_leaves == 0 {
            0.0
        } else {
            placed as f64 / total_leaves as f64
        };

        Ok(TimingReport {
            critical_path_ns: critical,
            fmax_mhz: model.to_mhz(critical),
            levels,
            path,
            placed_fraction,
        })
    }

    fn topo_order(nodes: &[TimingNode], net_count: usize) -> Result<Vec<usize>, NetId> {
        let mut producer: Vec<Option<usize>> = vec![None; net_count];
        for (i, n) in nodes.iter().enumerate() {
            producer[n.output.index()] = Some(i);
        }
        let mut indeg = vec![0usize; nodes.len()];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            for input in &n.inputs {
                if let Some(p) = producer[input.index()] {
                    if p != i {
                        indeg[i] += 1;
                        consumers[p].push(i);
                    }
                }
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(nodes.len());
        while let Some(i) = queue.pop() {
            order.push(i);
            for &c in &consumers[i] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != nodes.len() {
            let mut emitted = vec![false; nodes.len()];
            for &i in &order {
                emitted[i] = true;
            }
            let cyclic = (0..nodes.len())
                .find(|i| !emitted[*i])
                .expect("cycle exists");
            return Err(nodes[cyclic].output);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{PortSpec, Rloc, Signal};
    use ipd_techlib::LogicCtx;

    /// A chain of `n` inverters between an FF and an FF.
    fn inv_chain(n: usize, placed: bool) -> Circuit {
        let mut c = Circuit::new("chain");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur = ctx.wire("s0", 1);
        let first = ctx.fd(clk, d, cur).unwrap();
        if placed {
            ctx.set_rloc(first, Rloc::new(0, 0));
        }
        for i in 0..n {
            let next = ctx.wire(&format!("s{}", i + 1), 1);
            let inv = ctx.inv(cur, next).unwrap();
            if placed {
                ctx.set_rloc(inv, Rloc::new(0, i as i32 + 1));
            }
            cur = next;
        }
        let last = ctx.fd(clk, cur, q).unwrap();
        if placed {
            ctx.set_rloc(last, Rloc::new(0, n as i32 + 1));
        }
        c
    }

    #[test]
    fn longer_chains_are_slower() {
        let short = estimate_timing(&inv_chain(2, false)).expect("timing");
        let long = estimate_timing(&inv_chain(8, false)).expect("timing");
        assert!(long.critical_path_ns > short.critical_path_ns);
        assert!(long.fmax_mhz < short.fmax_mhz);
        assert_eq!(long.levels, 8);
    }

    #[test]
    fn placement_tightens_estimate() {
        let unplaced = estimate_timing(&inv_chain(6, false)).expect("timing");
        let placed = estimate_timing(&inv_chain(6, true)).expect("timing");
        assert!(placed.critical_path_ns < unplaced.critical_path_ns);
        assert!(placed.placed_fraction > 0.99);
        assert_eq!(unplaced.placed_fraction, 0.0);
    }

    #[test]
    fn path_is_reported() {
        let report = estimate_timing(&inv_chain(3, false)).expect("timing");
        assert!(!report.path.is_empty());
        assert!(report.to_string().contains("worst path"));
    }

    #[test]
    fn combinational_loop_is_an_error() {
        let mut c = Circuit::new("loop");
        let mut ctx = c.root_ctx();
        let a = ctx.wire("a", 1);
        let b = ctx.wire("b", 1);
        ctx.inv(a, b).unwrap();
        ctx.inv(b, a).unwrap();
        assert!(matches!(
            estimate_timing(&c),
            Err(EstimateError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn carry_chain_beats_lut_chain() {
        // n-bit carry chain: muxcy chain, vs n-LUT chain.
        let n = 16;
        let mut carry = Circuit::new("carry");
        {
            let mut ctx = carry.root_ctx();
            let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
            let s = ctx.add_port(PortSpec::input("s", n)).unwrap();
            let d = ctx.add_port(PortSpec::input("d", n)).unwrap();
            let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
            let mut ci = ctx.wire("c0", 1);
            ctx.fd(clk, Signal::bit_of(s, 0), ci).unwrap();
            for i in 0..n {
                let co = ctx.wire(&format!("c{}", i + 1), 1);
                ctx.muxcy(ci, Signal::bit_of(d, i), Signal::bit_of(s, i), co)
                    .unwrap();
                ci = co;
            }
            ctx.fd(clk, ci, q).unwrap();
        }
        let lut = inv_chain(n as usize, false);
        let carry_t = estimate_timing(&carry).expect("timing").critical_path_ns;
        let lut_t = estimate_timing(&lut).expect("timing").critical_path_ns;
        assert!(carry_t < lut_t, "carry {carry_t} vs lut {lut_t}");
    }

    /// A random combinational DAG over 2-input gates: primary inputs,
    /// then gates whose inputs draw from any earlier net.
    fn random_comb_dag(rng: &mut ipd_testutil::XorShift64, gates: usize) -> Circuit {
        let mut c = Circuit::new("rand");
        let mut ctx = c.root_ctx();
        let n_inputs = 3 + (rng.next_u64() % 5) as usize;
        let mut nets: Vec<Signal> = (0..n_inputs)
            .map(|i| {
                ctx.add_port(PortSpec::input(format!("x{i}"), 1))
                    .unwrap()
                    .into()
            })
            .collect();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        for g in 0..gates {
            let a = nets[(rng.next_u64() as usize) % nets.len()].clone();
            let b = nets[(rng.next_u64() as usize) % nets.len()].clone();
            let out = ctx.wire(&format!("g{g}"), 1);
            match rng.next_u64() % 3 {
                0 => ctx.and2(a, b, out).unwrap(),
                1 => ctx.xor2(a, b, out).unwrap(),
                _ => ctx.or2(a, b, out).unwrap(),
            };
            nets.push(out.into());
        }
        let last = nets.last().unwrap().clone();
        ctx.buffer(last, y).unwrap();
        c
    }

    /// Tentpole regression: the STA-derived estimator reproduces the
    /// historical single-pass algorithm bit for bit on purely
    /// combinational designs.
    #[test]
    fn sta_matches_oracle_on_combinational_designs() {
        ipd_testutil::check_n("comb-oracle", 25, |rng| {
            let gates = 10 + (rng.next_u64() as usize % 60);
            let c = random_comb_dag(rng, gates);
            let flat = FlatNetlist::build(&c).expect("flatten");
            let model = DelayModel::virtex();
            let new = estimate_timing_flat(&flat, &model).expect("sta");
            let old = oracle::estimate_timing_flat(&flat, &model).expect("oracle");
            assert_eq!(new, old);
        });
    }

    /// On sequential designs the old estimator's number was the max
    /// over *all* endpoints; the new one covers sequential endpoints
    /// per domain. On a single-domain FF-bounded chain both views pick
    /// the same register-to-register path.
    #[test]
    fn sta_matches_oracle_on_ff_bounded_chains() {
        for n in [1usize, 3, 8] {
            for placed in [false, true] {
                let c = inv_chain(n, placed);
                let flat = FlatNetlist::build(&c).expect("flatten");
                let model = DelayModel::virtex();
                let new = estimate_timing_flat(&flat, &model).expect("sta");
                let old = oracle::estimate_timing_flat(&flat, &model).expect("oracle");
                assert_eq!(new, old, "n={n} placed={placed}");
            }
        }
    }

    /// The satellite fix itself: with two clock domains, the estimate
    /// no longer mixes a cross-domain path into the single number —
    /// each domain's worst register-to-register path is timed within
    /// the domain.
    #[test]
    fn domains_are_not_mixed() {
        // Domain A: FF -> 1 inv -> FF. Domain B: FF -> 6 invs -> FF.
        // Cross: A's FF output also feeds a 12-inv chain into B's FF —
        // the old estimator would report that cross path; the
        // domain-aware one must not.
        let mut c = Circuit::new("two_domains");
        {
            let mut ctx = c.root_ctx();
            let clk_a = ctx.add_port(PortSpec::input("clk_a", 1)).unwrap();
            let clk_b = ctx.add_port(PortSpec::input("clk_b", 1)).unwrap();
            let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
            let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
            // Domain A short loop.
            let a0 = ctx.wire("a0", 1);
            let a1 = ctx.wire("a1", 1);
            ctx.fd(clk_a, d, a0).unwrap();
            ctx.inv(a0, a1).unwrap();
            let aq = ctx.wire("aq", 1);
            ctx.fd(clk_a, a1, aq).unwrap();
            // Domain B medium chain.
            let mut cur = ctx.wire("b0", 1);
            ctx.fd(clk_b, aq, cur).unwrap();
            for i in 0..6 {
                let nxt = ctx.wire(&format!("b{}", i + 1), 1);
                ctx.inv(cur, nxt).unwrap();
                cur = nxt;
            }
            let bq = ctx.wire("bq", 1);
            ctx.fd(clk_b, cur, bq).unwrap();
            // Long cross path A -> B.
            let mut x = a0;
            for i in 0..12 {
                let nxt = ctx.wire(&format!("x{i}"), 1);
                ctx.inv(x, nxt).unwrap();
                x = nxt;
            }
            let xq = ctx.wire("xq", 1);
            ctx.fd(clk_b, x, xq).unwrap();
            ctx.buffer(bq, q).unwrap();
        }
        let report = estimate_timing(&c).expect("timing");
        // Worst in-domain path is B's 6-level chain; the 12-level cross
        // path must not be reported.
        assert_eq!(report.levels, 6, "{report}");
    }
}
