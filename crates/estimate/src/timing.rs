//! Static timing estimation: longest combinational path under the
//! technology delay model, placement-aware.

use std::fmt;

use ipd_hdl::{Circuit, FlatKind, FlatNetlist, NetId, PortDir, Rloc};
use ipd_techlib::{DelayModel, PrimClass, PrimKind};

use crate::error::EstimateError;

/// The timing estimate an IP evaluation executable displays.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst register-to-register / pin-to-pin delay in nanoseconds.
    pub critical_path_ns: f64,
    /// Maximum clock frequency implied by the critical path.
    pub fmax_mhz: f64,
    /// Logic levels (LUT-class primitives) on the critical path.
    pub levels: usize,
    /// Net names along the critical path, source to endpoint.
    pub path: Vec<String>,
    /// Fraction of leaves carrying absolute placement, 0–1. Placed
    /// macros get tighter routing estimates — the benefit the paper's
    /// layout view sells.
    pub placed_fraction: f64,
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timing: {:.2} ns critical path ({:.1} MHz), {} logic level(s), {:.0}% placed",
            self.critical_path_ns,
            self.fmax_mhz,
            self.levels,
            self.placed_fraction * 100.0
        )?;
        if !self.path.is_empty() {
            writeln!(f, "  worst path: {}", self.path.join(" -> "))?;
        }
        Ok(())
    }
}

struct TimingNode {
    kind: PrimKind,
    inputs: Vec<NetId>,
    output: NetId,
    loc: Option<Rloc>,
}

/// Estimates the critical path of a circuit using the default Virtex
/// delay model.
///
/// # Errors
///
/// Fails on flattening errors, unknown primitives, or combinational
/// loops.
pub fn estimate_timing(circuit: &Circuit) -> Result<TimingReport, EstimateError> {
    estimate_timing_with(circuit, &DelayModel::virtex())
}

/// Estimates the critical path with an explicit delay model.
///
/// # Errors
///
/// As for [`estimate_timing`].
pub fn estimate_timing_with(
    circuit: &Circuit,
    model: &DelayModel,
) -> Result<TimingReport, EstimateError> {
    let flat = FlatNetlist::build(circuit)?;
    estimate_timing_flat(&flat, model)
}

/// Estimates timing from an already-flattened design.
///
/// # Errors
///
/// As for [`estimate_timing`].
pub fn estimate_timing_flat(
    flat: &FlatNetlist,
    model: &DelayModel,
) -> Result<TimingReport, EstimateError> {
    let net_count = flat.net_count();
    let mut arrival = vec![0.0f64; net_count];
    let mut level = vec![0usize; net_count];
    let mut pred: Vec<Option<NetId>> = vec![None; net_count];
    let mut driver_loc: Vec<Option<Rloc>> = vec![None; net_count];
    let mut fanout = vec![0usize; net_count];
    for (net, readers) in flat.readers().iter().enumerate() {
        fanout[net] = readers.len();
    }

    let mut nodes: Vec<TimingNode> = Vec::new();
    // Endpoints: (arrival net, extra delay, sink loc, label).
    let mut endpoints: Vec<(NetId, f64, Option<Rloc>, String)> = Vec::new();
    let mut placed = 0usize;
    let mut total_leaves = 0usize;

    for leaf in flat.leaves() {
        total_leaves += 1;
        if leaf.loc.is_some() {
            placed += 1;
        }
        match &leaf.kind {
            FlatKind::BlackBox(_) => {
                // Unknown internals: outputs launch at t=0; inputs are
                // endpoints with no setup assumption.
                for conn in &leaf.conns {
                    match conn.dir {
                        PortDir::Input => {
                            for &n in &conn.nets {
                                endpoints.push((n, 0.0, leaf.loc, leaf.path.clone()));
                            }
                        }
                        _ => {
                            for &n in &conn.nets {
                                driver_loc[n.index()] = leaf.loc;
                            }
                        }
                    }
                }
            }
            FlatKind::Primitive(p) => {
                let kind = PrimKind::from_primitive(p)?;
                match kind.class() {
                    PrimClass::Comb | PrimClass::Rom16 => {
                        let mut inputs = Vec::new();
                        let mut output = None;
                        for conn in &leaf.conns {
                            match conn.dir {
                                PortDir::Input => inputs.extend(conn.nets.iter().copied()),
                                _ => output = conn.nets.first().copied(),
                            }
                        }
                        if let Some(output) = output {
                            driver_loc[output.index()] = leaf.loc;
                            nodes.push(TimingNode {
                                kind,
                                inputs,
                                output,
                                loc: leaf.loc,
                            });
                        }
                    }
                    PrimClass::Const(_) => {
                        for conn in &leaf.conns {
                            if conn.dir != PortDir::Input {
                                for &n in &conn.nets {
                                    driver_loc[n.index()] = leaf.loc;
                                }
                            }
                        }
                    }
                    PrimClass::Ff { .. } => {
                        for conn in &leaf.conns {
                            match (conn.port.as_str(), conn.dir) {
                                ("c", _) => {}
                                (_, PortDir::Input) => {
                                    for &n in &conn.nets {
                                        endpoints.push((
                                            n,
                                            model.setup_ns,
                                            leaf.loc,
                                            leaf.path.clone(),
                                        ));
                                    }
                                }
                                (_, _) => {
                                    for &n in &conn.nets {
                                        arrival[n.index()] = model.clk_to_q_ns;
                                        driver_loc[n.index()] = leaf.loc;
                                    }
                                }
                            }
                        }
                    }
                    PrimClass::Srl16 | PrimClass::Ram16 => {
                        // Write side: endpoints. Read side: an async
                        // LUT-read node from the address to the output.
                        let mut addr = Vec::new();
                        let mut out_net = None;
                        for conn in &leaf.conns {
                            match (conn.port.as_str(), conn.dir) {
                                ("c", _) => {}
                                ("a", _) => addr = conn.nets.clone(),
                                (_, PortDir::Input) => {
                                    for &n in &conn.nets {
                                        endpoints.push((
                                            n,
                                            model.setup_ns,
                                            leaf.loc,
                                            leaf.path.clone(),
                                        ));
                                    }
                                }
                                (_, _) => out_net = conn.nets.first().copied(),
                            }
                        }
                        if let Some(output) = out_net {
                            driver_loc[output.index()] = leaf.loc;
                            // State launches at clk-to-q; the address
                            // path goes through the node below.
                            arrival[output.index()] = model.clk_to_q_ns;
                            nodes.push(TimingNode {
                                kind,
                                inputs: addr,
                                output,
                                loc: leaf.loc,
                            });
                        }
                    }
                }
            }
        }
    }

    // Primary outputs are endpoints; primary inputs launch at t=0.
    for port in flat.ports() {
        if port.dir == PortDir::Output {
            for &n in &port.nets {
                endpoints.push((n, 0.0, None, format!("output {}", port.name)));
            }
        }
    }

    // Topological order over nodes.
    let order = topo_order(&nodes, net_count).map_err(|net| EstimateError::CombinationalLoop {
        net: flat.nets()[net.index()].name.clone(),
    })?;

    for &i in &order {
        let node = &nodes[i];
        let mut best = 0.0f64;
        let mut best_pred = None;
        let mut best_level = 0usize;
        for &input in &node.inputs {
            let net_delay = match (driver_loc[input.index()], node.loc) {
                (Some(from), Some(to)) => model.net_delay_placed(from, to, fanout[input.index()]),
                _ => model.net_delay_unplaced(fanout[input.index()]),
            };
            let t = arrival[input.index()] + net_delay;
            if t > best {
                best = t;
                best_pred = Some(input);
                best_level = level[input.index()];
            }
        }
        let out = node.output.index();
        let t = best + model.prim_delay(&node.kind);
        if t > arrival[out] {
            arrival[out] = t;
            pred[out] = best_pred;
            let is_lut_level = !matches!(
                node.kind,
                PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd | PrimKind::Buf
            );
            level[out] = best_level + usize::from(is_lut_level);
        }
    }

    // Find the worst endpoint.
    let mut critical = 0.0f64;
    let mut worst_net: Option<NetId> = None;
    for (net, extra, sink_loc, _label) in &endpoints {
        let net_delay = match (driver_loc[net.index()], *sink_loc) {
            (Some(from), Some(to)) => model.net_delay_placed(from, to, fanout[net.index()]),
            _ => model.net_delay_unplaced(fanout[net.index()]),
        };
        let t = arrival[net.index()] + net_delay + extra;
        if t > critical {
            critical = t;
            worst_net = Some(*net);
        }
    }

    // Reconstruct the worst path.
    let mut path = Vec::new();
    let mut levels = 0usize;
    if let Some(mut net) = worst_net {
        levels = level[net.index()];
        loop {
            path.push(flat.nets()[net.index()].name.clone());
            match pred[net.index()] {
                Some(p) => net = p,
                None => break,
            }
        }
        path.reverse();
    }

    let placed_fraction = if total_leaves == 0 {
        0.0
    } else {
        placed as f64 / total_leaves as f64
    };

    Ok(TimingReport {
        critical_path_ns: critical,
        fmax_mhz: model.to_mhz(critical),
        levels,
        path,
        placed_fraction,
    })
}

/// Kahn topological sort over timing nodes; `Err(net)` names a net on a
/// combinational cycle.
fn topo_order(nodes: &[TimingNode], net_count: usize) -> Result<Vec<usize>, NetId> {
    let mut producer: Vec<Option<usize>> = vec![None; net_count];
    for (i, n) in nodes.iter().enumerate() {
        producer[n.output.index()] = Some(i);
    }
    let mut indeg = vec![0usize; nodes.len()];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for input in &n.inputs {
            if let Some(p) = producer[input.index()] {
                if p != i {
                    indeg[i] += 1;
                    consumers[p].push(i);
                }
            }
        }
    }
    let mut queue: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &c in &consumers[i] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    if order.len() != nodes.len() {
        let mut emitted = vec![false; nodes.len()];
        for &i in &order {
            emitted[i] = true;
        }
        let cyclic = (0..nodes.len())
            .find(|i| !emitted[*i])
            .expect("cycle exists");
        return Err(nodes[cyclic].output);
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{PortSpec, Rloc, Signal};
    use ipd_techlib::LogicCtx;

    /// A chain of `n` inverters between an FF and an FF.
    fn inv_chain(n: usize, placed: bool) -> Circuit {
        let mut c = Circuit::new("chain");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur = ctx.wire("s0", 1);
        let first = ctx.fd(clk, d, cur).unwrap();
        if placed {
            ctx.set_rloc(first, Rloc::new(0, 0));
        }
        for i in 0..n {
            let next = ctx.wire(&format!("s{}", i + 1), 1);
            let inv = ctx.inv(cur, next).unwrap();
            if placed {
                ctx.set_rloc(inv, Rloc::new(0, i as i32 + 1));
            }
            cur = next;
        }
        let last = ctx.fd(clk, cur, q).unwrap();
        if placed {
            ctx.set_rloc(last, Rloc::new(0, n as i32 + 1));
        }
        c
    }

    #[test]
    fn longer_chains_are_slower() {
        let short = estimate_timing(&inv_chain(2, false)).expect("timing");
        let long = estimate_timing(&inv_chain(8, false)).expect("timing");
        assert!(long.critical_path_ns > short.critical_path_ns);
        assert!(long.fmax_mhz < short.fmax_mhz);
        assert_eq!(long.levels, 8);
    }

    #[test]
    fn placement_tightens_estimate() {
        let unplaced = estimate_timing(&inv_chain(6, false)).expect("timing");
        let placed = estimate_timing(&inv_chain(6, true)).expect("timing");
        assert!(placed.critical_path_ns < unplaced.critical_path_ns);
        assert!(placed.placed_fraction > 0.99);
        assert_eq!(unplaced.placed_fraction, 0.0);
    }

    #[test]
    fn path_is_reported() {
        let report = estimate_timing(&inv_chain(3, false)).expect("timing");
        assert!(!report.path.is_empty());
        assert!(report.to_string().contains("worst path"));
    }

    #[test]
    fn combinational_loop_is_an_error() {
        let mut c = Circuit::new("loop");
        let mut ctx = c.root_ctx();
        let a = ctx.wire("a", 1);
        let b = ctx.wire("b", 1);
        ctx.inv(a, b).unwrap();
        ctx.inv(b, a).unwrap();
        assert!(matches!(
            estimate_timing(&c),
            Err(EstimateError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn carry_chain_beats_lut_chain() {
        // n-bit carry chain: muxcy chain, vs n-LUT chain.
        let n = 16;
        let mut carry = Circuit::new("carry");
        {
            let mut ctx = carry.root_ctx();
            let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
            let s = ctx.add_port(PortSpec::input("s", n)).unwrap();
            let d = ctx.add_port(PortSpec::input("d", n)).unwrap();
            let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
            let mut ci = ctx.wire("c0", 1);
            ctx.fd(clk, Signal::bit_of(s, 0), ci).unwrap();
            for i in 0..n {
                let co = ctx.wire(&format!("c{}", i + 1), 1);
                ctx.muxcy(ci, Signal::bit_of(d, i), Signal::bit_of(s, i), co)
                    .unwrap();
                ci = co;
            }
            ctx.fd(clk, ci, q).unwrap();
        }
        let lut = inv_chain(n as usize, false);
        let carry_t = estimate_timing(&carry).expect("timing").critical_path_ns;
        let lut_t = estimate_timing(&lut).expect("timing").critical_path_ns;
        assert!(carry_t < lut_t, "carry {carry_t} vs lut {lut_t}");
    }
}
