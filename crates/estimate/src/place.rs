//! A simulated-annealing placer.
//!
//! The paper's module generators ship *hand-crafted* relative placement
//! and sell it through the layout viewer. To quantify that choice, this
//! placer provides the middle baseline: automatic placement by annealing
//! on half-perimeter wirelength, between "no placement at all" (router
//! guesses) and the generator's hand layout.

use ipd_hdl::{Circuit, FlatNetlist, Rloc};
use ipd_techlib::{area_of, PrimKind};

use crate::error::EstimateError;

/// What the annealer is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacerMode {
    /// Discard all existing placement and anneal every placeable leaf.
    #[default]
    Scratch,
    /// Keep already-placed leaves pinned at their hand `RLOC`s and
    /// anneal only the unplaced leaves into the free sites around
    /// them. The hand layout is preserved bit-for-bit.
    Pinned,
}

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerConfig {
    /// RNG seed (placement is deterministic per seed).
    pub seed: u64,
    /// Proposed moves per placeable leaf.
    pub moves_per_leaf: u32,
    /// Starting temperature, in cost units.
    pub initial_temperature: f64,
    /// Multiplicative cooling applied each sweep.
    pub cooling: f64,
    /// Whether existing `RLOC`s are discarded or pinned.
    pub mode: PlacerMode,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            seed: 0x5EED_CAFE,
            moves_per_leaf: 400,
            initial_temperature: 8.0,
            cooling: 0.95,
            mode: PlacerMode::Scratch,
        }
    }
}

/// The outcome of automatic placement.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The placed circuit (every slice-consuming leaf has an absolute
    /// `RLOC`; prior placement is discarded in [`PlacerMode::Scratch`]
    /// and preserved bit-for-bit in [`PlacerMode::Pinned`]).
    pub circuit: Circuit,
    /// Half-perimeter wirelength of the random initial placement.
    pub initial_wirelength: f64,
    /// Half-perimeter wirelength after annealing.
    pub final_wirelength: f64,
    /// Accepted moves.
    pub accepted_moves: u64,
    /// Grid side length used.
    pub grid_side: u32,
}

/// Places a circuit automatically with simulated annealing.
///
/// [`PlacerMode::Scratch`] (the default) discards any existing
/// placement and anneals every slice-consuming leaf.
/// [`PlacerMode::Pinned`] keeps hand-placed leaves fixed at their
/// `RLOC`s and anneals only the unplaced remainder into the open sites
/// around them — the paper's hand layouts stay authoritative while the
/// glue logic finds a home.
///
/// # Errors
///
/// Propagates flattening and technology errors.
///
/// # Examples
///
/// ```
/// use ipd_estimate::{auto_place, PlacerConfig};
/// use ipd_hdl::{Circuit, PortSpec, Signal};
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("xor_chain");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 8))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// let mut cur: Signal = Signal::bit_of(a, 0);
/// for b in 1..8 {
///     let t = ctx.wire("t", 1);
///     ctx.xor2(cur, Signal::bit_of(a, b), t)?;
///     cur = t.into();
/// }
/// ctx.buffer(cur, y)?;
///
/// let placed = auto_place(&circuit, &PlacerConfig::default())?;
/// assert!(placed.final_wirelength <= placed.initial_wirelength);
/// # Ok(())
/// # }
/// ```
pub fn auto_place(
    circuit: &Circuit,
    config: &PlacerConfig,
) -> Result<PlacementResult, EstimateError> {
    let flat = FlatNetlist::build(circuit)?;
    let pinned_mode = config.mode == PlacerMode::Pinned;
    // Placeable leaves: anything that occupies fabric (zero-cost
    // buffers/constants/pads float). In pinned mode, already-placed
    // leaves keep their absolute location and never move.
    let mut leaves = Vec::new();
    let mut fixed: Vec<Option<Rloc>> = Vec::new();
    for leaf in flat.leaves() {
        let occupies = match &leaf.kind {
            ipd_hdl::FlatKind::BlackBox(_) => true,
            ipd_hdl::FlatKind::Primitive(p) => {
                let kind = PrimKind::from_primitive(p)?;
                let a = area_of(&kind);
                a.luts + a.ffs + a.carries > 0
            }
        };
        if occupies {
            leaves.push(leaf.cell);
            fixed.push(if pinned_mode { leaf.loc } else { None });
        }
    }
    let n = leaves.len();
    if n == 0 {
        let mut out = circuit.clone();
        if !pinned_mode {
            out.strip_placement();
        }
        return Ok(PlacementResult {
            circuit: out,
            initial_wirelength: 0.0,
            final_wirelength: 0.0,
            accepted_moves: 0,
            grid_side: 0,
        });
    }
    let free: Vec<usize> = (0..n).filter(|&i| fixed[i].is_none()).collect();
    let n_free = free.len();

    // The site grid. From scratch: a square with ~40% slack. Pinned:
    // the pinned bounding box, grown until ~40% slack worth of open
    // sites exists for the free leaves.
    let mut bbox: Option<(i32, i32, i32, i32)> = None;
    for loc in fixed.iter().flatten() {
        bbox = Some(match bbox {
            None => (loc.row, loc.col, loc.row, loc.col),
            Some((r0, c0, r1, c1)) => (
                r0.min(loc.row),
                c0.min(loc.col),
                r1.max(loc.row),
                c1.max(loc.col),
            ),
        });
    }
    let needed = ((n_free as f64) * 1.4).ceil() as usize;
    let (row0, col0, mut height, mut width) = match bbox {
        Some((r0, c0, r1, c1)) => (r0, c0, (r1 - r0 + 1) as u32, (c1 - c0 + 1) as u32),
        None => {
            let side = ((n as f64 * 1.4).sqrt().ceil() as u32).max(2);
            (0, 0, side, side)
        }
    };
    let pinned_locs: std::collections::HashSet<Rloc> = fixed.iter().flatten().copied().collect();
    while ((height * width) as usize).saturating_sub(pinned_locs.len()) < needed {
        if width <= height {
            width += 1;
        } else {
            height += 1;
        }
    }
    let (width, height) = (width, height);
    let grid_side = width.max(height);
    let sites = (height * width) as usize;
    let site_at = |loc: Rloc| -> usize {
        ((loc.row - row0) as u32 * width + (loc.col - col0) as u32) as usize
    };
    let mut blocked = vec![false; sites];
    for &loc in &pinned_locs {
        blocked[site_at(loc)] = true;
    }

    // Net membership: for each net, the indices of placeable leaves on
    // it (leaf index within `leaves`).
    let mut leaf_index = std::collections::HashMap::new();
    for (i, &cell) in leaves.iter().enumerate() {
        leaf_index.insert(cell, i);
    }
    let mut nets: Vec<Vec<usize>> = vec![Vec::new(); flat.net_count()];
    for leaf in flat.leaves() {
        let Some(&li) = leaf_index.get(&leaf.cell) else {
            continue;
        };
        for conn in &leaf.conns {
            for net in &conn.nets {
                nets[net.index()].push(li);
            }
        }
    }
    // Keep only nets spanning 2+ placeable leaves; dedup membership.
    let mut net_members: Vec<Vec<usize>> = Vec::new();
    for mut members in nets {
        members.sort_unstable();
        members.dedup();
        if members.len() >= 2 {
            net_members.push(members);
        }
    }
    // Per-leaf net list for incremental cost evaluation.
    let mut leaf_nets: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ni, members) in net_members.iter().enumerate() {
        for &li in members {
            leaf_nets[li].push(ni);
        }
    }

    // Initial placement: pinned leaves at their sites, free leaves
    // shuffled onto the first open sites; remaining sites empty.
    // position[li] = site index; site_of[site] = Some(li) for free
    // leaves only (pinned leaves never participate in moves and may
    // legally share a CLB with each other).
    let mut rng = XorShift64::new(config.seed | 1);
    let open: Vec<usize> = (0..sites).filter(|&s| !blocked[s]).collect();
    let mut assign: Vec<usize> = (0..n_free).collect();
    for i in (1..n_free).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        assign.swap(i, j);
    }
    let mut position: Vec<usize> = vec![0; n];
    for (i, &li) in free.iter().enumerate() {
        position[li] = open[assign[i]];
    }
    for (li, f) in fixed.iter().enumerate() {
        if let Some(loc) = f {
            position[li] = site_at(*loc);
        }
    }
    let mut site_of: Vec<Option<usize>> = vec![None; sites];
    for &li in &free {
        site_of[position[li]] = Some(li);
    }

    let coord = |site: usize| -> (f64, f64) {
        ((site as u32 % width) as f64, (site as u32 / width) as f64)
    };
    let net_cost = |members: &[usize], position: &[usize]| -> f64 {
        let mut min_x = f64::MAX;
        let mut max_x = f64::MIN;
        let mut min_y = f64::MAX;
        let mut max_y = f64::MIN;
        for &li in members {
            let (x, y) = coord(position[li]);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (max_x - min_x) + (max_y - min_y)
    };
    let total_cost =
        |position: &[usize]| -> f64 { net_members.iter().map(|m| net_cost(m, position)).sum() };

    let initial_wirelength = total_cost(&position);
    let mut cost = initial_wirelength;
    let mut best_cost = cost;
    let mut best_position = position.clone();
    let mut temperature = config.initial_temperature;
    let mut accepted = 0u64;
    let total_moves = (config.moves_per_leaf as u64) * n_free as u64;
    let sweep = (n as u64 * 16).max(64);
    for step in 0..total_moves {
        // Pick a free leaf and a target site (occupied by another free
        // leaf → swap, empty → move; pinned sites are off limits).
        let li = free[(rng.next() % n_free as u64) as usize];
        let target = (rng.next() % sites as u64) as usize;
        let source = position[li];
        if target == source || blocked[target] {
            continue;
        }
        let other = site_of[target];
        // Affected nets: the leaf's nets plus the displaced leaf's.
        let mut affected: Vec<usize> = leaf_nets[li].clone();
        if let Some(lo) = other {
            affected.extend_from_slice(&leaf_nets[lo]);
        }
        affected.sort_unstable();
        affected.dedup();
        let before: f64 = affected
            .iter()
            .map(|&ni| net_cost(&net_members[ni], &position))
            .sum();
        // Apply.
        position[li] = target;
        site_of[target] = Some(li);
        site_of[source] = other;
        if let Some(lo) = other {
            position[lo] = source;
        }
        let after: f64 = affected
            .iter()
            .map(|&ni| net_cost(&net_members[ni], &position))
            .sum();
        let delta = after - before;
        let accept = delta <= 0.0 || {
            let u = (rng.next() as f64) / (u64::MAX as f64);
            u < (-delta / temperature.max(1e-9)).exp()
        };
        if accept {
            cost += delta;
            accepted += 1;
            if cost < best_cost {
                best_cost = cost;
                best_position.clone_from(&position);
            }
        } else {
            // Revert.
            if let Some(lo) = other {
                position[lo] = target;
            }
            site_of[source] = Some(li);
            site_of[target] = other;
            position[li] = source;
        }
        if step % sweep == sweep - 1 {
            temperature *= config.cooling;
        }
    }

    // Write the best-seen placement into a fresh clone.
    let mut out = circuit.clone();
    let abs_of = |site: usize| -> Rloc {
        Rloc::new(
            row0 + (site as u32 / width) as i32,
            col0 + (site as u32 % width) as i32,
        )
    };
    if pinned_mode {
        // Only the free leaves move; their absolute targets are
        // corrected for placed ancestors, since `set_rloc` composes
        // with ancestor offsets.
        let targets: Vec<(usize, Rloc)> = free
            .iter()
            .map(|&li| {
                let abs = abs_of(best_position[li]);
                let anc = out.ancestor_rloc(leaves[li]);
                (li, Rloc::new(abs.row - anc.row, abs.col - anc.col))
            })
            .collect();
        let mut ctx = out.root_ctx();
        for (li, rloc) in targets {
            ctx.set_rloc(leaves[li], rloc);
        }
    } else {
        out.strip_placement();
        let mut ctx = out.root_ctx();
        for (li, &cell) in leaves.iter().enumerate() {
            ctx.set_rloc(cell, abs_of(best_position[li]));
        }
    }
    Ok(PlacementResult {
        circuit: out,
        initial_wirelength,
        final_wirelength: best_cost,
        accepted_moves: accepted,
        grid_side,
    })
}

/// A tiny deterministic RNG (xorshift64*), keeping the placer free of
/// external dependencies.
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::estimate_timing;

    fn adder16() -> Circuit {
        use ipd_hdl::{PortSpec, Signal};
        use ipd_techlib::LogicCtx;
        // A hand-rolled 16-bit xor chain so this test does not depend
        // on ipd-modgen (which would be a dependency cycle).
        let mut c = Circuit::new("chain");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 16)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur: Signal = Signal::bit_of(a, 0);
        for b in 1..16 {
            let t = ctx.wire(&format!("t{b}"), 1);
            ctx.xor2(cur, Signal::bit_of(a, b), t).unwrap();
            cur = t.into();
        }
        ctx.fd(clk, cur, q).unwrap();
        c
    }

    #[test]
    fn annealing_reduces_wirelength() {
        let circuit = adder16();
        let result = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        assert!(result.final_wirelength <= result.initial_wirelength);
        assert!(result.accepted_moves > 0);
        assert!(result.grid_side >= 2);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let circuit = adder16();
        let a = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        let b = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        assert_eq!(a.final_wirelength, b.final_wirelength);
        let mut different_seed = PlacerConfig::default();
        different_seed.seed ^= 0xFFFF;
        let c = auto_place(&circuit, &different_seed).unwrap();
        // Same circuit, almost surely a different layout cost.
        assert!(a.accepted_moves > 0 && c.accepted_moves > 0);
    }

    #[test]
    fn auto_placed_beats_unplaced_timing() {
        let circuit = adder16();
        let mut unplaced = circuit.clone();
        unplaced.strip_placement();
        let placed = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        let t_unplaced = estimate_timing(&unplaced).unwrap();
        let t_placed = estimate_timing(&placed.circuit).unwrap();
        assert!(
            t_placed.critical_path_ns < t_unplaced.critical_path_ns,
            "placed {} vs unplaced {}",
            t_placed.critical_path_ns,
            t_unplaced.critical_path_ns
        );
        assert!(t_placed.placed_fraction > 0.5);
    }

    #[test]
    fn every_placeable_leaf_gets_a_unique_site() {
        let circuit = adder16();
        let placed = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        let flat = FlatNetlist::build(&placed.circuit).unwrap();
        let mut seen = std::collections::HashSet::new();
        for leaf in flat.leaves() {
            if let Some(loc) = leaf.loc {
                assert!(seen.insert(loc), "two leaves at {loc}");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn empty_circuit_is_fine() {
        let circuit = Circuit::new("empty");
        let result = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        assert_eq!(result.final_wirelength, 0.0);
    }

    /// The chain with its first 8 xors hand-placed down column 0.
    fn half_placed_chain() -> Circuit {
        use ipd_hdl::{PortSpec, Signal};
        use ipd_techlib::LogicCtx;
        let mut c = Circuit::new("half");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 16)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur: Signal = Signal::bit_of(a, 0);
        for b in 1..16 {
            let t = ctx.wire(&format!("t{b}"), 1);
            let x = ctx.xor2(cur, Signal::bit_of(a, b), t).unwrap();
            if b <= 8 {
                ctx.set_rloc(x, Rloc::new(b as i32 - 1, 0));
            }
            cur = t.into();
        }
        ctx.fd(clk, cur, q).unwrap();
        c
    }

    #[test]
    fn pinned_mode_keeps_hand_rlocs_and_places_the_rest() {
        let circuit = half_placed_chain();
        let flat_before = FlatNetlist::build(&circuit).unwrap();
        let hand: std::collections::HashMap<String, Rloc> = flat_before
            .leaves()
            .iter()
            .filter_map(|l| l.loc.map(|loc| (l.path.clone(), loc)))
            .collect();
        assert_eq!(hand.len(), 8, "fixture should be half placed");

        let config = PlacerConfig {
            mode: PlacerMode::Pinned,
            ..PlacerConfig::default()
        };
        let placed = auto_place(&circuit, &config).unwrap();
        let flat_after = FlatNetlist::build(&placed.circuit).unwrap();
        let mut moved = 0usize;
        for leaf in flat_after.leaves() {
            match hand.get(&leaf.path) {
                // Every hand RLOC survives bit-for-bit.
                Some(&loc) => assert_eq!(leaf.loc, Some(loc), "{} moved", leaf.path),
                None => {
                    if leaf.loc.is_some() {
                        moved += 1;
                    }
                }
            }
        }
        // All previously unplaced slice-consuming leaves got a site.
        assert_eq!(moved, 8, "7 free xors + 1 ff should be placed");
        // Free leaves never landed on a pinned CLB.
        let pinned: std::collections::HashSet<Rloc> = hand.values().copied().collect();
        for leaf in flat_after.leaves() {
            if !hand.contains_key(&leaf.path) {
                if let Some(loc) = leaf.loc {
                    assert!(!pinned.contains(&loc), "{} collides at {loc}", leaf.path);
                }
            }
        }
    }

    #[test]
    fn pinned_mode_with_everything_placed_is_identity() {
        let circuit = half_placed_chain();
        let config = PlacerConfig {
            mode: PlacerMode::Pinned,
            ..PlacerConfig::default()
        };
        let once = auto_place(&circuit, &config).unwrap();
        // A second pinned pass has nothing left to move.
        let fully = auto_place(&once.circuit, &config).unwrap();
        assert_eq!(fully.accepted_moves, 0);
        let a = FlatNetlist::build(&once.circuit).unwrap();
        let b = FlatNetlist::build(&fully.circuit).unwrap();
        let locs = |f: &FlatNetlist| -> Vec<(String, Option<Rloc>)> {
            f.leaves().iter().map(|l| (l.path.clone(), l.loc)).collect()
        };
        assert_eq!(locs(&a), locs(&b));
    }

    #[test]
    fn scratch_mode_is_unchanged_by_the_pinned_refactor() {
        // Scratch on a pre-placed circuit still discards placement and
        // produces the same result as scratch on the stripped circuit:
        // the pinned seam must not perturb the default path.
        let circuit = half_placed_chain();
        let mut stripped = circuit.clone();
        stripped.strip_placement();
        let a = auto_place(&circuit, &PlacerConfig::default()).unwrap();
        let b = auto_place(&stripped, &PlacerConfig::default()).unwrap();
        assert_eq!(a.final_wirelength, b.final_wirelength);
        assert_eq!(a.accepted_moves, b.accepted_moves);
    }
}
