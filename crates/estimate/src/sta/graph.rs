//! The timing graph: combinational gate nodes over flat nets, plus the
//! launch (startpoint) and capture (endpoint) structure the propagation
//! engine needs.
//!
//! Node construction deliberately mirrors the historical single-path
//! estimator gate for gate — same endpoint selection, same
//! clock-to-q/read-node modelling of SRL/RAM leaves, same level
//! accounting — so the STA-derived [`crate::TimingReport`] stays
//! bit-compatible with the old algorithm on purely combinational
//! designs (proven by a differential oracle test in `timing.rs`).

use ipd_hdl::{FlatKind, FlatNetlist, NetId, PortDir, Rloc};
use ipd_techlib::{DelayModel, NetDelaySource, PrimClass, PrimKind};

use crate::error::EstimateError;

/// One combinational gate: a primitive, or the async read port of an
/// SRL/RAM leaf (address → output).
pub(crate) struct GateNode {
    pub kind: PrimKind,
    pub inputs: Vec<NetId>,
    pub output: NetId,
    pub loc: Option<Rloc>,
}

impl GateNode {
    /// Whether traversing this gate adds a logic level (carry-chain
    /// elements and buffers do not, matching the legacy estimator).
    pub fn is_lut_level(&self) -> bool {
        !matches!(
            self.kind,
            PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd | PrimKind::Buf
        )
    }
}

/// What captures data at an endpoint.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum EndpointKind {
    /// A sequential data-side pin; `domain` is the structural clock
    /// root net of the capturing element.
    Seq { domain: NetId },
    /// A primary output port bit.
    Output,
    /// A black-box input pin (internals unknown; never constrained).
    BlackBox,
}

/// A capture point: where a timed path ends.
pub(crate) struct Endpoint {
    pub net: NetId,
    /// Extra sink delay (setup time for sequential pins).
    pub extra_ns: f64,
    pub sink_loc: Option<Rloc>,
    /// `instance.pin` for sequential/black-box pins, port name for
    /// outputs — the object timing waivers and `to` patterns match.
    pub name: String,
    pub kind: EndpointKind,
}

/// A sequential element's output side: nets launching at clock-to-q in
/// the element's clock domain.
pub(crate) struct SeqLaunch {
    pub nets: Vec<NetId>,
    pub domain: NetId,
    pub path: String,
}

/// The levelized combinational graph plus boundary structure.
pub(crate) struct TimingGraph<'a> {
    pub flat: &'a FlatNetlist,
    pub model: DelayModel,
    /// Where net delays come from; every edge-delay query in the
    /// engine resolves through this one seam.
    pub source: NetDelaySource,
    pub nodes: Vec<GateNode>,
    /// Node indices in dataflow (topological) order.
    pub order: Vec<usize>,
    /// Position of each node within `order` (for incremental worklists).
    pub node_pos: Vec<usize>,
    /// Net → producing node index.
    pub producer: Vec<Option<usize>>,
    /// Net → node indices reading it.
    pub net_readers: Vec<Vec<u32>>,
    pub fanout: Vec<usize>,
    pub driver_loc: Vec<Option<Rloc>>,
    /// Net → driven by a carry-chain element (MUXCY/XORCY/MULT_AND);
    /// a carry-driven net feeding another carry element rides the
    /// dedicated carry route instead of general fabric.
    pub driver_carry: Vec<bool>,
    pub endpoints: Vec<Endpoint>,
    pub seq_launches: Vec<SeqLaunch>,
    /// Primary input ports: (name, bit nets).
    pub input_ports: Vec<(String, Vec<NetId>)>,
    /// Black-box output launches: (instance path, nets).
    pub bb_launches: Vec<(String, Vec<NetId>)>,
    pub placed_fraction: f64,
}

impl<'a> TimingGraph<'a> {
    /// Builds the graph with an explicit net-delay source
    /// ([`NetDelaySource::Heuristic`] reproduces the legacy distance
    /// model bit for bit).
    ///
    /// # Errors
    ///
    /// Unknown primitives and combinational loops fail, exactly as in
    /// the legacy estimator.
    pub fn build_with_source(
        flat: &'a FlatNetlist,
        model: &DelayModel,
        source: NetDelaySource,
    ) -> Result<Self, EstimateError> {
        let net_count = flat.net_count();
        let mut driver_loc: Vec<Option<Rloc>> = vec![None; net_count];
        let mut driver_carry = vec![false; net_count];
        let mut fanout = vec![0usize; net_count];
        for (net, readers) in flat.readers().iter().enumerate() {
            fanout[net] = readers.len();
        }

        let mut nodes: Vec<GateNode> = Vec::new();
        let mut endpoints: Vec<Endpoint> = Vec::new();
        let mut seq_launches: Vec<SeqLaunch> = Vec::new();
        let mut bb_launches: Vec<(String, Vec<NetId>)> = Vec::new();
        // Clock pins to resolve into domains once the producer table
        // exists: (seq_launches index, endpoint range, clock net).
        let mut pending_domains: Vec<(usize, std::ops::Range<usize>, NetId)> = Vec::new();
        let mut placed = 0usize;
        let mut total_leaves = 0usize;

        for leaf in flat.leaves() {
            total_leaves += 1;
            if leaf.loc.is_some() {
                placed += 1;
            }
            match &leaf.kind {
                FlatKind::BlackBox(_) => {
                    let mut outs = Vec::new();
                    for conn in &leaf.conns {
                        match conn.dir {
                            PortDir::Input => {
                                for (bit, &n) in conn.nets.iter().enumerate() {
                                    endpoints.push(Endpoint {
                                        net: n,
                                        extra_ns: 0.0,
                                        sink_loc: leaf.loc,
                                        name: pin_name(
                                            &leaf.path,
                                            &conn.port,
                                            bit,
                                            conn.nets.len(),
                                        ),
                                        kind: EndpointKind::BlackBox,
                                    });
                                }
                            }
                            _ => {
                                for &n in &conn.nets {
                                    driver_loc[n.index()] = leaf.loc;
                                    outs.push(n);
                                }
                            }
                        }
                    }
                    bb_launches.push((leaf.path.clone(), outs));
                }
                FlatKind::Primitive(p) => {
                    let kind = PrimKind::from_primitive(p)?;
                    match kind.class() {
                        PrimClass::Comb | PrimClass::Rom16 => {
                            let mut inputs = Vec::new();
                            let mut output = None;
                            for conn in &leaf.conns {
                                match conn.dir {
                                    PortDir::Input => inputs.extend(conn.nets.iter().copied()),
                                    _ => output = conn.nets.first().copied(),
                                }
                            }
                            if let Some(output) = output {
                                driver_loc[output.index()] = leaf.loc;
                                driver_carry[output.index()] = kind.is_carry();
                                nodes.push(GateNode {
                                    kind,
                                    inputs,
                                    output,
                                    loc: leaf.loc,
                                });
                            }
                        }
                        PrimClass::Const(_) => {
                            for conn in &leaf.conns {
                                if conn.dir != PortDir::Input {
                                    for &n in &conn.nets {
                                        driver_loc[n.index()] = leaf.loc;
                                    }
                                }
                            }
                        }
                        PrimClass::Ff { .. } => {
                            let mut clock = None;
                            let mut outs = Vec::new();
                            let ep_start = endpoints.len();
                            for conn in &leaf.conns {
                                match (conn.port.as_str(), conn.dir) {
                                    ("c", _) => clock = conn.nets.first().copied(),
                                    (_, PortDir::Input) => {
                                        for (bit, &n) in conn.nets.iter().enumerate() {
                                            endpoints.push(Endpoint {
                                                net: n,
                                                extra_ns: model.setup_ns,
                                                sink_loc: leaf.loc,
                                                name: pin_name(
                                                    &leaf.path,
                                                    &conn.port,
                                                    bit,
                                                    conn.nets.len(),
                                                ),
                                                kind: EndpointKind::Seq {
                                                    domain: NetId::from_index(0),
                                                },
                                            });
                                        }
                                    }
                                    (_, _) => {
                                        for &n in &conn.nets {
                                            driver_loc[n.index()] = leaf.loc;
                                            outs.push(n);
                                        }
                                    }
                                }
                            }
                            if let Some(clock) = clock {
                                pending_domains.push((
                                    seq_launches.len(),
                                    ep_start..endpoints.len(),
                                    clock,
                                ));
                                seq_launches.push(SeqLaunch {
                                    nets: outs,
                                    domain: clock,
                                    path: leaf.path.clone(),
                                });
                            }
                        }
                        PrimClass::Srl16 | PrimClass::Ram16 => {
                            let mut clock = None;
                            let mut addr = Vec::new();
                            let mut out_net = None;
                            let ep_start = endpoints.len();
                            for conn in &leaf.conns {
                                match (conn.port.as_str(), conn.dir) {
                                    ("c", _) => clock = conn.nets.first().copied(),
                                    ("a", _) => addr = conn.nets.clone(),
                                    (_, PortDir::Input) => {
                                        for (bit, &n) in conn.nets.iter().enumerate() {
                                            endpoints.push(Endpoint {
                                                net: n,
                                                extra_ns: model.setup_ns,
                                                sink_loc: leaf.loc,
                                                name: pin_name(
                                                    &leaf.path,
                                                    &conn.port,
                                                    bit,
                                                    conn.nets.len(),
                                                ),
                                                kind: EndpointKind::Seq {
                                                    domain: NetId::from_index(0),
                                                },
                                            });
                                        }
                                    }
                                    (_, _) => out_net = conn.nets.first().copied(),
                                }
                            }
                            if let Some(output) = out_net {
                                driver_loc[output.index()] = leaf.loc;
                                // State launches at clock-to-q; the
                                // address path reads through the node.
                                nodes.push(GateNode {
                                    kind,
                                    inputs: addr,
                                    output,
                                    loc: leaf.loc,
                                });
                                if let Some(clock) = clock {
                                    pending_domains.push((
                                        seq_launches.len(),
                                        ep_start..endpoints.len(),
                                        clock,
                                    ));
                                    seq_launches.push(SeqLaunch {
                                        nets: vec![output],
                                        domain: clock,
                                        path: leaf.path.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut input_ports = Vec::new();
        for port in flat.ports() {
            match port.dir {
                PortDir::Output => {
                    for (bit, &n) in port.nets.iter().enumerate() {
                        endpoints.push(Endpoint {
                            net: n,
                            extra_ns: 0.0,
                            sink_loc: None,
                            name: bit_name(&port.name, bit, port.nets.len()),
                            kind: EndpointKind::Output,
                        });
                    }
                }
                _ => input_ports.push((port.name.clone(), port.nets.clone())),
            }
        }

        let mut producer: Vec<Option<usize>> = vec![None; net_count];
        for (i, n) in nodes.iter().enumerate() {
            producer[n.output.index()] = Some(i);
        }
        let mut net_readers: Vec<Vec<u32>> = vec![Vec::new(); net_count];
        for (i, n) in nodes.iter().enumerate() {
            for input in &n.inputs {
                net_readers[input.index()].push(i as u32);
            }
        }

        let order =
            topo_order(&nodes, &producer).map_err(|net| EstimateError::CombinationalLoop {
                net: flat.nets()[net.index()].name.clone(),
            })?;
        let mut node_pos = vec![0usize; nodes.len()];
        for (pos, &i) in order.iter().enumerate() {
            node_pos[i] = pos;
        }

        let mut graph = TimingGraph {
            flat,
            model: model.clone(),
            source,
            nodes,
            order,
            node_pos,
            producer,
            net_readers,
            fanout,
            driver_loc,
            driver_carry,
            endpoints,
            seq_launches,
            input_ports,
            bb_launches,
            placed_fraction: if total_leaves == 0 {
                0.0
            } else {
                placed as f64 / total_leaves as f64
            },
        };
        // Resolve clock pins to structural domain roots now that the
        // producer table exists.
        for (launch, eps, clock) in pending_domains {
            let domain = graph.clock_root(clock);
            graph.seq_launches[launch].domain = domain;
            for ep in eps {
                graph.endpoints[ep].kind = EndpointKind::Seq { domain };
            }
        }
        Ok(graph)
    }

    /// Follows buffer chains (`buf`/`bufg`/`ibuf`) backwards to the
    /// canonical clock source net, matching `ipd-lint`'s domain rule.
    pub fn clock_root(&self, mut net: NetId) -> NetId {
        let mut hops = 0usize;
        while let Some(pi) = self.producer[net.index()] {
            let node = &self.nodes[pi];
            let through_buffer =
                matches!(node.kind, PrimKind::Buf | PrimKind::Bufg | PrimKind::Ibuf);
            if !through_buffer || hops > self.flat.net_count() {
                break;
            }
            net = node.inputs[0];
            hops += 1;
        }
        net
    }

    /// Routing delay from a net's driver to a non-carry sink at
    /// `to_loc` (endpoints: FF data pins, output ports, black boxes).
    pub fn edge_delay(&self, from: NetId, to_loc: Option<Rloc>) -> f64 {
        self.source.edge_delay(
            &self.model,
            from,
            self.driver_loc[from.index()],
            to_loc,
            self.fanout[from.index()],
            false,
        )
    }

    /// Routing delay from a net's driver into a gate node, using the
    /// dedicated carry route for carry-to-carry hops.
    pub fn gate_edge_delay(&self, from: NetId, node: &GateNode) -> f64 {
        self.source.edge_delay(
            &self.model,
            from,
            self.driver_loc[from.index()],
            node.loc,
            self.fanout[from.index()],
            self.driver_carry[from.index()] && node.kind.is_carry(),
        )
    }

    /// Representative name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.flat.nets()[net.index()].name
    }
}

/// `pin` bit of a multi-bit connection on `path`, e.g. `u0/acc.d[3]`.
fn pin_name(path: &str, port: &str, bit: usize, width: usize) -> String {
    if width > 1 {
        format!("{path}.{port}[{bit}]")
    } else {
        format!("{path}.{port}")
    }
}

/// Port-bit object name, e.g. `p` or `p[3]`.
fn bit_name(name: &str, bit: usize, width: usize) -> String {
    if width > 1 {
        format!("{name}[{bit}]")
    } else {
        name.to_owned()
    }
}

/// Kahn topological sort over gate nodes; `Err(net)` names a net on a
/// combinational cycle.
fn topo_order(nodes: &[GateNode], producer: &[Option<usize>]) -> Result<Vec<usize>, NetId> {
    let mut indeg = vec![0usize; nodes.len()];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for input in &n.inputs {
            if let Some(p) = producer[input.index()] {
                if p != i {
                    indeg[i] += 1;
                    consumers[p].push(i);
                }
            }
        }
    }
    let mut queue: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &c in &consumers[i] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    if order.len() != nodes.len() {
        let mut emitted = vec![false; nodes.len()];
        for &i in &order {
            emitted[i] = true;
        }
        let cyclic = (0..nodes.len())
            .find(|i| !emitted[*i])
            .expect("cycle exists");
        return Err(nodes[cyclic].output);
    }
    Ok(order)
}
