//! Graph-based static timing analysis.
//!
//! Where [`crate::estimate_timing`] answers "how fast could this
//! run?", this module answers the question a licensing customer
//! actually asks: *"does it close at my clock?"* — forward
//! arrival-time and (lazy) backward required-time propagation over the
//! levelized combinational graph, per-endpoint setup slack under a
//! [`TimingConstraints`] set, top-K critical-path enumeration,
//! per-domain slack histograms, and an incremental mode that
//! re-propagates only the fan-out cone of edited constraint values.
//!
//! Constraint text format (see [`TimingConstraints::parse`]):
//!
//! ```text
//! clock sys 6.667 clk            # name, period ns, clock-net pattern
//! input-delay sys 1.2 data_in*   # arrival of inputs relative to sys
//! output-delay sys 0.8 result*   # external requirement on outputs
//! false-path top/sync0 top/meta* # never timed
//! multicycle 2 top/slow/* top/acc*
//! ```
//!
//! Patterns use lint-waiver syntax: exact name or trailing-`*` prefix.

mod constraints;
mod engine;
mod graph;
mod report;

pub use constraints::{
    ClockConstraint, ExceptionKind, PathException, PortDelay, TimingConstraints, MAX_CLOCKS,
    MAX_DELAYS, MAX_EXCEPTIONS, MAX_MULTICYCLE,
};
pub use engine::{Sta, TOP_PATHS};
pub use report::{
    ClockSlack, EndpointSlack, PathReport, PathStep, SlackHistogram, SlackSummary, StaReport,
    HISTOGRAM_EDGES_NS,
};

use ipd_hdl::Circuit;

use crate::error::EstimateError;

/// Flattens a circuit and runs a full STA under `constraints` with the
/// default Virtex delay model.
///
/// # Errors
///
/// Fails on flattening errors, unknown primitives, or combinational
/// loops.
pub fn analyze_timing(
    circuit: &Circuit,
    constraints: &TimingConstraints,
) -> Result<StaReport, EstimateError> {
    Sta::analyze_circuit(circuit, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{Circuit, FlatNetlist, PortSpec, Rloc};
    use ipd_techlib::{DelayModel, LogicCtx};

    /// FF -> n inverters -> FF, single clock domain.
    fn inv_chain(n: usize) -> Circuit {
        let mut c = Circuit::new("chain");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur = ctx.wire("s0", 1);
        ctx.fd(clk, d, cur).unwrap();
        for i in 0..n {
            let next = ctx.wire(&format!("s{}", i + 1), 1);
            ctx.inv(cur, next).unwrap();
            cur = next;
        }
        ctx.fd(clk, cur, q).unwrap();
        c
    }

    fn analyze(c: &Circuit, text: &str) -> StaReport {
        let constraints = TimingConstraints::parse(text).expect("constraints");
        analyze_timing(c, &constraints).expect("sta")
    }

    #[test]
    fn slack_tracks_period() {
        let c = inv_chain(6);
        let tight = analyze(&c, "clock sys 2 clk\n");
        let loose = analyze(&c, "clock sys 100 clk\n");
        assert!(tight.violations() > 0, "{}", tight.summary());
        assert_eq!(loose.violations(), 0);
        // Same arrivals, shifted requirement.
        let wt = tight.worst_slack().unwrap();
        let wl = loose.worst_slack().unwrap();
        assert!((wl - wt - 98.0).abs() < 1e-9, "wt={wt} wl={wl}");
        // Every sequential endpoint (2 FF d pins) is reported.
        assert!(loose.endpoints.iter().any(|e| e.endpoint.ends_with(".d")));
        assert!(!loose.paths.is_empty());
        assert_eq!(loose.paths[0].slack_ns, wl);
    }

    #[test]
    fn unmatched_clock_leaves_endpoints_unconstrained() {
        let c = inv_chain(2);
        let r = analyze(&c, "clock sys 10 no_such_net\n");
        assert_eq!(r.endpoints.len(), 0);
        // Both FF d-pins and the primary output are unconstrained.
        assert!(r.unconstrained.len() >= 3, "{:?}", r.unconstrained);
    }

    #[test]
    fn output_delay_times_primary_outputs() {
        let c = inv_chain(2);
        let without = analyze(&c, "clock sys 10 clk\n");
        let with = analyze(&c, "clock sys 10 clk\noutput-delay sys 1.5 q\n");
        assert!(without.unconstrained.contains(&"q".to_owned()));
        assert!(!with.unconstrained.contains(&"q".to_owned()));
        let q = with.endpoints.iter().find(|e| e.endpoint == "q").unwrap();
        assert!((q.required_ns - 8.5).abs() < 1e-9);
    }

    #[test]
    fn false_path_suppresses_and_multicycle_relaxes() {
        let c = inv_chain(8);
        let base = analyze(&c, "clock sys 4 clk\n");
        assert!(base.violations() > 0);
        let worst = base.endpoints.first().unwrap().clone();
        // The failing endpoint is the second FF's d pin, launched from
        // the first FF. A false path from that startpoint kills the
        // check entirely...
        let fp = analyze(
            &c,
            &format!(
                "clock sys 4 clk\nfalse-path {} {}\n",
                worst.startpoint, worst.endpoint
            ),
        );
        let ep = fp
            .endpoints
            .iter()
            .find(|e| e.endpoint == worst.endpoint)
            .unwrap();
        assert!(
            ep.slack_ns > worst.slack_ns,
            "false path ignored: {} vs {}",
            ep.slack_ns,
            worst.slack_ns
        );
        assert_eq!(ep.startpoint, "(none)");
        // ...while a 3-cycle multicycle keeps it timed but relaxed by
        // exactly two extra periods.
        let mc = analyze(
            &c,
            &format!(
                "clock sys 4 clk\nmulticycle 3 {} {}\n",
                worst.startpoint, worst.endpoint
            ),
        );
        let ep = mc
            .endpoints
            .iter()
            .find(|e| e.endpoint == worst.endpoint)
            .unwrap();
        assert!((ep.slack_ns - (worst.slack_ns + 8.0)).abs() < 1e-9);
        assert_eq!(ep.startpoint, worst.startpoint);
    }

    #[test]
    fn cross_domain_paths_are_not_timed() {
        // FF(clk_a) -> inv -> FF(clk_b): the capture endpoint must not
        // see the clk_a launch; its worst path comes from nowhere.
        let mut c = Circuit::new("cdc");
        let mut ctx = c.root_ctx();
        let clk_a = ctx.add_port(PortSpec::input("clk_a", 1)).unwrap();
        let clk_b = ctx.add_port(PortSpec::input("clk_b", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let s0 = ctx.wire("s0", 1);
        let s1 = ctx.wire("s1", 1);
        ctx.fd(clk_a, d, s0).unwrap();
        ctx.inv(s0, s1).unwrap();
        ctx.fd(clk_b, s1, q).unwrap();
        let r = analyze(&c, "clock a 10 clk_a\nclock b 10 clk_b\n");
        let capture = r
            .endpoints
            .iter()
            .find(|e| e.clock == "b" && e.endpoint.ends_with(".d"))
            .expect("clk_b capture endpoint");
        assert_eq!(capture.startpoint, "(none)", "{capture:?}");
    }

    #[test]
    fn input_delay_shifts_arrival_and_reanalyze_matches_cold() {
        let c = inv_chain(4);
        let flat = FlatNetlist::build(&c).unwrap();
        let mut sta = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        let mut base = TimingConstraints::new();
        base.clock("sys", 20.0, "clk");
        base.input_delay("sys", 0.0, "d");
        let cold0 = sta.analyze(&base);
        let cold_work = sta.last_work();
        assert!(cold_work > 0);

        let mut edited = TimingConstraints::new();
        edited.clock("sys", 20.0, "clk");
        edited.input_delay("sys", 3.5, "d");
        let inc = sta.reanalyze(&edited);
        let inc_work = sta.last_work();
        // The edited input feeds only the first FF's d pin: a shallow
        // cone, far below a full propagation.
        assert!(
            inc_work * 5 <= cold_work,
            "incremental {inc_work} vs cold {cold_work}"
        );
        // And the result is identical to a cold run.
        let mut fresh = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        let cold = fresh.analyze(&edited);
        assert_eq!(inc, cold);
        // The d-port endpoint moved by exactly the delay edit.
        let find = |r: &StaReport| {
            r.endpoints
                .iter()
                .find(|e| e.startpoint == "d")
                .map(|e| e.slack_ns)
                .unwrap()
        };
        assert!((find(&cold0) - find(&inc) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn period_only_edit_does_no_propagation_work() {
        let c = inv_chain(16);
        let flat = FlatNetlist::build(&c).unwrap();
        let mut sta = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        let mut base = TimingConstraints::new();
        base.clock("sys", 20.0, "clk");
        sta.analyze(&base);
        let cold_work = sta.last_work();
        let mut edited = TimingConstraints::new();
        edited.clock("sys", 5.0, "clk");
        let r = sta.reanalyze(&edited);
        assert_eq!(sta.last_work(), 0, "cold was {cold_work}");
        let mut fresh = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        assert_eq!(r, fresh.analyze(&edited));
    }

    #[test]
    fn shape_change_falls_back_to_cold() {
        let c = inv_chain(4);
        let flat = FlatNetlist::build(&c).unwrap();
        let mut sta = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        let mut base = TimingConstraints::new();
        base.clock("sys", 20.0, "clk");
        sta.analyze(&base);
        let mut edited = TimingConstraints::new();
        edited.clock("sys", 20.0, "clk");
        edited.false_path("d", "*");
        let r = sta.reanalyze(&edited);
        let mut fresh = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        assert_eq!(r, fresh.analyze(&edited));
    }

    #[test]
    fn net_slack_exposes_interior_nets() {
        let c = inv_chain(4);
        let flat = FlatNetlist::build(&c).unwrap();
        let mut sta = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        let mut constraints = TimingConstraints::new();
        constraints.clock("sys", 9.0, "clk");
        let report = sta.analyze(&constraints);
        let worst = report.worst_slack().unwrap();
        // Nets on the single critical chain all carry the endpoint's
        // slack; the clock net is untimed.
        let mid = sta.net_slack("chain/s2").expect("timed net");
        assert!((mid - worst).abs() < 1e-9, "mid={mid} worst={worst}");
        assert_eq!(sta.net_slack("chain/clk"), None);
        assert_eq!(sta.net_slack("does_not_exist"), None);
    }

    #[test]
    fn placed_designs_report_placement_and_tighter_slack() {
        let mut placed = Circuit::new("p");
        {
            let mut ctx = placed.root_ctx();
            let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
            let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
            let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
            let s0 = ctx.wire("s0", 1);
            let s1 = ctx.wire("s1", 1);
            let f0 = ctx.fd(clk, d, s0).unwrap();
            ctx.set_rloc(f0, Rloc::new(0, 0));
            let i0 = ctx.inv(s0, s1).unwrap();
            ctx.set_rloc(i0, Rloc::new(0, 1));
            let f1 = ctx.fd(clk, s1, q).unwrap();
            ctx.set_rloc(f1, Rloc::new(0, 2));
        }
        let flat = FlatNetlist::build(&placed).unwrap();
        let mut sta = Sta::build(&flat, &DelayModel::virtex()).unwrap();
        assert!(sta.placed_fraction() > 0.99);
        let mut constraints = TimingConstraints::new();
        constraints.clock("sys", 10.0, "clk");
        let r = sta.analyze(&constraints);
        assert_eq!(r.violations(), 0);
    }

    #[test]
    fn srl_and_carry_designs_analyze() {
        let mut c = Circuit::new("mix");
        {
            let mut ctx = c.root_ctx();
            let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
            let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
            let en = ctx.add_port(PortSpec::input("en", 1)).unwrap();
            let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
            let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
            let s = ctx.wire("s", 1);
            ctx.srl16(0, clk, en, d, a, s).unwrap();
            ctx.fd(clk, s, q).unwrap();
        }
        let r = analyze(&c, "clock sys 12 clk\n");
        // SRL write pins + FF d pin are all sequential endpoints.
        assert!(r.endpoints.len() >= 3, "{:#?}", r.endpoints);
        assert_eq!(r.violations(), 0);
    }
}
