//! The propagation engine: forward arrival times per launch class,
//! lazily computed backward required times, constraint evaluation into
//! an [`StaReport`], and an incremental mode that re-propagates only
//! the fan-out cone of edited constraint values.
//!
//! # Launch classes
//!
//! Exceptions (`false-path` / `multicycle`) are keyed by *startpoint*:
//! two paths converging on one endpoint may carry different exceptions.
//! Instead of per-path search, arrivals propagate per **launch class**
//! — the pair `(launch clock, exception mask)` where bit `i` of the
//! mask means "launched from a startpoint matching exception `i`'s
//! `from` pattern". Classes are few in practice (startpoints cluster on
//! the same clock and patterns), so storage is `nets × classes`.
//!
//! A class with no launch clock (`None`) models absolute-time arrivals
//! (primary inputs without `input-delay`, black-box outputs, constants)
//! and is checked against every endpoint; a class clocked by `k` is
//! checked only against endpoints captured by `k` — cross-domain paths
//! are not timed (that is `ipd-lint`'s CDC pass's job).

use std::collections::HashMap;

use ipd_hdl::{Circuit, FlatNetlist, NetId};
use ipd_techlib::{DelayModel, NetDelaySource};

use super::constraints::{
    clock_pattern_matches, pattern_matches, ExceptionKind, TimingConstraints,
};
use super::graph::{EndpointKind, TimingGraph};
use super::report::{ClockSlack, EndpointSlack, PathReport, PathStep, StaReport};
use crate::error::EstimateError;

/// How many critical paths [`Sta::analyze`] enumerates.
pub const TOP_PATHS: usize = 5;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct LaunchClass {
    clock: Option<usize>,
    mask: u64,
}

/// A resolved startpoint seed: `net` starts at `at_ns` in `class`.
#[derive(Clone, PartialEq)]
struct Seed {
    net: NetId,
    class: usize,
    at_ns: f64,
    name: String,
}

/// Launch classes, startpoint seeds, and each sequential domain's
/// resolved capture clock, as produced by seed construction.
type SeedTable = (Vec<LaunchClass>, Vec<Seed>, Vec<(NetId, Option<usize>)>);

/// The static timing analyzer for one flattened design.
///
/// Build once, then [`Sta::analyze`] under any number of constraint
/// sets; [`Sta::reanalyze`] exploits the previous run when only
/// constraint *values* changed.
///
/// # Examples
///
/// ```
/// use ipd_estimate::{Sta, TimingConstraints};
/// use ipd_hdl::{Circuit, FlatNetlist, PortSpec};
/// use ipd_techlib::{DelayModel, LogicCtx};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new("demo");
/// let mut ctx = c.root_ctx();
/// let clk = ctx.add_port(PortSpec::input("clk", 1))?;
/// let d = ctx.add_port(PortSpec::input("d", 1))?;
/// let q = ctx.add_port(PortSpec::output("q", 1))?;
/// ctx.fd(clk, d, q)?;
/// let flat = FlatNetlist::build(&c)?;
/// let mut sta = Sta::build(&flat, &DelayModel::virtex())?;
/// let mut constraints = TimingConstraints::new();
/// constraints.clock("sys", 10.0, "clk");
/// let report = sta.analyze(&constraints);
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub struct Sta<'a> {
    graph: TimingGraph<'a>,
    constraints: TimingConstraints,
    classes: Vec<LaunchClass>,
    seeds: Vec<Seed>,
    /// `(net, class)` → (seed time, seed index) for node recompute.
    seed_at: HashMap<(u32, u32), (f64, u32)>,
    /// Distinct structural clock-domain roots → constraint clock index.
    domain_clock: Vec<(NetId, Option<usize>)>,
    arrival: Vec<f64>,
    pred: Vec<Option<NetId>>,
    level: Vec<u32>,
    required: Vec<f64>,
    required_valid: bool,
    queued: Vec<bool>,
    work: u64,
    analyzed: bool,
    legacy: bool,
}

impl std::fmt::Debug for Sta<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sta")
            .field("nets", &self.graph.flat.net_count())
            .field("nodes", &self.graph.nodes.len())
            .field("classes", &self.classes.len())
            .field("analyzed", &self.analyzed)
            .finish()
    }
}

impl<'a> Sta<'a> {
    /// Builds the analyzer over a flattened design.
    ///
    /// # Errors
    ///
    /// Fails on unknown primitives or combinational loops.
    pub fn build(flat: &'a FlatNetlist, model: &DelayModel) -> Result<Self, EstimateError> {
        Sta::build_with_source(flat, model, NetDelaySource::Heuristic)
    }

    /// Builds the analyzer with an explicit [`NetDelaySource`] —
    /// [`NetDelaySource::Heuristic`] reproduces [`Sta::build`] bit for
    /// bit; [`NetDelaySource::Routed`] backannotates routed wire
    /// delays into every net-delay lookup.
    ///
    /// # Errors
    ///
    /// As for [`Sta::build`].
    pub fn build_with_source(
        flat: &'a FlatNetlist,
        model: &DelayModel,
        source: NetDelaySource,
    ) -> Result<Self, EstimateError> {
        let graph = TimingGraph::build_with_source(flat, model, source)?;
        let queued = vec![false; graph.nodes.len()];
        Ok(Sta {
            graph,
            constraints: TimingConstraints::new(),
            classes: Vec::new(),
            seeds: Vec::new(),
            seed_at: HashMap::new(),
            domain_clock: Vec::new(),
            arrival: Vec::new(),
            pred: Vec::new(),
            level: Vec::new(),
            required: Vec::new(),
            required_valid: false,
            queued,
            work: 0,
            analyzed: false,
            legacy: false,
        })
    }

    /// Convenience: flatten and analyze a circuit in one call.
    ///
    /// # Errors
    ///
    /// As for [`Sta::build`].
    pub fn analyze_circuit(
        circuit: &Circuit,
        constraints: &TimingConstraints,
    ) -> Result<StaReport, EstimateError> {
        let flat = FlatNetlist::build(circuit)?;
        let mut sta = Sta::build(&flat, &DelayModel::virtex())?;
        Ok(sta.analyze(constraints))
    }

    /// Full (cold) analysis under a constraint set.
    pub fn analyze(&mut self, constraints: &TimingConstraints) -> StaReport {
        self.work = 0;
        self.propagate(constraints, false);
        self.build_report()
    }

    /// Incremental re-analysis: when only constraint *values* changed
    /// (clock periods, delay values) since the last run, re-propagates
    /// only the fan-out cone of edited seeds; falls back to a cold
    /// [`Sta::analyze`] when patterns, names or exceptions changed.
    pub fn reanalyze(&mut self, constraints: &TimingConstraints) -> StaReport {
        if !self.analyzed || self.legacy || !same_shape(&self.constraints, constraints) {
            return self.analyze(constraints);
        }
        self.work = 0;
        self.required_valid = false;
        self.constraints = constraints.clone();
        let nc = self.classes.len();

        // Rebuild seeds; the shape check guarantees identical classes
        // and seed order, so a positional diff finds edited values.
        let (classes, seeds, domain_clock) = self.build_seeds(constraints, false);
        debug_assert_eq!(classes.len(), self.classes.len());
        self.domain_clock = domain_clock;
        let mut dirty_nets: Vec<NetId> = Vec::new();
        for (new, old) in seeds.iter().zip(&self.seeds) {
            if new.at_ns != old.at_ns {
                dirty_nets.push(new.net);
            }
        }
        if !dirty_nets.is_empty() {
            self.seeds = seeds;
            self.rebuild_seed_index();
            // Re-seed dirty nets (producer-less nets carry exactly
            // their seed values), then walk the cone in topo order.
            for &net in &dirty_nets {
                if self.graph.producer[net.index()].is_none() {
                    for c in 0..nc {
                        let ix = net.index() * nc + c;
                        self.arrival[ix] = f64::NEG_INFINITY;
                        self.pred[ix] = None;
                        self.level[ix] = 0;
                    }
                    for seed in &self.seeds {
                        if seed.net == net {
                            let ix = net.index() * nc + seed.class;
                            if seed.at_ns > self.arrival[ix] {
                                self.arrival[ix] = seed.at_ns;
                            }
                        }
                    }
                } else {
                    // Seed on a node output (clock-to-q): recompute via
                    // the node itself below.
                }
            }
            self.queued.iter_mut().for_each(|q| *q = false);
            let mut heap = std::collections::BinaryHeap::new();
            let push = |heap: &mut std::collections::BinaryHeap<_>,
                        queued: &mut Vec<bool>,
                        graph: &TimingGraph<'_>,
                        net: NetId| {
                for &r in &graph.net_readers[net.index()] {
                    let r = r as usize;
                    if !queued[r] {
                        queued[r] = true;
                        heap.push(std::cmp::Reverse((graph.node_pos[r], r)));
                    }
                }
            };
            for &net in &dirty_nets {
                if let Some(p) = self.graph.producer[net.index()] {
                    if !self.queued[p] {
                        self.queued[p] = true;
                        heap.push(std::cmp::Reverse((self.graph.node_pos[p], p)));
                    }
                } else {
                    push(&mut heap, &mut self.queued, &self.graph, net);
                }
            }
            while let Some(std::cmp::Reverse((_, ni))) = heap.pop() {
                if self.recompute_node(ni) {
                    let out = self.graph.nodes[ni].output;
                    push(&mut heap, &mut self.queued, &self.graph, out);
                }
            }
        } else {
            self.seeds = seeds;
            self.rebuild_seed_index();
        }
        self.build_report()
    }

    /// Node evaluations performed by the last `analyze`/`reanalyze`
    /// (one unit per node × class) — the incremental-speedup metric.
    #[must_use]
    pub fn last_work(&self) -> u64 {
        self.work
    }

    /// Fraction of leaves carrying absolute placement.
    #[must_use]
    pub fn placed_fraction(&self) -> f64 {
        self.graph.placed_fraction
    }

    /// Setup slack at a named net: minimum over launch classes of
    /// required minus arrival time. `None` when the net is untimed or
    /// unknown. Computes the backward required-time pass on first use
    /// after an analysis.
    pub fn net_slack(&mut self, net_name: &str) -> Option<f64> {
        let net = (0..self.graph.flat.net_count())
            .find(|&i| self.graph.flat.nets()[i].name == net_name)
            .map(NetId::from_index)?;
        self.ensure_required();
        let nc = self.classes.len();
        let mut best: Option<f64> = None;
        for c in 0..nc {
            let ix = net.index() * nc + c;
            let (a, r) = (self.arrival[ix], self.required[ix]);
            if a > f64::NEG_INFINITY && r < f64::INFINITY {
                let s = r - a;
                best = Some(best.map_or(s, |b: f64| b.min(s)));
            }
        }
        best
    }

    /// Legacy-mode propagation: every structural clock domain becomes
    /// its own synthetic launch clock so [`crate::estimate_timing`] can
    /// report the worst *sequential* path per domain without any
    /// user-supplied constraints.
    pub(crate) fn analyze_legacy(&mut self) {
        self.work = 0;
        self.propagate(&TimingConstraints::new(), true);
    }

    /// After [`Sta::analyze_legacy`]: worst data arrival over
    /// sequential endpoints (or over pin-to-pin endpoints when the
    /// design has none), with the legacy level count and net path.
    pub(crate) fn legacy_worst(&self) -> (f64, usize, Vec<String>) {
        let has_seq = self
            .graph
            .endpoints
            .iter()
            .any(|e| matches!(e.kind, EndpointKind::Seq { .. }));
        let nc = self.classes.len();
        let mut critical = 0.0f64;
        let mut worst: Option<(NetId, usize)> = None;
        for ep in &self.graph.endpoints {
            let capture = match ep.kind {
                EndpointKind::Seq { domain } => {
                    if !has_seq {
                        continue;
                    }
                    self.clock_of_domain(domain)
                }
                _ => {
                    if has_seq {
                        continue;
                    }
                    None
                }
            };
            let sink = self.graph.edge_delay(ep.net, ep.sink_loc);
            for (c, class) in self.classes.iter().enumerate() {
                if !compatible(class.clock, capture) {
                    continue;
                }
                let a = self.arrival[ep.net.index() * nc + c];
                if a == f64::NEG_INFINITY {
                    continue;
                }
                let t = a + sink + ep.extra_ns;
                if t > critical {
                    critical = t;
                    worst = Some((ep.net, c));
                }
            }
        }
        let (levels, path) = match worst {
            Some((net, c)) => self.walk_path(net, c),
            None => (0, Vec::new()),
        };
        (critical, levels, path)
    }

    /// Seeds and classes for a constraint set; `legacy` gives every
    /// structural domain its own synthetic clock index.
    fn build_seeds(&self, constraints: &TimingConstraints, legacy: bool) -> SeedTable {
        let mut classes: Vec<LaunchClass> = Vec::new();
        let mut class_ix: HashMap<LaunchClass, usize> = HashMap::new();
        let mut intern = |classes: &mut Vec<LaunchClass>, class: LaunchClass| -> usize {
            *class_ix.entry(class).or_insert_with(|| {
                classes.push(class);
                classes.len() - 1
            })
        };
        // The universal class always exists so input-less gates have a
        // home (legacy parity: their outputs arrive at prim delay).
        intern(
            &mut classes,
            LaunchClass {
                clock: None,
                mask: 0,
            },
        );

        let mut domain_clock: Vec<(NetId, Option<usize>)> = Vec::new();
        let clock_of =
            |domain_clock: &mut Vec<(NetId, Option<usize>)>, root: NetId| -> Option<usize> {
                if let Some(&(_, c)) = domain_clock.iter().find(|(r, _)| *r == root) {
                    return c;
                }
                let c = if legacy {
                    Some(domain_clock.len())
                } else {
                    constraints
                        .clocks()
                        .iter()
                        .position(|c| clock_pattern_matches(&c.pattern, self.graph.net_name(root)))
                };
                domain_clock.push((root, c));
                c
            };
        let from_mask = |name: &str| -> u64 {
            let mut mask = 0u64;
            for (i, e) in constraints.exceptions().iter().enumerate() {
                if pattern_matches(&e.from, name) {
                    mask |= 1 << i;
                }
            }
            mask
        };

        let mut seeds: Vec<Seed> = Vec::new();
        let mut seeded = vec![false; self.graph.flat.net_count()];
        for launch in &self.graph.seq_launches {
            let clock = clock_of(&mut domain_clock, launch.domain);
            let class = intern(
                &mut classes,
                LaunchClass {
                    clock,
                    mask: from_mask(&launch.path),
                },
            );
            for &net in &launch.nets {
                seeded[net.index()] = true;
                seeds.push(Seed {
                    net,
                    class,
                    at_ns: self.graph.model.clk_to_q_ns,
                    name: launch.path.clone(),
                });
            }
        }
        for (name, nets) in &self.graph.input_ports {
            for (bit, &net) in nets.iter().enumerate() {
                let bitname = if nets.len() > 1 {
                    format!("{name}[{bit}]")
                } else {
                    name.clone()
                };
                let delay = constraints.input_delays().iter().find(|d| {
                    pattern_matches(&d.pattern, &bitname) || pattern_matches(&d.pattern, name)
                });
                let (clock, at_ns) = match delay {
                    Some(d) => (
                        constraints.clocks().iter().position(|c| c.name == d.clock),
                        d.delay_ns,
                    ),
                    None => (None, 0.0),
                };
                let class = intern(
                    &mut classes,
                    LaunchClass {
                        clock,
                        mask: from_mask(&bitname),
                    },
                );
                seeded[net.index()] = true;
                seeds.push(Seed {
                    net,
                    class,
                    at_ns,
                    name: bitname,
                });
            }
        }
        for (path, nets) in &self.graph.bb_launches {
            let class = intern(
                &mut classes,
                LaunchClass {
                    clock: None,
                    mask: from_mask(path),
                },
            );
            for &net in nets {
                if seeded[net.index()] {
                    continue;
                }
                seeded[net.index()] = true;
                seeds.push(Seed {
                    net,
                    class,
                    at_ns: 0.0,
                    name: path.clone(),
                });
            }
        }
        // Everything else without a producer (constants, dangling
        // wires) arrives at t=0, matching the legacy estimator's
        // all-zeros initial state.
        for (i, seeded) in seeded.iter().enumerate().take(self.graph.flat.net_count()) {
            if *seeded || self.graph.producer[i].is_some() {
                continue;
            }
            let name = self.graph.flat.nets()[i].name.clone();
            let class = intern(
                &mut classes,
                LaunchClass {
                    clock: None,
                    mask: from_mask(&name),
                },
            );
            seeds.push(Seed {
                net: NetId::from_index(i),
                class,
                at_ns: 0.0,
                name,
            });
        }
        (classes, seeds, domain_clock)
    }

    fn rebuild_seed_index(&mut self) {
        self.seed_at.clear();
        for (i, seed) in self.seeds.iter().enumerate() {
            let key = (seed.net.index() as u32, seed.class as u32);
            let entry = self.seed_at.entry(key).or_insert((seed.at_ns, i as u32));
            if seed.at_ns > entry.0 {
                *entry = (seed.at_ns, i as u32);
            }
        }
    }

    fn propagate(&mut self, constraints: &TimingConstraints, legacy: bool) {
        let (classes, seeds, domain_clock) = self.build_seeds(constraints, legacy);
        self.classes = classes;
        self.seeds = seeds;
        self.domain_clock = domain_clock;
        self.constraints = constraints.clone();
        self.legacy = legacy;
        self.rebuild_seed_index();

        let nc = self.classes.len();
        let len = self.graph.flat.net_count() * nc;
        self.arrival = vec![f64::NEG_INFINITY; len];
        self.pred = vec![None; len];
        self.level = vec![0; len];
        self.required_valid = false;
        for seed in &self.seeds {
            let ix = seed.net.index() * nc + seed.class;
            if seed.at_ns > self.arrival[ix] {
                self.arrival[ix] = seed.at_ns;
            }
        }
        let order = std::mem::take(&mut self.graph.order);
        for &ni in &order {
            self.recompute_node(ni);
        }
        self.graph.order = order;
        self.analyzed = true;
    }

    /// Recomputes one gate's output arrival in every class from its
    /// inputs and any static seed; returns whether any value changed.
    fn recompute_node(&mut self, ni: usize) -> bool {
        let nc = self.classes.len();
        let node = &self.graph.nodes[ni];
        let prim = self.graph.model.prim_delay(&node.kind);
        let out = node.output.index();
        let lut = u32::from(node.is_lut_level());
        let mut any_changed = false;
        for c in 0..nc {
            self.work += 1;
            let mut best = f64::NEG_INFINITY;
            let mut best_pred = None;
            let mut best_level = 0u32;
            for &input in &node.inputs {
                let a = self.arrival[input.index() * nc + c];
                if a == f64::NEG_INFINITY {
                    continue;
                }
                let t = a + self.graph.gate_edge_delay(input, node);
                if t > best {
                    best = t;
                    best_pred = Some(input);
                    best_level = self.level[input.index() * nc + c];
                }
            }
            if node.inputs.is_empty() && c == 0 {
                // Legacy parity: an input-less gate's output still
                // arrives at its primitive delay.
                best = 0.0;
            }
            let (mut val, mut pd, mut lv) = if best > f64::NEG_INFINITY {
                (best + prim, best_pred, best_level + lut)
            } else {
                (f64::NEG_INFINITY, None, 0)
            };
            if let Some(&(seed, _)) = self.seed_at.get(&(out as u32, c as u32)) {
                if seed >= val {
                    val = seed;
                    pd = None;
                    lv = 0;
                }
            }
            let ix = out * nc + c;
            if self.arrival[ix] != val {
                self.arrival[ix] = val;
                any_changed = true;
            }
            self.pred[ix] = pd;
            self.level[ix] = lv;
        }
        any_changed
    }

    fn clock_of_domain(&self, domain: NetId) -> Option<usize> {
        self.domain_clock
            .iter()
            .find(|(r, _)| *r == domain)
            .and_then(|&(_, c)| c)
    }

    /// Capture clock of an endpoint under the current constraints, or
    /// `None` when it is unconstrained.
    fn capture_clock(&self, ep: &super::graph::Endpoint) -> Option<usize> {
        match ep.kind {
            EndpointKind::Seq { domain } => self.clock_of_domain(domain),
            EndpointKind::Output => self
                .constraints
                .output_delays()
                .iter()
                .find(|d| port_pattern_matches(&d.pattern, &ep.name))
                .and_then(|d| {
                    self.constraints
                        .clocks()
                        .iter()
                        .position(|c| c.name == d.clock)
                }),
            EndpointKind::BlackBox => None,
        }
    }

    fn build_report(&mut self) -> StaReport {
        let nc = self.classes.len();
        let mut endpoints: Vec<EndpointSlack> = Vec::new();
        let mut unconstrained: Vec<String> = Vec::new();
        // Worst (endpoint net, class) per reported endpoint, for path
        // reconstruction of the top-K list.
        let mut worst_key: Vec<(NetId, usize)> = Vec::new();

        for ep in &self.graph.endpoints {
            let Some(k) = self.capture_clock(ep) else {
                if !matches!(ep.kind, EndpointKind::BlackBox) {
                    unconstrained.push(ep.name.clone());
                }
                continue;
            };
            let clock = &self.constraints.clocks()[k];
            let output_delay = match ep.kind {
                EndpointKind::Output => self
                    .constraints
                    .output_delays()
                    .iter()
                    .find(|d| port_pattern_matches(&d.pattern, &ep.name))
                    .map_or(0.0, |d| d.delay_ns),
                _ => 0.0,
            };
            let sink = self.graph.edge_delay(ep.net, ep.sink_loc);
            let mut best: Option<(f64, f64, f64, usize)> = None; // slack, arrival, required, class
            for (c, class) in self.classes.iter().enumerate() {
                if !compatible(class.clock, Some(k)) {
                    continue;
                }
                let a = self.arrival[ep.net.index() * nc + c];
                if a == f64::NEG_INFINITY {
                    continue;
                }
                let data_arrival = a + sink + ep.extra_ns;
                let mut periods = 1u32;
                let mut skip = false;
                for (i, x) in self.constraints.exceptions().iter().enumerate() {
                    if class.mask & (1 << i) != 0 && pattern_matches(&x.to, &ep.name) {
                        match x.kind {
                            ExceptionKind::FalsePath => skip = true,
                            ExceptionKind::Multicycle(n) => periods = n,
                        }
                        break;
                    }
                }
                if skip {
                    continue;
                }
                let required = clock.period_ns * f64::from(periods) - output_delay;
                let slack = required - data_arrival;
                if best.is_none_or(|(s, ..)| slack < s) {
                    best = Some((slack, data_arrival, required, c));
                }
            }
            match best {
                Some((slack, arrival, required, c)) => {
                    let startpoint = self.seed_name_at(ep.net, c).unwrap_or_else(|| {
                        let (_, path) = self.walk_path(ep.net, c);
                        path.first().cloned().unwrap_or_else(|| "(none)".into())
                    });
                    worst_key.push((ep.net, c));
                    endpoints.push(EndpointSlack {
                        endpoint: ep.name.clone(),
                        clock: clock.name.clone(),
                        slack_ns: slack,
                        arrival_ns: arrival,
                        required_ns: required,
                        startpoint,
                    });
                }
                None => {
                    // Constrained but nothing launches into it (e.g.
                    // every path is a false path): meets timing by
                    // construction, reported with bare sink arrival.
                    let data_arrival = sink + ep.extra_ns;
                    worst_key.push((ep.net, 0));
                    endpoints.push(EndpointSlack {
                        endpoint: ep.name.clone(),
                        clock: clock.name.clone(),
                        slack_ns: clock.period_ns - output_delay - data_arrival,
                        arrival_ns: data_arrival,
                        required_ns: clock.period_ns - output_delay,
                        startpoint: "(none)".into(),
                    });
                }
            }
        }

        // Sort worst-first, carrying the path keys along.
        let mut idx: Vec<usize> = (0..endpoints.len()).collect();
        idx.sort_by(|&a, &b| {
            endpoints[a]
                .slack_ns
                .partial_cmp(&endpoints[b].slack_ns)
                .expect("finite slack")
                .then_with(|| endpoints[a].endpoint.cmp(&endpoints[b].endpoint))
        });
        let endpoints: Vec<EndpointSlack> = idx.iter().map(|&i| endpoints[i].clone()).collect();
        let worst_key: Vec<(NetId, usize)> = idx.iter().map(|&i| worst_key[i]).collect();
        unconstrained.sort();
        unconstrained.dedup();

        let clocks: Vec<ClockSlack> = self
            .constraints
            .clocks()
            .iter()
            .map(|c| {
                let mut count = 0usize;
                let mut violations = 0usize;
                let mut worst = f64::INFINITY;
                for e in endpoints.iter().filter(|e| e.clock == c.name) {
                    count += 1;
                    if e.slack_ns < 0.0 {
                        violations += 1;
                    }
                    worst = worst.min(e.slack_ns);
                }
                ClockSlack {
                    clock: c.name.clone(),
                    period_ns: c.period_ns,
                    endpoints: count,
                    violations,
                    worst_slack_ns: worst,
                }
            })
            .collect();

        let paths: Vec<PathReport> = endpoints
            .iter()
            .zip(&worst_key)
            .take(TOP_PATHS)
            .map(|(e, &(net, c))| {
                let levels = self.level[net.index() * nc + c] as usize;
                let mut nets = Vec::new();
                let mut cur = net;
                loop {
                    nets.push(cur);
                    match self.pred[cur.index() * nc + c] {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
                nets.reverse();
                let steps = nets
                    .iter()
                    .map(|&n| PathStep {
                        net: self.graph.net_name(n).to_owned(),
                        arrival_ns: self.arrival[n.index() * nc + c],
                    })
                    .collect();
                PathReport {
                    endpoint: e.endpoint.clone(),
                    startpoint: e.startpoint.clone(),
                    clock: e.clock.clone(),
                    slack_ns: e.slack_ns,
                    levels,
                    steps,
                }
            })
            .collect();

        StaReport {
            design: self.graph.flat.design_name().to_owned(),
            clocks,
            endpoints,
            unconstrained,
            paths,
        }
    }

    /// Follows the predecessor chain of `(net, class)` back to its
    /// launch, returning (levels, net names source→endpoint).
    fn walk_path(&self, net: NetId, class: usize) -> (usize, Vec<String>) {
        let nc = self.classes.len();
        let levels = self.level[net.index() * nc + class] as usize;
        let mut path = Vec::new();
        let mut cur = net;
        loop {
            path.push(self.graph.net_name(cur).to_owned());
            match self.pred[cur.index() * nc + class] {
                Some(p) => cur = p,
                None => break,
            }
        }
        path.reverse();
        (levels, path)
    }

    /// Startpoint object name of the path into `(net, class)`: the seed
    /// name at the head of the predecessor chain, if seeded.
    fn seed_name_at(&self, net: NetId, class: usize) -> Option<String> {
        let nc = self.classes.len();
        let mut cur = net;
        while let Some(p) = self.pred[cur.index() * nc + class] {
            cur = p;
        }
        self.seed_at
            .get(&(cur.index() as u32, class as u32))
            .map(|&(_, i)| self.seeds[i as usize].name.clone())
    }

    /// Computes backward required times once per analysis (lazily).
    fn ensure_required(&mut self) {
        if self.required_valid {
            return;
        }
        let nc = self.classes.len();
        let len = self.graph.flat.net_count() * nc;
        self.required = vec![f64::INFINITY; len];
        for ep in &self.graph.endpoints {
            let Some(k) = self.capture_clock(ep) else {
                continue;
            };
            let clock = &self.constraints.clocks()[k];
            let output_delay = match ep.kind {
                EndpointKind::Output => self
                    .constraints
                    .output_delays()
                    .iter()
                    .find(|d| port_pattern_matches(&d.pattern, &ep.name))
                    .map_or(0.0, |d| d.delay_ns),
                _ => 0.0,
            };
            let sink = self.graph.edge_delay(ep.net, ep.sink_loc);
            for (c, class) in self.classes.iter().enumerate() {
                if !compatible(class.clock, Some(k)) {
                    continue;
                }
                let mut periods = 1u32;
                let mut skip = false;
                for (i, x) in self.constraints.exceptions().iter().enumerate() {
                    if class.mask & (1 << i) != 0 && pattern_matches(&x.to, &ep.name) {
                        match x.kind {
                            ExceptionKind::FalsePath => skip = true,
                            ExceptionKind::Multicycle(n) => periods = n,
                        }
                        break;
                    }
                }
                if skip {
                    continue;
                }
                let req = clock.period_ns * f64::from(periods) - output_delay - sink - ep.extra_ns;
                let ix = ep.net.index() * nc + c;
                self.required[ix] = self.required[ix].min(req);
            }
        }
        let order = std::mem::take(&mut self.graph.order);
        for &ni in order.iter().rev() {
            let node = &self.graph.nodes[ni];
            let prim = self.graph.model.prim_delay(&node.kind);
            let out = node.output.index();
            for c in 0..nc {
                let r = self.required[out * nc + c];
                if r == f64::INFINITY {
                    continue;
                }
                for &input in &node.inputs {
                    let cand = r - prim - self.graph.gate_edge_delay(input, node);
                    let ix = input.index() * nc + c;
                    self.required[ix] = self.required[ix].min(cand);
                }
            }
        }
        self.graph.order = order;
        self.required_valid = true;
    }
}

/// Port-delay patterns match the endpoint's bit name (`product[11]`)
/// or its plain port name (`product`) — mirroring how input delays
/// match either form in `build_seeds`.
fn port_pattern_matches(pattern: &str, ep_name: &str) -> bool {
    pattern_matches(pattern, ep_name)
        || ep_name
            .rsplit_once('[')
            .is_some_and(|(base, _)| pattern_matches(pattern, base))
}

/// A launch clocked by `launch` reaches a capture clocked by `capture`
/// iff the launch is unclocked (absolute-time data) or same-domain.
fn compatible(launch: Option<usize>, capture: Option<usize>) -> bool {
    match launch {
        None => true,
        Some(l) => capture == Some(l),
    }
}

/// `true` when two constraint sets differ only in *values* (periods,
/// delay amounts), preserving classes and seed order — the contract
/// [`Sta::reanalyze`] needs for its positional seed diff.
fn same_shape(a: &TimingConstraints, b: &TimingConstraints) -> bool {
    a.clocks().len() == b.clocks().len()
        && a.clocks()
            .iter()
            .zip(b.clocks())
            .all(|(x, y)| x.name == y.name && x.pattern == y.pattern)
        && a.input_delays().len() == b.input_delays().len()
        && a.input_delays()
            .iter()
            .zip(b.input_delays())
            .all(|(x, y)| x.clock == y.clock && x.pattern == y.pattern)
        && a.output_delays().len() == b.output_delays().len()
        && a.output_delays()
            .iter()
            .zip(b.output_delays())
            .all(|(x, y)| x.clock == y.clock && x.pattern == y.pattern)
        && a.exceptions() == b.exceptions()
}
