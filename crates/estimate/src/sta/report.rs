//! STA result types: per-endpoint slack, per-clock rollups, critical
//! paths, slack histograms, and the structure-hiding summary a vendor
//! can expose to customers without revealing the netlist.

use std::fmt;

/// Histogram bucket edges in nanoseconds of slack. Counts have one more
/// entry than edges: `(-inf, -5), [-5, -2), …, [10, +inf)`.
pub const HISTOGRAM_EDGES_NS: [f64; 8] = [-5.0, -2.0, -1.0, 0.0, 1.0, 2.0, 5.0, 10.0];

/// Setup-check result for one endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSlack {
    /// Endpoint object name (`instance.pin` or output port bit).
    pub endpoint: String,
    /// Name of the capturing clock constraint.
    pub clock: String,
    /// Required time minus data arrival; negative means a violation.
    pub slack_ns: f64,
    /// Data arrival time at the endpoint, including setup.
    pub arrival_ns: f64,
    /// Required time (period × multicycle factor, minus output delay).
    pub required_ns: f64,
    /// Startpoint launching the worst path into this endpoint.
    pub startpoint: String,
}

/// One net along a reported critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Net name.
    pub net: String,
    /// Arrival time at the net, in nanoseconds.
    pub arrival_ns: f64,
}

/// A hierarchical report of one critical path, worst endpoint first in
/// [`StaReport::paths`].
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// Endpoint object name.
    pub endpoint: String,
    /// Startpoint object name.
    pub startpoint: String,
    /// Capturing clock.
    pub clock: String,
    /// Slack at the endpoint.
    pub slack_ns: f64,
    /// Logic levels traversed.
    pub levels: usize,
    /// Nets from launch to capture with arrival times.
    pub steps: Vec<PathStep>,
}

/// Per-clock slack rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSlack {
    /// Clock constraint name.
    pub clock: String,
    /// Clock period in nanoseconds.
    pub period_ns: f64,
    /// Number of endpoints captured by this clock.
    pub endpoints: usize,
    /// Endpoints with negative slack.
    pub violations: usize,
    /// Worst (smallest) slack; `f64::INFINITY` when no endpoint is
    /// captured.
    pub worst_slack_ns: f64,
}

/// Slack distribution for one clock over [`HISTOGRAM_EDGES_NS`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlackHistogram {
    /// Clock constraint name.
    pub clock: String,
    /// Bucket edges (shared constant, repeated for self-description).
    pub edges: Vec<f64>,
    /// Bucket counts, `edges.len() + 1` entries.
    pub counts: Vec<usize>,
}

impl SlackHistogram {
    /// Builds a histogram over the standard edges from endpoint slacks.
    #[must_use]
    pub fn from_slacks(clock: impl Into<String>, slacks: &[f64]) -> Self {
        let edges: Vec<f64> = HISTOGRAM_EDGES_NS.to_vec();
        let mut counts = vec![0usize; edges.len() + 1];
        for &s in slacks {
            let bucket = edges.iter().position(|&e| s < e).unwrap_or(edges.len());
            counts[bucket] += 1;
        }
        SlackHistogram {
            clock: clock.into(),
            edges,
            counts,
        }
    }

    /// Total endpoints counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

impl fmt::Display for SlackHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  slack histogram [{}]:", self.clock)?;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let label = if i == 0 {
                format!("      < {:>5.1}", self.edges[0])
            } else if i == self.edges.len() {
                format!("     >= {:>5.1}", self.edges[i - 1])
            } else {
                format!("{:>5.1}..{:>5.1}", self.edges[i - 1], self.edges[i])
            };
            let bar = "#".repeat((count * 40).div_ceil(max).min(40));
            writeln!(f, "    {label} ns |{bar} {count}")?;
        }
        Ok(())
    }
}

/// The full constraint-evaluated STA report.
#[derive(Debug, Clone, PartialEq)]
pub struct StaReport {
    /// Design name.
    pub design: String,
    /// Per-clock rollups, one per defined clock.
    pub clocks: Vec<ClockSlack>,
    /// Every constrained endpoint, sorted worst slack first.
    pub endpoints: Vec<EndpointSlack>,
    /// Endpoints no constraint covers (object names).
    pub unconstrained: Vec<String>,
    /// Top-K critical paths, worst first.
    pub paths: Vec<PathReport>,
}

impl StaReport {
    /// Number of endpoints with negative slack.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.endpoints.iter().filter(|e| e.slack_ns < 0.0).count()
    }

    /// Worst slack across all endpoints, if any endpoint is timed.
    #[must_use]
    pub fn worst_slack(&self) -> Option<f64> {
        self.endpoints.first().map(|e| e.slack_ns)
    }

    /// `true` when every constrained endpoint meets timing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations() == 0
    }

    /// Per-clock slack histograms (clocks with no endpoints omitted).
    #[must_use]
    pub fn histograms(&self) -> Vec<SlackHistogram> {
        self.clocks
            .iter()
            .filter(|c| c.endpoints > 0)
            .map(|c| {
                let slacks: Vec<f64> = self
                    .endpoints
                    .iter()
                    .filter(|e| e.clock == c.clock)
                    .map(|e| e.slack_ns)
                    .collect();
                SlackHistogram::from_slacks(c.clock.clone(), &slacks)
            })
            .collect()
    }

    /// One-line rollup, e.g.
    /// `sta: 2 violation(s), worst slack -0.83 ns, 37 endpoint(s), 1 unconstrained`.
    #[must_use]
    pub fn summary(&self) -> String {
        let worst = match self.worst_slack() {
            Some(w) => format!("{w:.2} ns"),
            None => "n/a".to_owned(),
        };
        format!(
            "sta: {} violation(s), worst slack {worst}, {} endpoint(s), {} unconstrained",
            self.violations(),
            self.endpoints.len(),
            self.unconstrained.len()
        )
    }

    /// The structure-hiding summary for `TimingView`-only sessions: per-
    /// clock rollups and histograms, but no hierarchical names.
    #[must_use]
    pub fn slack_summary(&self) -> SlackSummary {
        SlackSummary {
            design: self.design.clone(),
            clocks: self.clocks.clone(),
            unconstrained: self.unconstrained.len(),
            histograms: self.histograms(),
        }
    }

    /// Machine-readable JSON rendering (hand-rolled; no dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"design\":\"{}\",\"violations\":{},\"clocks\":[",
            json_escape(&self.design),
            self.violations()
        ));
        for (i, c) in self.clocks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"clock\":\"{}\",\"period_ns\":{},\"endpoints\":{},\"violations\":{},\"worst_slack_ns\":{}}}",
                json_escape(&c.clock),
                json_number(c.period_ns),
                c.endpoints,
                c.violations,
                json_number(c.worst_slack_ns)
            ));
        }
        s.push_str("],\"endpoints\":[");
        for (i, e) in self.endpoints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"endpoint\":\"{}\",\"clock\":\"{}\",\"slack_ns\":{},\"arrival_ns\":{},\"required_ns\":{},\"startpoint\":\"{}\"}}",
                json_escape(&e.endpoint),
                json_escape(&e.clock),
                json_number(e.slack_ns),
                json_number(e.arrival_ns),
                json_number(e.required_ns),
                json_escape(&e.startpoint)
            ));
        }
        s.push_str("],\"unconstrained\":[");
        for (i, u) in self.unconstrained.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", json_escape(u)));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for StaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {}", self.design, self.summary())?;
        for c in &self.clocks {
            let worst = if c.endpoints == 0 {
                "n/a".to_owned()
            } else {
                format!("{:.2} ns", c.worst_slack_ns)
            };
            writeln!(
                f,
                "  clock {} (period {:.3} ns): {} endpoint(s), {} violation(s), worst slack {worst}",
                c.clock, c.period_ns, c.endpoints, c.violations
            )?;
        }
        for h in self.histograms() {
            write!(f, "{h}")?;
        }
        for p in &self.paths {
            writeln!(
                f,
                "  path {} -> {} [{}]: slack {:.2} ns, {} level(s)",
                p.startpoint, p.endpoint, p.clock, p.slack_ns, p.levels
            )?;
            for step in &p.steps {
                writeln!(f, "    {:>8.2} ns  {}", step.arrival_ns, step.net)?;
            }
        }
        if !self.unconstrained.is_empty() {
            writeln!(f, "  unconstrained endpoint(s):")?;
            for u in &self.unconstrained {
                writeln!(f, "    {u}")?;
            }
        }
        Ok(())
    }
}

/// Structure-hiding slack summary: what a `TimingView`-only applet
/// session (and wire endpoint 0x25) exposes — aggregate numbers and
/// histograms, no instance or net names.
#[derive(Debug, Clone, PartialEq)]
pub struct SlackSummary {
    /// Design name.
    pub design: String,
    /// Per-clock rollups.
    pub clocks: Vec<ClockSlack>,
    /// Count of unconstrained endpoints (names withheld).
    pub unconstrained: usize,
    /// Per-clock slack histograms.
    pub histograms: Vec<SlackHistogram>,
}

impl SlackSummary {
    /// Total violations across clocks.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.clocks.iter().map(|c| c.violations).sum()
    }

    /// Worst slack across clocks that capture endpoints.
    #[must_use]
    pub fn worst_slack(&self) -> Option<f64> {
        self.clocks
            .iter()
            .filter(|c| c.endpoints > 0)
            .map(|c| c.worst_slack_ns)
            .min_by(|a, b| a.partial_cmp(b).expect("finite slack"))
    }
}

impl fmt::Display for SlackSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} violation(s), {} unconstrained endpoint(s)",
            self.design,
            self.violations(),
            self.unconstrained
        )?;
        for c in &self.clocks {
            let worst = if c.endpoints == 0 {
                "n/a".to_owned()
            } else {
                format!("{:.2} ns", c.worst_slack_ns)
            };
            writeln!(
                f,
                "  clock {} (period {:.3} ns): {} endpoint(s), {} violation(s), worst slack {worst}",
                c.clock, c.period_ns, c.endpoints, c.violations
            )?;
        }
        for h in &self.histograms {
            write!(f, "{h}")?;
        }
        Ok(())
    }
}

/// JSON number rendering that survives infinities (mapped to ±1e308).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x > 0.0 {
        "1e308".to_owned()
    } else {
        "-1e308".to_owned()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StaReport {
        StaReport {
            design: "demo".into(),
            clocks: vec![ClockSlack {
                clock: "sys".into(),
                period_ns: 6.667,
                endpoints: 3,
                violations: 1,
                worst_slack_ns: -0.5,
            }],
            endpoints: vec![
                EndpointSlack {
                    endpoint: "u0/acc.d".into(),
                    clock: "sys".into(),
                    slack_ns: -0.5,
                    arrival_ns: 7.167,
                    required_ns: 6.667,
                    startpoint: "u0/pipe".into(),
                },
                EndpointSlack {
                    endpoint: "u0/acc.ce".into(),
                    clock: "sys".into(),
                    slack_ns: 1.2,
                    arrival_ns: 5.467,
                    required_ns: 6.667,
                    startpoint: "ctl".into(),
                },
                EndpointSlack {
                    endpoint: "p[0]".into(),
                    clock: "sys".into(),
                    slack_ns: 3.0,
                    arrival_ns: 3.667,
                    required_ns: 6.667,
                    startpoint: "x[0]".into(),
                },
            ],
            unconstrained: vec!["y[0]".into()],
            paths: vec![],
        }
    }

    #[test]
    fn rollups_and_histogram() {
        let r = sample();
        assert_eq!(r.violations(), 1);
        assert_eq!(r.worst_slack(), Some(-0.5));
        assert!(!r.is_clean());
        let hists = r.histograms();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].total(), 3);
        // -0.5 lands in [-1, 0), 1.2 in [1, 2), 3.0 in [2, 5).
        assert_eq!(hists[0].counts[3], 1);
        assert_eq!(hists[0].counts[5], 1);
        assert_eq!(hists[0].counts[6], 1);
    }

    #[test]
    fn summary_and_display() {
        let r = sample();
        assert!(r.summary().contains("1 violation(s)"));
        assert!(r.summary().contains("-0.50 ns"));
        let text = r.to_string();
        assert!(text.contains("clock sys"));
        assert!(text.contains("slack histogram"));
        let s = r.slack_summary();
        assert_eq!(s.violations(), 1);
        assert_eq!(s.worst_slack(), Some(-0.5));
        assert_eq!(s.unconstrained, 1);
        assert!(s.to_string().contains("clock sys"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let mut r = sample();
        r.endpoints[0].endpoint = "we\"ird\n".into();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"ird\\n"));
        assert!(json.contains("\"violations\":1"));
        assert!(json.contains("\"worst_slack_ns\":-0.5"));
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = SlackHistogram::from_slacks("c", &[-100.0, 100.0, f64::INFINITY]);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[HISTOGRAM_EDGES_NS.len()], 2);
        assert_eq!(h.total(), 3);
        assert!(h.to_string().contains('#'));
    }
}
