//! The timing-constraint set: clocks, boundary delays and path
//! exceptions, with a line-oriented text format that travels with a
//! design exactly like a lint configuration does.
//!
//! Object patterns use the same syntax as lint waivers: an exact
//! hierarchical name, or a prefix match when the pattern ends with `*`
//! (e.g. `top/u_fir/*`). Clock patterns match *net names* (a top-level
//! clock port's net carries the port name); exception patterns match
//! startpoint names (sequential instance paths, input nets) on the
//! `from` side and endpoint names (`instance.pin`, output ports) on
//! the `to` side.

use std::fmt;

/// Longest accepted constraint file line count and per-kind caps —
/// hostile inputs (huge counts, repeated directives) fail parsing
/// instead of exhausting memory or the exception bitmask.
pub const MAX_CLOCKS: usize = 64;
/// Cap on `false-path` + `multicycle` directives (they share a 64-bit
/// startpoint classification mask).
pub const MAX_EXCEPTIONS: usize = 64;
/// Cap on `input-delay` + `output-delay` directives.
pub const MAX_DELAYS: usize = 1024;
/// Largest accepted multicycle factor.
pub const MAX_MULTICYCLE: u32 = 64;

/// One clock definition: a name, a period, and the net pattern that
/// identifies its root in the design.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockConstraint {
    /// Constraint-file name of the clock (e.g. `sys`).
    pub name: String,
    /// Clock period in nanoseconds.
    pub period_ns: f64,
    /// Net-name pattern locating the clock root (waiver syntax).
    pub pattern: String,
}

/// A boundary delay: input arrival or output requirement relative to a
/// defined clock.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDelay {
    /// Name of the clock the delay is relative to.
    pub clock: String,
    /// Delay in nanoseconds.
    pub delay_ns: f64,
    /// Port-name pattern (waiver syntax).
    pub pattern: String,
}

/// What a path exception does to matching paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionKind {
    /// The path is not timed at all.
    FalsePath,
    /// The path may take this many clock periods.
    Multicycle(u32),
}

/// A path exception keyed by startpoint and endpoint patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct PathException {
    /// False path or multicycle.
    pub kind: ExceptionKind,
    /// Startpoint pattern (sequential instance path or input net).
    pub from: String,
    /// Endpoint pattern (`instance.pin` or output port).
    pub to: String,
}

/// A full constraint set for one analysis run.
///
/// # Examples
///
/// ```
/// use ipd_estimate::TimingConstraints;
///
/// let text = "\
/// clock sys 6.667 clk
/// input-delay sys 1 x*
/// false-path top/sync0 top/meta*
/// ";
/// let constraints = TimingConstraints::parse(text).expect("parse");
/// assert_eq!(constraints.clocks().len(), 1);
/// assert_eq!(TimingConstraints::parse(&constraints.to_text()), Ok(constraints));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimingConstraints {
    clocks: Vec<ClockConstraint>,
    input_delays: Vec<PortDelay>,
    output_delays: Vec<PortDelay>,
    exceptions: Vec<PathException>,
}

impl TimingConstraints {
    /// An empty constraint set (nothing is timed).
    #[must_use]
    pub fn new() -> Self {
        TimingConstraints::default()
    }

    /// Defines a clock. Later definitions with the same name are
    /// rejected by [`TimingConstraints::parse`]; the builder keeps the
    /// first.
    pub fn clock(
        &mut self,
        name: impl Into<String>,
        period_ns: f64,
        pattern: impl Into<String>,
    ) -> &mut Self {
        let name = name.into();
        if self.clocks.iter().all(|c| c.name != name) {
            self.clocks.push(ClockConstraint {
                name,
                period_ns,
                pattern: pattern.into(),
            });
        }
        self
    }

    /// Declares an input arrival delay relative to a clock.
    pub fn input_delay(
        &mut self,
        clock: impl Into<String>,
        delay_ns: f64,
        pattern: impl Into<String>,
    ) -> &mut Self {
        self.input_delays.push(PortDelay {
            clock: clock.into(),
            delay_ns,
            pattern: pattern.into(),
        });
        self
    }

    /// Declares an output requirement delay relative to a clock.
    pub fn output_delay(
        &mut self,
        clock: impl Into<String>,
        delay_ns: f64,
        pattern: impl Into<String>,
    ) -> &mut Self {
        self.output_delays.push(PortDelay {
            clock: clock.into(),
            delay_ns,
            pattern: pattern.into(),
        });
        self
    }

    /// Declares a false path from matching startpoints to matching
    /// endpoints.
    pub fn false_path(&mut self, from: impl Into<String>, to: impl Into<String>) -> &mut Self {
        self.exceptions.push(PathException {
            kind: ExceptionKind::FalsePath,
            from: from.into(),
            to: to.into(),
        });
        self
    }

    /// Declares a multicycle path of `cycles` periods from matching
    /// startpoints to matching endpoints.
    pub fn multicycle(
        &mut self,
        cycles: u32,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> &mut Self {
        self.exceptions.push(PathException {
            kind: ExceptionKind::Multicycle(cycles.clamp(1, MAX_MULTICYCLE)),
            from: from.into(),
            to: to.into(),
        });
        self
    }

    /// Defined clocks, in definition order.
    #[must_use]
    pub fn clocks(&self) -> &[ClockConstraint] {
        &self.clocks
    }

    /// Input-delay directives.
    #[must_use]
    pub fn input_delays(&self) -> &[PortDelay] {
        &self.input_delays
    }

    /// Output-delay directives.
    #[must_use]
    pub fn output_delays(&self) -> &[PortDelay] {
        &self.output_delays
    }

    /// Path exceptions, in declaration order (the first matching
    /// exception wins).
    #[must_use]
    pub fn exceptions(&self) -> &[PathException] {
        &self.exceptions
    }

    /// Looks up a clock definition by name.
    #[must_use]
    pub fn clock_named(&self, name: &str) -> Option<&ClockConstraint> {
        self.clocks.iter().find(|c| c.name == name)
    }

    /// `true` when no clocks are defined — nothing would be timed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Parses the textual constraint format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// clock sys 6.667 clk
    /// input-delay sys 1.2 data_in*
    /// output-delay sys 0.8 result*
    /// false-path top/sync0 top/meta*
    /// multicycle 2 top/slow/* top/acc*
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line. Duplicate clock
    /// names, references to undefined clocks, non-finite or
    /// non-positive periods, and counts above the documented caps are
    /// all rejected.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut c = TimingConstraints::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |msg: &str| Err(format!("line {}: {msg}: {line}", lineno + 1));
            let mut words = line.split_whitespace();
            match words.next() {
                Some("clock") => {
                    let (Some(name), Some(period), Some(pattern)) =
                        (words.next(), words.next(), words.next())
                    else {
                        return bad("expected `clock <name> <period_ns> <pattern>`");
                    };
                    let Ok(period_ns) = period.parse::<f64>() else {
                        return bad("period is not a number");
                    };
                    if !period_ns.is_finite() || period_ns <= 0.0 || period_ns > 1e9 {
                        return bad("period must be a positive finite nanosecond value");
                    }
                    if c.clocks.iter().any(|k| k.name == name) {
                        return bad("duplicate clock definition");
                    }
                    if c.clocks.len() >= MAX_CLOCKS {
                        return bad("too many clock definitions");
                    }
                    c.clocks.push(ClockConstraint {
                        name: name.to_owned(),
                        period_ns,
                        pattern: pattern.to_owned(),
                    });
                }
                Some(kind @ ("input-delay" | "output-delay")) => {
                    let (Some(clock), Some(delay), Some(pattern)) =
                        (words.next(), words.next(), words.next())
                    else {
                        return bad("expected `<input|output>-delay <clock> <ns> <pattern>`");
                    };
                    let Ok(delay_ns) = delay.parse::<f64>() else {
                        return bad("delay is not a number");
                    };
                    if !delay_ns.is_finite() || !(0.0..=1e9).contains(&delay_ns) {
                        return bad("delay must be a non-negative finite nanosecond value");
                    }
                    if c.clocks.iter().all(|k| k.name != clock) {
                        return bad("delay references an undefined clock");
                    }
                    if c.input_delays.len() + c.output_delays.len() >= MAX_DELAYS {
                        return bad("too many delay directives");
                    }
                    let delay = PortDelay {
                        clock: clock.to_owned(),
                        delay_ns,
                        pattern: pattern.to_owned(),
                    };
                    if kind == "input-delay" {
                        c.input_delays.push(delay);
                    } else {
                        c.output_delays.push(delay);
                    }
                }
                Some("false-path") => {
                    let (Some(from), Some(to)) = (words.next(), words.next()) else {
                        return bad("expected `false-path <from-pattern> <to-pattern>`");
                    };
                    if c.exceptions.len() >= MAX_EXCEPTIONS {
                        return bad("too many path exceptions");
                    }
                    c.exceptions.push(PathException {
                        kind: ExceptionKind::FalsePath,
                        from: from.to_owned(),
                        to: to.to_owned(),
                    });
                }
                Some("multicycle") => {
                    let (Some(n), Some(from), Some(to)) =
                        (words.next(), words.next(), words.next())
                    else {
                        return bad("expected `multicycle <n> <from-pattern> <to-pattern>`");
                    };
                    let Ok(n) = n.parse::<u32>() else {
                        return bad("multicycle factor is not an integer");
                    };
                    if !(1..=MAX_MULTICYCLE).contains(&n) {
                        return bad("multicycle factor out of range");
                    }
                    if c.exceptions.len() >= MAX_EXCEPTIONS {
                        return bad("too many path exceptions");
                    }
                    c.exceptions.push(PathException {
                        kind: ExceptionKind::Multicycle(n),
                        from: from.to_owned(),
                        to: to.to_owned(),
                    });
                }
                _ => return bad("unknown directive"),
            }
            if words.next().is_some() {
                return bad("trailing words after directive");
            }
        }
        Ok(c)
    }

    /// Serializes back to the [`TimingConstraints::parse`] format
    /// (clocks, input delays, output delays, exceptions, each in
    /// declaration order).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for c in &self.clocks {
            out.push_str(&format!("clock {} {} {}\n", c.name, c.period_ns, c.pattern));
        }
        for d in &self.input_delays {
            out.push_str(&format!(
                "input-delay {} {} {}\n",
                d.clock, d.delay_ns, d.pattern
            ));
        }
        for d in &self.output_delays {
            out.push_str(&format!(
                "output-delay {} {} {}\n",
                d.clock, d.delay_ns, d.pattern
            ));
        }
        for e in &self.exceptions {
            match e.kind {
                ExceptionKind::FalsePath => {
                    out.push_str(&format!("false-path {} {}\n", e.from, e.to));
                }
                ExceptionKind::Multicycle(n) => {
                    out.push_str(&format!("multicycle {n} {} {}\n", e.from, e.to));
                }
            }
        }
        out
    }
}

impl fmt::Display for TimingConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Waiver-style pattern match: exact, or prefix when the pattern ends
/// with `*`.
#[must_use]
pub(crate) fn pattern_matches(pattern: &str, object: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => object.starts_with(prefix),
        None => pattern == object,
    }
}

/// Clock-net match: against the full hierarchical net name or its last
/// path segment, so `clock sys 6.7 clk` finds `kcm_w16/clk` without a
/// per-design prefix in a shared constraints file.
#[must_use]
pub(crate) fn clock_pattern_matches(pattern: &str, net_name: &str) -> bool {
    pattern_matches(pattern, net_name)
        || net_name
            .rsplit_once('/')
            .is_some_and(|(_, base)| pattern_matches(pattern, base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let text = "clock sys 6.667 clk\nclock io 10 clk_io\ninput-delay sys 1.25 x*\noutput-delay io 0.5 y\nfalse-path top/sync* top/meta*\nmulticycle 2 top/slow/* top/acc*\n";
        let c = TimingConstraints::parse(text).expect("parse");
        assert_eq!(c.clocks().len(), 2);
        assert_eq!(c.to_text(), text);
        assert_eq!(TimingConstraints::parse(&c.to_text()), Ok(c));
    }

    #[test]
    fn errors_name_the_line() {
        for (text, needle) in [
            ("clock a", "expected"),
            ("clock a nan clk", "positive finite"),
            ("clock a -1 clk", "positive finite"),
            ("clock a 5 clk\nclock a 6 clk2", "duplicate clock"),
            ("input-delay ghost 1 x", "undefined clock"),
            ("clock a 5 clk\nmulticycle 0 x y", "out of range"),
            ("clock a 5 clk\nmulticycle 9999 x y", "out of range"),
            ("frobnicate", "unknown directive"),
            ("clock a 5 clk extra", "trailing words"),
        ] {
            let err = TimingConstraints::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err}");
            assert!(err.contains("line "), "{err}");
        }
    }

    #[test]
    fn caps_reject_huge_counts() {
        let mut text = String::from("clock sys 5 clk\n");
        for i in 0..=MAX_EXCEPTIONS {
            text.push_str(&format!("false-path a{i} b{i}\n"));
        }
        assert!(TimingConstraints::parse(&text)
            .unwrap_err()
            .contains("too many path exceptions"));

        let mut text = String::new();
        for i in 0..=MAX_CLOCKS {
            text.push_str(&format!("clock c{i} 5 net{i}\n"));
        }
        assert!(TimingConstraints::parse(&text)
            .unwrap_err()
            .contains("too many clock definitions"));

        let mut text = String::from("clock sys 5 clk\n");
        for i in 0..=MAX_DELAYS {
            text.push_str(&format!("input-delay sys 1 p{i}\n"));
        }
        assert!(TimingConstraints::parse(&text)
            .unwrap_err()
            .contains("too many delay directives"));
    }

    #[test]
    fn builder_keeps_first_clock_and_clamps_multicycle() {
        let mut c = TimingConstraints::new();
        c.clock("sys", 5.0, "clk").clock("sys", 9.0, "other");
        assert_eq!(c.clocks().len(), 1);
        assert!((c.clock_named("sys").unwrap().period_ns - 5.0).abs() < 1e-12);
        c.multicycle(0, "a", "b").multicycle(1_000_000, "c", "d");
        assert_eq!(c.exceptions()[0].kind, ExceptionKind::Multicycle(1));
        assert_eq!(
            c.exceptions()[1].kind,
            ExceptionKind::Multicycle(MAX_MULTICYCLE)
        );
    }

    #[test]
    fn patterns_match_like_waivers() {
        assert!(pattern_matches("top/u0/*", "top/u0/ff.d"));
        assert!(pattern_matches("clk", "clk"));
        assert!(!pattern_matches("clk", "clk2"));
        assert!(pattern_matches("*", "anything"));
    }

    /// Hostile-input fuzz: random byte soup, truncations of a valid
    /// file, and shuffled directive fragments must never panic — every
    /// outcome is `Ok` or a line-tagged `Err`.
    #[test]
    fn parser_survives_hostile_inputs() {
        let valid = "clock sys 6.667 clk\ninput-delay sys 1.25 x*\nmulticycle 2 a b\n";
        for cut in 0..valid.len() {
            let _ = TimingConstraints::parse(&valid[..cut]);
        }
        let mut rng = ipd_testutil::XorShift64::new(0xA5A5_0001);
        let words = [
            "clock",
            "input-delay",
            "output-delay",
            "false-path",
            "multicycle",
            "sys",
            "clk",
            "9999999999999999999",
            "1e308",
            "-1e308",
            "nan",
            "inf",
            "*",
            "#",
            "\u{7f}",
        ];
        for _ in 0..500 {
            let mut text = String::new();
            for _ in 0..(rng.next_u64() % 8) {
                for _ in 0..(rng.next_u64() % 6) {
                    text.push_str(words[(rng.next_u64() as usize) % words.len()]);
                    text.push(' ');
                }
                text.push('\n');
            }
            let _ = TimingConstraints::parse(&text);
        }
        for _ in 0..200 {
            let bytes: Vec<u8> = (0..(rng.next_u64() % 256))
                .map(|_| (rng.next_u64() % 256) as u8)
                .collect();
            let _ = TimingConstraints::parse(&String::from_utf8_lossy(&bytes));
        }
    }
}
