//! The place-and-route pipeline: placement → global routing → routed
//! static timing.
//!
//! [`place_and_route`] chains the annealing placer (pinned to the hand
//! layout or from scratch), the congestion-negotiated global router,
//! and STA backannotated with routed wire lengths into one call,
//! returning a [`PhysicalDesign`] that answers timing questions from
//! real geometry instead of the Manhattan-distance heuristic.

use ipd_hdl::{Circuit, FlatNetlist};
use ipd_techlib::{DelayModel, NetDelaySource};

use crate::error::EstimateError;
use crate::place::{auto_place, PlacementResult, PlacerConfig, PlacerMode};
use crate::route::{route, RouterConfig, RoutingResult};
use crate::sta::{Sta, StaReport, TimingConstraints};
use crate::timing::{estimate_timing_flat_with_source, TimingReport};

/// How the pipeline obtains a placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Trust the hand layout: existing `RLOC`s stay pinned and only
    /// unplaced leaves are annealed into the gaps (the paper's module
    /// generators ship hand placement as part of the IP).
    #[default]
    Hand,
    /// Ignore any existing `RLOC`s and anneal everything from scratch.
    Anneal,
}

/// Parameters for [`place_and_route`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PnrConfig {
    /// Placement strategy.
    pub strategy: PlacementStrategy,
    /// Annealer parameters (its `mode` is overridden by `strategy`).
    pub placer: PlacerConfig,
    /// Router parameters.
    pub router: RouterConfig,
    /// Delay model for backannotation and timing.
    pub model: DelayModel,
}

impl PnrConfig {
    /// A configuration with the Virtex delay model and default knobs.
    #[must_use]
    pub fn virtex() -> Self {
        PnrConfig {
            model: DelayModel::virtex(),
            ..PnrConfig::default()
        }
    }
}

/// A placed and routed design with its backannotated delay source.
#[derive(Debug, Clone)]
pub struct PhysicalDesign {
    /// The placement (its `circuit` carries the final `RLOC`s).
    pub placement: PlacementResult,
    /// The routed trees, channel occupancy and convergence stats.
    pub routing: RoutingResult,
    /// The routed delay source consumed by STA.
    pub source: NetDelaySource,
    /// The delay model the route and timing were produced under.
    pub model: DelayModel,
}

impl PhysicalDesign {
    /// The placed circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.placement.circuit
    }

    /// Legacy longest-path timing under routed delays.
    ///
    /// # Errors
    ///
    /// Propagates flattening, technology and loop errors.
    pub fn timing(&self) -> Result<TimingReport, EstimateError> {
        let flat = FlatNetlist::build(self.circuit())?;
        estimate_timing_flat_with_source(&flat, &self.model, self.source.clone())
    }

    /// Full constraint-driven STA under routed delays.
    ///
    /// # Errors
    ///
    /// Propagates flattening, technology and loop errors.
    pub fn analyze(&self, constraints: &TimingConstraints) -> Result<StaReport, EstimateError> {
        let flat = FlatNetlist::build(self.circuit())?;
        let mut sta = Sta::build_with_source(&flat, &self.model, self.source.clone())?;
        Ok(sta.analyze(constraints))
    }
}

/// Places and routes a circuit, returning the [`PhysicalDesign`].
///
/// # Errors
///
/// Propagates placement, flattening and routing errors.
///
/// # Examples
///
/// ```
/// use ipd_estimate::{place_and_route, PnrConfig};
/// use ipd_hdl::{Circuit, PortSpec, Rloc, Signal};
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut circuit = Circuit::new("pair");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// let t = ctx.wire("t", 1);
/// let u = ctx.inv(a, t)?;
/// ctx.set_rloc(u, Rloc::new(0, 0));
/// let v = ctx.inv(t, y)?;
/// ctx.set_rloc(v, Rloc::new(0, 4));
/// let phys = place_and_route(&circuit, &PnrConfig::virtex())?;
/// assert!(phys.routing.stats.converged);
/// assert!(phys.timing()?.critical_path_ns > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn place_and_route(
    circuit: &Circuit,
    config: &PnrConfig,
) -> Result<PhysicalDesign, EstimateError> {
    let placer = PlacerConfig {
        mode: match config.strategy {
            PlacementStrategy::Hand => PlacerMode::Pinned,
            PlacementStrategy::Anneal => PlacerMode::Scratch,
        },
        ..config.placer
    };
    let placement = auto_place(circuit, &placer)?;
    let flat = FlatNetlist::build(&placement.circuit)?;
    let routing = route(&flat, &config.model, &config.router)?;
    let source = routing.delay_source();
    Ok(PhysicalDesign {
        placement,
        routing,
        source,
        model: config.model.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::estimate_timing_flat;
    use ipd_hdl::{PortSpec, Rloc, Signal};
    use ipd_techlib::LogicCtx;

    /// A hand-placed 2x4 grid of xor pairs feeding a registered output.
    fn hand_placed() -> Circuit {
        let mut c = Circuit::new("hand");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 8)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let mut cur: Signal = Signal::bit_of(a, 0);
        for b in 1..8 {
            let t = ctx.wire(&format!("t{b}"), 1);
            let x = ctx.xor2(cur, Signal::bit_of(a, b), t).unwrap();
            ctx.set_rloc(x, Rloc::new((b as i32 - 1) / 4, (b as i32 - 1) % 4));
            cur = t.into();
        }
        let f = ctx.fd(clk, cur, q).unwrap();
        ctx.set_rloc(f, Rloc::new(1, 3));
        c
    }

    #[test]
    fn hand_strategy_preserves_rlocs_and_routes() {
        let circuit = hand_placed();
        let before = FlatNetlist::build(&circuit).unwrap();
        let phys = place_and_route(&circuit, &PnrConfig::virtex()).unwrap();
        let after = FlatNetlist::build(phys.circuit()).unwrap();
        for (b, a) in before.leaves().iter().zip(after.leaves()) {
            if b.loc.is_some() {
                assert_eq!(b.loc, a.loc, "{} moved under Hand strategy", b.path);
            }
        }
        assert!(phys.routing.stats.converged, "{}", phys.routing.stats);
        assert!(phys.routing.stats.nets > 0);
    }

    #[test]
    fn routed_timing_is_at_least_heuristic_timing() {
        let circuit = hand_placed();
        let phys = place_and_route(&circuit, &PnrConfig::virtex()).unwrap();
        let flat = FlatNetlist::build(phys.circuit()).unwrap();
        let heuristic = estimate_timing_flat(&flat, &phys.model).unwrap();
        let routed = phys.timing().unwrap();
        assert!(
            routed.critical_path_ns >= heuristic.critical_path_ns - 1e-9,
            "routed {} < heuristic {}",
            routed.critical_path_ns,
            heuristic.critical_path_ns
        );
    }

    #[test]
    fn anneal_strategy_places_an_unplaced_circuit() {
        let mut circuit = hand_placed();
        circuit.strip_placement();
        let config = PnrConfig {
            strategy: PlacementStrategy::Anneal,
            ..PnrConfig::virtex()
        };
        let phys = place_and_route(&circuit, &config).unwrap();
        let flat = FlatNetlist::build(phys.circuit()).unwrap();
        assert!(flat.leaves().iter().any(|l| l.loc.is_some()));
        assert!(phys.routing.stats.converged);
        // Every routed sink reported a positive delay.
        for net in &phys.routing.nets {
            for sink in &net.sinks {
                assert!(sink.delay_ns > 0.0);
            }
        }
    }

    #[test]
    fn analyze_runs_constraint_sta_on_routed_delays() {
        let circuit = hand_placed();
        let phys = place_and_route(&circuit, &PnrConfig::virtex()).unwrap();
        let mut constraints = TimingConstraints::new();
        constraints.clock("clk", 10.0, "clk");
        let report = phys.analyze(&constraints).unwrap();
        assert!(!report.endpoints.is_empty());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let circuit = hand_placed();
        let a = place_and_route(&circuit, &PnrConfig::virtex()).unwrap();
        let b = place_and_route(&circuit, &PnrConfig::virtex()).unwrap();
        assert_eq!(a.routing.stats, b.routing.stats);
        assert_eq!(
            a.timing().unwrap().critical_path_ns,
            b.timing().unwrap().critical_path_ns
        );
    }
}
