//! Estimation errors.

use std::fmt;

/// Errors raised while estimating area or timing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EstimateError {
    /// The circuit failed to flatten.
    Hdl(ipd_hdl::HdlError),
    /// A primitive could not be interpreted by the technology library.
    Tech(ipd_techlib::TechError),
    /// Timing analysis requires an acyclic combinational network.
    CombinationalLoop {
        /// A net on the cycle.
        net: String,
    },
    /// The placed footprint exceeds the requested routing device.
    DeviceTooSmall {
        /// The requested part.
        device: String,
        /// CLB rows the placement needs.
        rows: u32,
        /// CLB columns the placement needs.
        cols: u32,
    },
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::Hdl(e) => write!(f, "circuit error: {e}"),
            EstimateError::Tech(e) => write!(f, "technology error: {e}"),
            EstimateError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net}")
            }
            EstimateError::DeviceTooSmall { device, rows, cols } => {
                write!(
                    f,
                    "device {device} cannot cover the {rows}x{cols} CLB placed footprint"
                )
            }
        }
    }
}

impl std::error::Error for EstimateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimateError::Hdl(e) => Some(e),
            EstimateError::Tech(e) => Some(e),
            EstimateError::CombinationalLoop { .. } | EstimateError::DeviceTooSmall { .. } => None,
        }
    }
}

impl From<ipd_hdl::HdlError> for EstimateError {
    fn from(e: ipd_hdl::HdlError) -> Self {
        EstimateError::Hdl(e)
    }
}

impl From<ipd_techlib::TechError> for EstimateError {
    fn from(e: ipd_techlib::TechError) -> Self {
        EstimateError::Tech(e)
    }
}
