//! A congestion-aware global router over the Virtex CLB grid.
//!
//! PathFinder-style negotiated congestion (McMurchie & Ebeling): the
//! routing resources are the channel segments between adjacent CLB
//! coordinates, each with a wire capacity. Every net is routed as a
//! tree over the grid by repeated multi-source maze expansion; nets
//! negotiate for oversubscribed segments across iterations through a
//! present-congestion cost that sharpens each round and a history cost
//! that remembers chronic hot spots. At convergence no segment carries
//! more wires than its capacity — or the overflow is reported honestly
//! in [`RouteStats`].
//!
//! The router's product is geometry: per-net routed trees with a wire
//! length per sink, convertible to a [`RoutedDelays`] database that
//! [`crate::Sta`] consumes through the [`NetDelaySource`] seam —
//! replacing the Manhattan-distance guess with the path wires actually
//! take.

use std::collections::HashMap;
use std::sync::Arc;

use ipd_hdl::{FlatKind, FlatNetlist, NetId, PortDir, Rloc};
use ipd_techlib::{DelayModel, Device, NetDelaySource, PrimClass, PrimKind, RoutedDelays};

use crate::error::EstimateError;

/// Router parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// RNG seed: fixes the net ordering of the negotiation (routing is
    /// fully deterministic per seed).
    pub seed: u64,
    /// Wires per channel segment (one segment joins two adjacent CLB
    /// coordinates).
    pub channel_capacity: u16,
    /// Negotiation rounds before giving up and reporting overflow.
    pub max_iterations: u32,
    /// Routing device. `None` picks the smallest catalog part whose
    /// CLB grid covers the placed footprint.
    pub device: Option<Device>,
    /// Initial present-congestion factor.
    pub pres_fac: f64,
    /// Multiplier applied to the present-congestion factor each round.
    pub pres_mult: f64,
    /// History cost added to every overused segment each round.
    pub hist_fac: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            seed: 0x0907_E12B,
            channel_capacity: 8,
            max_iterations: 32,
            device: None,
            pres_fac: 0.5,
            pres_mult: 1.6,
            hist_fac: 0.4,
        }
    }
}

/// One routed load of a net.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedSink {
    /// The sink CLB.
    pub loc: Rloc,
    /// Routed wire length in channel segments (0 for an intra-CLB
    /// load). Always at least the Manhattan distance from the source.
    pub wirelength: u32,
    /// Backannotated net delay of this load under the delay model the
    /// route was produced with.
    pub delay_ns: f64,
}

/// One net's routed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedNet {
    /// The flat net.
    pub net: NetId,
    /// The net's hierarchical name.
    pub name: String,
    /// The driver's CLB.
    pub source: Rloc,
    /// Total reader-pin fanout of the net (the same count the
    /// heuristic model charges).
    pub fanout: usize,
    /// Routed loads, deduplicated per sink CLB.
    pub sinks: Vec<RoutedSink>,
    /// The tree's channel segments as `(from, to)` CLB pairs.
    pub segments: Vec<(Rloc, Rloc)>,
}

/// Convergence and quality statistics of one routing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteStats {
    /// Nets routed (nets with a placed driver and ≥1 routable sink).
    pub nets: usize,
    /// Routed sinks across all nets.
    pub sinks: usize,
    /// Negotiation rounds executed (1 = first routing already legal).
    pub iterations: u32,
    /// Whether every channel segment ended within capacity.
    pub converged: bool,
    /// Segments still over capacity at exit.
    pub overused_segments: usize,
    /// Total wires above capacity across overused segments.
    pub overflow_wires: u64,
    /// Total routed wire length in channel segments.
    pub total_wirelength: u64,
    /// Routable grid rows.
    pub grid_rows: u32,
    /// Routable grid columns.
    pub grid_cols: u32,
    /// Wires per channel segment.
    pub channel_capacity: u16,
    /// The device whose CLB grid bounded the route, if any placement
    /// existed to route over.
    pub device: Option<&'static str>,
}

impl std::fmt::Display for RouteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "routed {} net(s), {} sink(s), {} segment-wirelength in {} iteration(s) on {} ({}x{} CLBs, capacity {}): {}",
            self.nets,
            self.sinks,
            self.total_wirelength,
            self.iterations,
            self.device.unwrap_or("(no device)"),
            self.grid_rows,
            self.grid_cols,
            self.channel_capacity,
            if self.converged {
                "converged".to_owned()
            } else {
                format!(
                    "OVERFLOW ({} segment(s), {} wire(s) over)",
                    self.overused_segments, self.overflow_wires
                )
            }
        )
    }
}

/// The routed design: per-net trees plus channel occupancy.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// Routed trees, in net-id order.
    pub nets: Vec<RoutedNet>,
    /// Convergence and quality statistics.
    pub stats: RouteStats,
    grid: Grid,
    occupancy: Vec<u16>,
}

impl RoutingResult {
    /// The backannotated per-`(net, sink)` delay database.
    #[must_use]
    pub fn routed_delays(&self) -> RoutedDelays {
        let mut out = RoutedDelays::new();
        for net in &self.nets {
            for sink in &net.sinks {
                out.insert(net.net, sink.loc, sink.delay_ns);
            }
        }
        out
    }

    /// The routed [`NetDelaySource`] for STA consumption.
    #[must_use]
    pub fn delay_source(&self) -> NetDelaySource {
        NetDelaySource::Routed(Arc::new(self.routed_delays()))
    }

    /// Wires currently using the channel segment between two adjacent
    /// CLB coordinates, or `None` when the pair is not an adjacent
    /// in-grid pair.
    #[must_use]
    pub fn occupancy_between(&self, a: Rloc, b: Rloc) -> Option<u16> {
        let ca = self.grid.cell(a)?;
        let cb = self.grid.cell(b)?;
        let edge = self.grid.edge_between(ca, cb)?;
        Some(self.occupancy[edge as usize])
    }

    /// The routable grid as `(first row, first col, rows, cols)`.
    #[must_use]
    pub fn grid_bounds(&self) -> (i32, i32, u32, u32) {
        (
            self.grid.row0,
            self.grid.col0,
            self.grid.rows,
            self.grid.cols,
        )
    }
}

/// The routable CLB grid in absolute `Rloc` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grid {
    row0: i32,
    col0: i32,
    rows: u32,
    cols: u32,
}

impl Grid {
    fn n_cells(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// Horizontal segments precede vertical ones in edge-id space.
    fn n_h_edges(&self) -> u32 {
        self.rows * self.cols.saturating_sub(1)
    }

    fn n_edges(&self) -> usize {
        (self.n_h_edges() + self.rows.saturating_sub(1) * self.cols) as usize
    }

    fn cell(&self, loc: Rloc) -> Option<u32> {
        let r = loc.row.checked_sub(self.row0)?;
        let c = loc.col.checked_sub(self.col0)?;
        if r < 0 || c < 0 || r as u32 >= self.rows || c as u32 >= self.cols {
            return None;
        }
        Some(r as u32 * self.cols + c as u32)
    }

    fn loc(&self, cell: u32) -> Rloc {
        Rloc::new(
            self.row0 + (cell / self.cols) as i32,
            self.col0 + (cell % self.cols) as i32,
        )
    }

    /// The channel segment joining two orthogonally adjacent cells.
    fn edge_between(&self, a: u32, b: u32) -> Option<u32> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (r, c) = (lo / self.cols, lo % self.cols);
        if hi == lo + 1 && c + 1 < self.cols {
            return Some(r * (self.cols - 1) + c);
        }
        if hi == lo + self.cols && r + 1 < self.rows {
            return Some(self.n_h_edges() + r * self.cols + c);
        }
        None
    }

    /// Orthogonal neighbors of `cell` with the joining segment.
    fn neighbors(&self, cell: u32, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let (r, c) = (cell / self.cols, cell % self.cols);
        if c + 1 < self.cols {
            out.push((cell + 1, r * (self.cols - 1) + c));
        }
        if c > 0 {
            out.push((cell - 1, r * (self.cols - 1) + c - 1));
        }
        if r + 1 < self.rows {
            out.push((cell + self.cols, self.n_h_edges() + r * self.cols + c));
        }
        if r > 0 {
            out.push((cell - self.cols, self.n_h_edges() + (r - 1) * self.cols + c));
        }
    }

    fn manhattan(&self, a: u32, b: u32) -> u32 {
        let (ra, ca) = (a / self.cols, a % self.cols);
        let (rb, cb) = (b / self.cols, b % self.cols);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

/// One net's routing problem: source cell plus sink cells.
struct NetTask {
    net: NetId,
    source: u32,
    sinks: Vec<u32>,
    fanout: usize,
}

/// A routed tree: per-cell parent link (cell → (parent cell, edge)).
#[derive(Default, Clone)]
struct Tree {
    parent: HashMap<u32, (u32, u32)>,
    edges: Vec<u32>,
}

/// Routes a placed, flattened design over the CLB grid.
///
/// Nets with a placed driver and at least one placed, routable sink
/// are routed; everything else (port-driven nets, unplaced endpoints)
/// stays on the heuristic fallback of the [`NetDelaySource`] seam.
/// Clock pins of sequential primitives ride the dedicated clock
/// network and carry-to-carry hops the dedicated carry route, so
/// neither consumes channel capacity.
///
/// # Errors
///
/// Fails on unknown primitives, or when an explicitly requested device
/// cannot cover the placed footprint.
pub fn route(
    flat: &FlatNetlist,
    model: &DelayModel,
    config: &RouterConfig,
) -> Result<RoutingResult, EstimateError> {
    // Per-leaf placement and primitive classification.
    let leaves = flat.leaves();
    let mut leaf_carry = vec![false; leaves.len()];
    let mut leaf_seq = vec![false; leaves.len()];
    for (li, leaf) in leaves.iter().enumerate() {
        if let FlatKind::Primitive(p) = &leaf.kind {
            let kind = PrimKind::from_primitive(p)?;
            leaf_carry[li] = kind.is_carry();
            leaf_seq[li] = matches!(
                kind.class(),
                PrimClass::Ff { .. } | PrimClass::Srl16 | PrimClass::Ram16
            );
        }
    }

    // The placed bounding box.
    let mut bounds: Option<(i32, i32, i32, i32)> = None;
    for leaf in leaves {
        if let Some(loc) = leaf.loc {
            bounds = Some(match bounds {
                None => (loc.row, loc.col, loc.row, loc.col),
                Some((r0, c0, r1, c1)) => (
                    r0.min(loc.row),
                    c0.min(loc.col),
                    r1.max(loc.row),
                    c1.max(loc.col),
                ),
            });
        }
    }
    let Some((r0, c0, r1, c1)) = bounds else {
        // Nothing placed, nothing to route.
        let grid = Grid {
            row0: 0,
            col0: 0,
            rows: 0,
            cols: 0,
        };
        return Ok(RoutingResult {
            nets: Vec::new(),
            stats: RouteStats {
                nets: 0,
                sinks: 0,
                iterations: 0,
                converged: true,
                overused_segments: 0,
                overflow_wires: 0,
                total_wirelength: 0,
                grid_rows: 0,
                grid_cols: 0,
                channel_capacity: config.channel_capacity,
                device: None,
            },
            grid,
            occupancy: Vec::new(),
        });
    };
    let bbox_rows = (r1 - r0 + 1) as u32;
    let bbox_cols = (c1 - c0 + 1) as u32;

    // The routable area is a real device's CLB grid, centered on the
    // placed footprint (detour room around a dense placement is what
    // the negotiation spends).
    let device = match config.device {
        Some(d) => {
            if d.rows < bbox_rows || d.cols < bbox_cols {
                return Err(EstimateError::DeviceTooSmall {
                    device: d.name.to_owned(),
                    rows: bbox_rows,
                    cols: bbox_cols,
                });
            }
            d
        }
        None => Device::catalog()
            .iter()
            .find(|d| d.rows >= bbox_rows && d.cols >= bbox_cols)
            .copied()
            .unwrap_or_else(|| *Device::catalog().last().expect("catalog is non-empty")),
    };
    let rows = device.rows.max(bbox_rows);
    let cols = device.cols.max(bbox_cols);
    let grid = Grid {
        row0: r0 - ((rows - bbox_rows) / 2) as i32,
        col0: c0 - ((cols - bbox_cols) / 2) as i32,
        rows,
        cols,
    };

    // Assemble the routing problems.
    let drivers = flat.drivers();
    let readers = flat.readers();
    let mut tasks: Vec<NetTask> = Vec::new();
    for net in 0..flat.net_count() {
        let Some(&(dli, _)) = drivers[net].first() else {
            continue;
        };
        let Some(src_loc) = leaves[dli].loc else {
            continue;
        };
        let source = grid.cell(src_loc).expect("driver inside routable grid");
        let driver_carry = leaf_carry[dli];
        let mut sinks: Vec<u32> = Vec::new();
        for &(rli, pi) in &readers[net] {
            if rli == dli && leaves[rli].conns[pi].dir != PortDir::Input {
                continue;
            }
            let Some(loc) = leaves[rli].loc else {
                continue;
            };
            // Clock pins of sequential leaves ride the dedicated
            // clock network.
            if leaf_seq[rli] && leaves[rli].conns[pi].port == "c" {
                continue;
            }
            // Carry-to-carry hops ride the dedicated carry route.
            if driver_carry && leaf_carry[rli] {
                continue;
            }
            sinks.push(grid.cell(loc).expect("sink inside routable grid"));
        }
        sinks.sort_unstable();
        sinks.dedup();
        if sinks.is_empty() {
            continue;
        }
        tasks.push(NetTask {
            net: NetId::from_index(net),
            source,
            sinks,
            fanout: readers[net].len(),
        });
    }

    // Deterministic seed-keyed net order for the negotiation.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (splitmix64(config.seed ^ (i as u64).wrapping_mul(0x9E37)), i));

    let n_edges = grid.n_edges();
    let mut occupancy = vec![0u16; n_edges];
    let mut history = vec![0.0f64; n_edges];
    let mut trees: Vec<Tree> = Vec::with_capacity(tasks.len());
    trees.resize_with(tasks.len(), Tree::default);
    let cap = config.channel_capacity;
    let mut maze = Maze::new(grid.n_cells());

    // Round 1: route everything.
    let mut pres_fac = config.pres_fac;
    for &ti in &order {
        trees[ti] = route_net(
            &grid, &tasks[ti], &occupancy, &history, cap, pres_fac, &mut maze,
        );
        for &e in &trees[ti].edges {
            occupancy[e as usize] += 1;
        }
    }
    let mut iterations = 1u32;

    // Negotiation: rip up and re-route the nets crossing overused
    // segments under sharpened congestion costs until legal.
    while iterations < config.max_iterations {
        let overused: Vec<u32> = (0..n_edges as u32)
            .filter(|&e| occupancy[e as usize] > cap)
            .collect();
        if overused.is_empty() {
            break;
        }
        for &e in &overused {
            history[e as usize] += config.hist_fac;
        }
        pres_fac *= config.pres_mult;
        let hot = |tree: &Tree| tree.edges.iter().any(|&e| occupancy[e as usize] > cap);
        let victims: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&ti| hot(&trees[ti]))
            .collect();
        for &ti in &victims {
            for &e in &trees[ti].edges {
                occupancy[e as usize] -= 1;
            }
        }
        for &ti in &victims {
            trees[ti] = route_net(
                &grid, &tasks[ti], &occupancy, &history, cap, pres_fac, &mut maze,
            );
            for &e in &trees[ti].edges {
                occupancy[e as usize] += 1;
            }
        }
        iterations += 1;
    }

    // Harvest geometry: per-sink wire lengths from the final trees.
    let net_names = flat.nets();
    let mut routed: Vec<RoutedNet> = Vec::with_capacity(tasks.len());
    let mut total_wirelength = 0u64;
    let mut total_sinks = 0usize;
    for (ti, task) in tasks.iter().enumerate() {
        let tree = &trees[ti];
        let mut depth: HashMap<u32, u32> = HashMap::new();
        depth.insert(task.source, 0);
        let sink_depth = |cell: u32, depth: &mut HashMap<u32, u32>| -> u32 {
            let mut chain = Vec::new();
            let mut cur = cell;
            while !depth.contains_key(&cur) {
                chain.push(cur);
                cur = tree.parent[&cur].0;
            }
            let mut d = depth[&cur];
            for &c in chain.iter().rev() {
                d += 1;
                depth.insert(c, d);
            }
            d
        };
        let mut sinks = Vec::with_capacity(task.sinks.len());
        for &s in &task.sinks {
            let wirelength = sink_depth(s, &mut depth);
            let delay_ns = model.net_base_ns
                + model.net_per_clb_ns * f64::from(wirelength)
                + model.net_per_fanout_ns * task.fanout.saturating_sub(1) as f64;
            sinks.push(RoutedSink {
                loc: grid.loc(s),
                wirelength,
                delay_ns,
            });
        }
        total_wirelength += tree.edges.len() as u64;
        total_sinks += sinks.len();
        let segments = tree
            .parent
            .iter()
            .map(|(&cell, &(parent, _))| (grid.loc(parent), grid.loc(cell)))
            .collect::<Vec<_>>();
        let mut segments = segments;
        segments.sort_unstable_by_key(|&(a, b)| (a, b));
        routed.push(RoutedNet {
            net: task.net,
            name: net_names[task.net.index()].name.clone(),
            source: grid.loc(task.source),
            fanout: task.fanout,
            sinks,
            segments,
        });
    }
    routed.sort_unstable_by_key(|n| n.net);

    let overused_segments = occupancy.iter().filter(|&&o| o > cap).count();
    let overflow_wires: u64 = occupancy
        .iter()
        .filter(|&&o| o > cap)
        .map(|&o| u64::from(o - cap))
        .sum();
    let stats = RouteStats {
        nets: routed.len(),
        sinks: total_sinks,
        iterations,
        converged: overused_segments == 0,
        overused_segments,
        overflow_wires,
        total_wirelength,
        grid_rows: grid.rows,
        grid_cols: grid.cols,
        channel_capacity: cap,
        device: Some(device.name),
    };
    Ok(RoutingResult {
        nets: routed,
        stats,
        grid,
        occupancy,
    })
}

/// Routes one net: iterative multi-source A* maze expansion growing a
/// tree from the source, nearest remaining sink first.
fn route_net(
    grid: &Grid,
    task: &NetTask,
    occupancy: &[u16],
    history: &[f64],
    cap: u16,
    pres_fac: f64,
    maze: &mut Maze,
) -> Tree {
    let mut tree = Tree::default();
    let mut in_tree: Vec<u32> = vec![task.source];
    let mut remaining: Vec<u32> = task.sinks.clone();
    // Nearest-first gives short trunks for later sinks to tap.
    remaining.sort_unstable_by_key(|&s| (grid.manhattan(task.source, s), s));
    let edge_cost = |e: u32| -> f64 {
        // Overuse this edge would have if the net claimed one wire.
        let over = f64::from((occupancy[e as usize] + 1).saturating_sub(cap));
        (1.0 + history[e as usize]) * (1.0 + pres_fac * over)
    };
    for &sink in &remaining {
        if in_tree.contains(&sink) {
            continue;
        }
        let path = maze.search(grid, &in_tree, sink, &edge_cost);
        for (cell, parent, edge) in path {
            tree.parent.insert(cell, (parent, edge));
            tree.edges.push(edge);
            in_tree.push(cell);
        }
    }
    tree
}

/// Reusable A* scratch state (epoch-stamped to avoid reallocation).
struct Maze {
    g: Vec<f64>,
    stamp: Vec<u32>,
    came: Vec<(u32, u32)>,
    epoch: u32,
    scratch: Vec<(u32, u32)>,
}

impl Maze {
    fn new(n_cells: usize) -> Self {
        Maze {
            g: vec![0.0; n_cells],
            stamp: vec![0; n_cells],
            came: vec![(u32::MAX, u32::MAX); n_cells],
            epoch: 0,
            scratch: Vec::with_capacity(4),
        }
    }

    /// Multi-source A* from `sources` (cost 0) to `sink`; returns the
    /// new path as `(cell, parent, edge)` from the tree outward.
    fn search(
        &mut self,
        grid: &Grid,
        sources: &[u32],
        sink: u32,
        edge_cost: &dyn Fn(u32) -> f64,
    ) -> Vec<(u32, u32, u32)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        self.epoch += 1;
        let epoch = self.epoch;
        let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
        for &s in sources {
            self.g[s as usize] = 0.0;
            self.stamp[s as usize] = epoch;
            self.came[s as usize] = (u32::MAX, u32::MAX);
            heap.push(Reverse((Cost(f64::from(grid.manhattan(s, sink))), s)));
        }
        while let Some(Reverse((_, cell))) = heap.pop() {
            if cell == sink {
                // Backtrack to the tree (a cell with no parent link).
                let mut path = Vec::new();
                let mut cur = cell;
                loop {
                    let (parent, edge) = self.came[cur as usize];
                    if parent == u32::MAX {
                        break;
                    }
                    path.push((cur, parent, edge));
                    cur = parent;
                }
                path.reverse();
                return path;
            }
            let g = self.g[cell as usize];
            let mut neigh = std::mem::take(&mut self.scratch);
            grid.neighbors(cell, &mut neigh);
            for &(next, edge) in &neigh {
                let ng = g + edge_cost(edge);
                let seen = self.stamp[next as usize] == epoch;
                if !seen || ng < self.g[next as usize] {
                    self.g[next as usize] = ng;
                    self.stamp[next as usize] = epoch;
                    self.came[next as usize] = (cell, edge);
                    heap.push(Reverse((
                        Cost(ng + f64::from(grid.manhattan(next, sink))),
                        next,
                    )));
                }
            }
            self.scratch = neigh;
        }
        // Unreachable only on a degenerate 0/1-cell grid; the sink is
        // then already in the tree.
        Vec::new()
    }
}

/// Total-order f64 wrapper so A* keys can live in a `BinaryHeap`.
#[derive(PartialEq)]
struct Cost(f64);

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// SplitMix64: one hop of a deterministic hash for seed-keyed orders.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{Circuit, PortSpec, Signal};
    use ipd_techlib::LogicCtx;

    /// `n` parallel placed wires from column 0 to column `len`, all in
    /// distinct rows — independent two-pin nets.
    fn parallel_wires(n: usize, len: i32) -> Circuit {
        let mut c = Circuit::new("wires");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", n as u32)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", n as u32)).unwrap();
        for i in 0..n {
            let t = ctx.wire(&format!("t{i}"), 1);
            let src = ctx.inv(Signal::bit_of(a, i as u32), t).unwrap();
            ctx.set_rloc(src, Rloc::new(i as i32, 0));
            let dst = ctx.inv(t, Signal::bit_of(y, i as u32)).unwrap();
            ctx.set_rloc(dst, Rloc::new(i as i32, len));
        }
        c
    }

    /// `n` two-pin nets all forced through the same two endpoints: a
    /// congestion worst case for a narrow channel.
    fn overlapping_wires(n: usize, len: i32) -> Circuit {
        let mut c = Circuit::new("hot");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", n as u32)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", n as u32)).unwrap();
        for i in 0..n {
            let t = ctx.wire(&format!("t{i}"), 1);
            let src = ctx.inv(Signal::bit_of(a, i as u32), t).unwrap();
            ctx.set_rloc(src, Rloc::new(0, 0));
            let dst = ctx.inv(t, Signal::bit_of(y, i as u32)).unwrap();
            ctx.set_rloc(dst, Rloc::new(0, len));
        }
        c
    }

    fn route_circuit(c: &Circuit, config: &RouterConfig) -> RoutingResult {
        let flat = FlatNetlist::build(c).unwrap();
        route(&flat, &DelayModel::virtex(), config).unwrap()
    }

    #[test]
    fn straight_wires_route_at_manhattan_length() {
        let c = parallel_wires(4, 5);
        let r = route_circuit(&c, &RouterConfig::default());
        assert!(r.stats.converged, "{}", r.stats);
        assert_eq!(r.stats.nets, 4);
        for net in &r.nets {
            assert_eq!(net.sinks.len(), 1);
            assert_eq!(net.sinks[0].wirelength, 5, "{}", net.name);
        }
    }

    #[test]
    fn congestion_negotiation_spreads_wires() {
        // 6 identical 4-CLB wires, capacity 2: the direct channel can
        // carry only 2, so the others must detour — and converge.
        let c = overlapping_wires(6, 4);
        let config = RouterConfig {
            channel_capacity: 2,
            ..RouterConfig::default()
        };
        let r = route_circuit(&c, &config);
        assert!(r.stats.converged, "{}", r.stats);
        assert!(r.stats.iterations > 1, "should need negotiation");
        // Someone detoured: total wirelength exceeds 6 × direct.
        assert!(r.stats.total_wirelength > 6 * 4, "{}", r.stats);
        // Every wire still at least Manhattan length.
        for net in &r.nets {
            assert!(net.sinks[0].wirelength >= 4);
        }
    }

    #[test]
    fn hopeless_overflow_is_reported_honestly() {
        // 8 wires, capacity 1, a single iteration: cannot be legal.
        let c = overlapping_wires(8, 3);
        let config = RouterConfig {
            channel_capacity: 1,
            max_iterations: 1,
            ..RouterConfig::default()
        };
        let r = route_circuit(&c, &config);
        assert!(!r.stats.converged);
        assert!(r.stats.overused_segments > 0);
        assert!(r.stats.overflow_wires > 0);
    }

    #[test]
    fn routing_is_deterministic_per_seed() {
        let c = overlapping_wires(6, 4);
        let config = RouterConfig {
            channel_capacity: 2,
            ..RouterConfig::default()
        };
        let a = route_circuit(&c, &config);
        let b = route_circuit(&c, &config);
        assert_eq!(a.nets, b.nets);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn routed_delay_dominates_heuristic_placed_delay() {
        let c = overlapping_wires(6, 4);
        let config = RouterConfig {
            channel_capacity: 2,
            ..RouterConfig::default()
        };
        let r = route_circuit(&c, &config);
        let model = DelayModel::virtex();
        let flat = FlatNetlist::build(&c).unwrap();
        let drivers = flat.drivers();
        for net in &r.nets {
            let (dli, _) = drivers[net.net.index()][0];
            let from = flat.leaves()[dli].loc.unwrap();
            for sink in &net.sinks {
                let heuristic = model.net_delay_placed(from, sink.loc, net.fanout);
                assert!(
                    sink.delay_ns >= heuristic - 1e-12,
                    "net {} sink {}: routed {} < heuristic {}",
                    net.name,
                    sink.loc,
                    sink.delay_ns,
                    heuristic
                );
            }
        }
    }

    #[test]
    fn multi_sink_nets_share_a_tree() {
        // One driver at the origin fanning out to 3 placed loads.
        let mut c = Circuit::new("fan");
        {
            let mut ctx = c.root_ctx();
            let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
            let y = ctx.add_port(PortSpec::output("y", 3)).unwrap();
            let t = ctx.wire("t", 1);
            let src = ctx.inv(a, t).unwrap();
            ctx.set_rloc(src, Rloc::new(0, 0));
            for (i, loc) in [Rloc::new(0, 3), Rloc::new(2, 3), Rloc::new(2, 0)]
                .into_iter()
                .enumerate()
            {
                let dst = ctx.inv(t, Signal::bit_of(y, i as u32)).unwrap();
                ctx.set_rloc(dst, loc);
            }
        }
        let r = route_circuit(&c, &RouterConfig::default());
        assert!(r.stats.converged);
        let fan = r.nets.iter().find(|n| n.sinks.len() == 3).expect("fan net");
        // A tree shares trunk segments: fewer segments than the sum of
        // three independent Manhattan routes.
        let tree_len = fan.segments.len() as u32;
        let independent: u32 = fan.sinks.iter().map(|s| s.wirelength).sum();
        assert!(tree_len <= independent);
        // Each sink's wirelength is at least its Manhattan distance.
        for s in &fan.sinks {
            let d = (s.loc.row - fan.source.row).unsigned_abs()
                + (s.loc.col - fan.source.col).unsigned_abs();
            assert!(s.wirelength >= d);
        }
    }

    #[test]
    fn unplaced_design_routes_to_nothing() {
        let mut c = Circuit::new("u");
        {
            let mut ctx = c.root_ctx();
            let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
            let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
            ctx.inv(a, y).unwrap();
        }
        let r = route_circuit(&c, &RouterConfig::default());
        assert_eq!(r.stats.nets, 0);
        assert!(r.stats.converged);
        assert!(r.routed_delays().is_empty());
        assert_eq!(r.stats.device, None);
    }

    #[test]
    fn explicit_device_too_small_is_an_error() {
        let c = parallel_wires(2, 30);
        let flat = FlatNetlist::build(&c).unwrap();
        let config = RouterConfig {
            device: Device::by_name("xcv50"), // 16x24 < 31 cols needed
            ..RouterConfig::default()
        };
        assert!(matches!(
            route(&flat, &DelayModel::virtex(), &config),
            Err(EstimateError::DeviceTooSmall { .. })
        ));
    }

    #[test]
    fn occupancy_is_queryable() {
        let c = parallel_wires(1, 1);
        let r = route_circuit(&c, &RouterConfig::default());
        assert_eq!(
            r.occupancy_between(Rloc::new(0, 0), Rloc::new(0, 1)),
            Some(1)
        );
        // Non-adjacent pair.
        assert_eq!(r.occupancy_between(Rloc::new(0, 0), Rloc::new(3, 3)), None);
    }
}
