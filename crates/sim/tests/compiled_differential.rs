//! Differential testing of the compiled bytecode engine: every lane of
//! a `CompiledSimulator` must be bit-identical (including `X`/`Z`
//! propagation) to the interpreted `BatchSimulator` and to a scalar
//! `Simulator` run of the same stimulus, cycle for cycle and net for
//! net — across the full 256-lane plane width, all stateful
//! primitives, and comb-loop relaxation mode.

use ipd_hdl::{Circuit, Logic, LogicVec, PortSpec, Signal};
use ipd_sim::{
    BatchSimulator, CompiledSimulator, SimError, Simulator, SweepEngine, VectorSweep,
    COMPILED_MAX_LANES, MAX_LANES,
};
use ipd_techlib::LogicCtx;
use ipd_testutil::{check_n, XorShift64};

fn any_logic(rng: &mut XorShift64) -> Logic {
    match rng.below(8) {
        0..=2 => Logic::Zero,
        3..=5 => Logic::One,
        6 => Logic::X,
        _ => Logic::Z,
    }
}

fn any_vec(rng: &mut XorShift64, width: usize) -> LogicVec {
    (0..width).map(|_| any_logic(rng)).collect()
}

/// A random combinational DAG over `inputs` primary bits; the wire
/// names `g0..gN` are stable for net-level probing.
fn random_dag(rng: &mut XorShift64, inputs: usize, max_ops: usize) -> (Circuit, usize) {
    let ops = 1 + rng.index(max_ops - 1);
    let mut circuit = Circuit::new("dag");
    let mut ctx = circuit.root_ctx();
    let a = ctx
        .add_port(PortSpec::input("a", inputs as u32))
        .expect("port");
    let y = ctx.add_port(PortSpec::output("y", 1)).expect("port");
    let mut pool: Vec<Signal> = (0..inputs).map(|b| Signal::bit_of(a, b as u32)).collect();
    for k in 0..ops {
        let out = ctx.wire(&format!("g{k}"), 1);
        let pick = |rng: &mut XorShift64| pool[rng.index(pool.len())].clone();
        match rng.below(8) {
            0 => ctx.inv(pick(rng), out).expect("inv"),
            1 => ctx.and2(pick(rng), pick(rng), out).expect("and2"),
            2 => ctx.or2(pick(rng), pick(rng), out).expect("or2"),
            3 => ctx.xor2(pick(rng), pick(rng), out).expect("xor2"),
            4 => ctx
                .mux2(pick(rng), pick(rng), pick(rng), out)
                .expect("mux2"),
            5 => ctx
                .muxcy(pick(rng), pick(rng), pick(rng), out)
                .expect("muxcy"),
            6 => ctx.xorcy(pick(rng), pick(rng), out).expect("xorcy"),
            _ => {
                let init = (rng.next_u64() & 0xFFFF) as u16;
                let srcs = [pick(rng), pick(rng), pick(rng), pick(rng)];
                ctx.lut(init, &srcs, out).expect("lut4")
            }
        };
        pool.push(out.into());
    }
    let last = pool.last().expect("non-empty").clone();
    ctx.buffer(last, y).expect("buffer");
    (circuit, ops)
}

/// Random four-state stimulus on combinational DAGs: every lane of the
/// compiled engine equals both the scalar simulator and (for shared
/// lanes) the interpreted batch engine, on the output and on every
/// internal net.
#[test]
fn comb_dags_match_scalar_and_interpreted_on_every_net() {
    check_n("comb_dags_compiled", 16, |rng| {
        let inputs = 1 + rng.index(7);
        let (circuit, ops) = random_dag(rng, inputs, 24);
        // Bias toward lane counts beyond the interpreted engine's 64.
        let lanes = 1 + rng.index(COMPILED_MAX_LANES);
        let mut compiled = CompiledSimulator::new(&circuit, lanes).expect("compiled");
        let mut batch = BatchSimulator::new(&circuit, lanes.min(MAX_LANES)).expect("batch compile");
        let mut scalars: Vec<Simulator> = Vec::new();
        for lane in 0..lanes {
            let stim = any_vec(rng, inputs);
            compiled.set_lane("a", lane, &stim).expect("compiled set");
            if lane < MAX_LANES {
                batch.set_lane("a", lane, &stim).expect("batch set");
            }
            let mut s = Simulator::new(&circuit).expect("scalar compile");
            s.set("a", stim).expect("scalar set");
            scalars.push(s);
        }
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            assert_eq!(
                compiled.peek_lane("y", lane).expect("compiled y"),
                scalar.peek("y").expect("scalar y"),
                "output lane {lane}"
            );
            for k in 0..ops {
                let net = format!("dag/g{k}");
                let got = compiled.peek_net_lane(&net, lane).expect("compiled net");
                assert_eq!(
                    got,
                    scalar.peek_net(&net).expect("scalar net"),
                    "net {net} lane {lane}"
                );
                if lane < MAX_LANES {
                    assert_eq!(
                        got,
                        batch.peek_net_lane(&net, lane).expect("batch net"),
                        "net {net} lane {lane} vs interpreted"
                    );
                }
            }
        }
    });
}

/// A circuit exercising every stateful primitive: FD, FDCE, FDRE,
/// SRL16 and RAM16X1, plus combinational mixing of their outputs.
fn stateful_circuit() -> Circuit {
    let mut c = Circuit::new("stateful");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).expect("clk");
    let ce = ctx.add_port(PortSpec::input("ce", 1)).expect("ce");
    let clr = ctx.add_port(PortSpec::input("clr", 1)).expect("clr");
    let we = ctx.add_port(PortSpec::input("we", 1)).expect("we");
    let d = ctx.add_port(PortSpec::input("d", 4)).expect("d");
    let a = ctx.add_port(PortSpec::input("a", 4)).expect("a");
    let q = ctx.add_port(PortSpec::output("q", 4)).expect("q");
    let tap = ctx.add_port(PortSpec::output("tap", 1)).expect("tap");
    let ram_o = ctx.add_port(PortSpec::output("ram_o", 1)).expect("ram_o");
    let mix = ctx.add_port(PortSpec::output("mix", 1)).expect("mix");
    ctx.fd(clk, Signal::bit_of(d, 0), Signal::bit_of(q, 0))
        .expect("fd");
    ctx.fdce(clk, ce, clr, Signal::bit_of(d, 1), Signal::bit_of(q, 1))
        .expect("fdce");
    ctx.fdre(clk, ce, clr, Signal::bit_of(d, 2), Signal::bit_of(q, 2))
        .expect("fdre");
    ctx.fd(clk, Signal::bit_of(d, 3), Signal::bit_of(q, 3))
        .expect("fd");
    ctx.srl16(0x0F0F, clk, ce, Signal::bit_of(d, 0), a, tap)
        .expect("srl16");
    ctx.ram16x1(0x1234, clk, we, Signal::bit_of(d, 1), a, ram_o)
        .expect("ram16x1");
    ctx.mux2(tap, ram_o, Signal::bit_of(q, 0), mix)
        .expect("mux2");
    c
}

/// Per-cycle, per-net equality on sequential circuits with changing
/// four-state inputs, including all state elements, across the full
/// 256-lane width.
#[test]
fn stateful_circuits_match_scalar_per_cycle() {
    let circuit = stateful_circuit();
    check_n("stateful_compiled", 8, |rng| {
        let lanes = 1 + rng.index(COMPILED_MAX_LANES);
        let cycles = 3 + rng.index(8);
        let mut compiled = CompiledSimulator::new(&circuit, lanes).expect("compiled");
        let mut scalars: Vec<Simulator> = (0..lanes)
            .map(|_| Simulator::new(&circuit).expect("scalar compile"))
            .collect();
        let out_ports = ["q", "tap", "ram_o", "mix"];
        for _cycle in 0..cycles {
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                for (port, width) in [("ce", 1), ("clr", 1), ("we", 1), ("d", 4), ("a", 4)] {
                    let v = any_vec(rng, width);
                    compiled.set_lane(port, lane, &v).expect("compiled set");
                    scalar.set(port, v).expect("scalar set");
                }
            }
            compiled.cycle(1).expect("compiled cycle");
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                scalar.cycle(1).expect("scalar cycle");
                for port in out_ports {
                    assert_eq!(
                        compiled.peek_lane(port, lane).expect("compiled peek"),
                        scalar.peek(port).expect("scalar peek"),
                        "port {port} lane {lane} cycle {}",
                        scalar.cycle_count()
                    );
                }
                for path in scalar.state_elements().to_vec() {
                    match (compiled.ff_state_lane(&path, lane), scalar.ff_state(&path)) {
                        (Some(b), Some(s)) => assert_eq!(b, s, "ff {path} lane {lane}"),
                        (None, None) => {
                            assert_eq!(
                                compiled.memory_lane(&path, lane),
                                scalar.memory(&path),
                                "memory {path} lane {lane}"
                            );
                        }
                        (b, s) => panic!("state kind mismatch on {path}: {b:?} vs {s:?}"),
                    }
                }
            }
        }
    });
}

/// Reset restores power-on state in every lane and keeps inputs, like
/// the scalar simulator's reset.
#[test]
fn reset_matches_scalar() {
    let circuit = stateful_circuit();
    let mut compiled = CompiledSimulator::new(&circuit, 200).expect("compiled");
    let mut scalar = Simulator::new(&circuit).expect("scalar");
    for lane in [0, 70, 199] {
        compiled.set_u64_lane("d", lane, 5).expect("set");
        compiled.set_u64_lane("ce", lane, 1).expect("set");
        compiled.set_u64_lane("clr", lane, 0).expect("set");
        compiled.set_u64_lane("we", lane, 0).expect("set");
        compiled.set_u64_lane("a", lane, 2).expect("set");
    }
    scalar.set_u64("d", 5).expect("set");
    scalar.set_u64("ce", 1).expect("set");
    scalar.set_u64("clr", 0).expect("set");
    scalar.set_u64("we", 0).expect("set");
    scalar.set_u64("a", 2).expect("set");
    compiled.cycle(4).expect("cycle");
    scalar.cycle(4).expect("cycle");
    compiled.reset();
    scalar.reset();
    assert_eq!(compiled.cycle_count(), 0);
    compiled.cycle(1).expect("cycle");
    scalar.cycle(1).expect("cycle");
    for lane in [0, 70, 199] {
        for port in ["q", "tap", "ram_o", "mix"] {
            assert_eq!(
                compiled.peek_lane(port, lane).expect("compiled"),
                scalar.peek(port).expect("scalar"),
                "{port} after reset, lane {lane}"
            );
        }
    }
}

/// Relaxation-mode circuits (combinational cycles) also match: an SR
/// latch built from cross-coupled NORs, driven with a random
/// set/reset sequence per lane.
#[test]
fn relaxation_mode_matches_scalar() {
    let mut c = Circuit::new("latch");
    let mut ctx = c.root_ctx();
    let s = ctx.add_port(PortSpec::input("s", 1)).expect("s");
    let r = ctx.add_port(PortSpec::input("r", 1)).expect("r");
    let q = ctx.add_port(PortSpec::output("q", 1)).expect("q");
    let nq = ctx.wire("nq", 1);
    let nor = |ctx: &mut ipd_hdl::CellCtx<'_>, name: &str, a: Signal, b: Signal, o: Signal| {
        ctx.leaf(
            ipd_hdl::Primitive::new("virtex", "nor2"),
            vec![
                PortSpec::input("i0", 1),
                PortSpec::input("i1", 1),
                PortSpec::output("o", 1),
            ],
            name,
            &[("i0", a), ("i1", b), ("o", o)],
        )
        .expect("nor2");
    };
    nor(&mut ctx, "n0", r.into(), nq.into(), q.into());
    nor(&mut ctx, "n1", s.into(), q.into(), nq.into());

    // The same set/hold/reset sequence replayed per lane: the compiled
    // engine's prefix-once relaxation must land on the same fixpoints
    // as the scalar simulator's full-network iteration.
    let seqs: [(u64, u64); 5] = [(1, 0), (0, 0), (0, 1), (0, 0), (1, 0)];
    let lanes = 100;
    let mut compiled = CompiledSimulator::new(&c, lanes).expect("compiled");
    assert!(!compiled.is_levelized());
    for lane in 0..lanes {
        let mut scalar = Simulator::new(&c).expect("scalar");
        for &(sv, rv) in &seqs[..=lane % seqs.len()] {
            scalar.set_u64("s", sv).expect("set");
            scalar.set_u64("r", rv).expect("set");
            let _ = scalar.peek("q").expect("settle");
        }
        for &(sv, rv) in &seqs[..=lane % seqs.len()] {
            compiled
                .set_lane("s", lane, &LogicVec::from_u64(sv, 1))
                .expect("set");
            compiled
                .set_lane("r", lane, &LogicVec::from_u64(rv, 1))
                .expect("set");
            let _ = compiled.peek_lane("q", lane).expect("settle");
        }
        assert_eq!(
            compiled.peek_lane("q", lane).expect("compiled q"),
            scalar.peek("q").expect("scalar q"),
            "latch lane {lane}"
        );
    }
}

/// A buffered inverter ring settles to X under pessimistic four-state
/// relaxation (the power-on X is a fixpoint), as in the interpreter.
#[test]
fn ring_settles_to_x() {
    let mut c = Circuit::new("osc");
    let mut ctx = c.root_ctx();
    let q = ctx.add_port(PortSpec::output("q", 1)).expect("q");
    let a = ctx.wire("a", 1);
    ctx.inv(a, q).expect("inv");
    ctx.buffer(q, a).expect("buf");
    let mut sim = CompiledSimulator::new(&c, 256).expect("compiled");
    assert!(!sim.is_levelized());
    for lane in [0, 63, 64, 255] {
        assert_eq!(sim.peek_lane("q", lane).expect("peek").bit(0), Logic::X);
    }
}

/// The sweep's compiled and interpreted engines agree vector-for-
/// vector on random four-state stimulus, and the compiled engine's
/// report covers every vector.
#[test]
fn sweep_engines_agree_on_random_stimulus() {
    let circuit = stateful_circuit();
    check_n("sweep_engines", 4, |rng| {
        let count = 1 + rng.index(300);
        let stimuli: Vec<Vec<(String, LogicVec)>> = (0..count)
            .map(|_| {
                [("ce", 1), ("clr", 1), ("we", 1), ("d", 4), ("a", 4)]
                    .into_iter()
                    .map(|(port, width)| (port.to_owned(), any_vec(rng, width)))
                    .collect()
            })
            .collect();
        let sweep = VectorSweep::new(&circuit).expect("sweep").cycles(2);
        let fast = sweep.run(&stimuli).expect("compiled run");
        let slow = sweep
            .clone()
            .engine(SweepEngine::Interpreted)
            .run(&stimuli)
            .expect("interpreted run");
        assert_eq!(fast.outputs, slow.outputs, "count {count}");
        assert_eq!(fast.total_vectors(), count);
    });
}

/// Out-of-range lanes and invalid lane counts are rejected, not
/// wrapped, with the same errors as the interpreted engine.
#[test]
fn lane_bounds_are_enforced() {
    let mut c = Circuit::new("buf");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).expect("a");
    let y = ctx.add_port(PortSpec::output("y", 1)).expect("y");
    ctx.buffer(a, y).expect("buf");
    let mut sim = CompiledSimulator::new(&c, 100).expect("compiled");
    assert!(matches!(
        sim.set_lane("a", 100, &LogicVec::from_u64(0, 1)),
        Err(SimError::LaneOutOfRange {
            lane: 100,
            lanes: 100
        })
    ));
    assert!(sim.peek_lane("y", 100).is_err());
    assert!(sim.set_lane("a", 99, &LogicVec::from_u64(1, 1)).is_ok());
    assert_eq!(sim.peek_lane("y", 99).expect("peek").to_u64(), Some(1));
    // Unset lanes read X through the buffer.
    assert_eq!(sim.peek_lane("y", 0).expect("peek").bit(0), Logic::X);
    assert!(matches!(
        CompiledSimulator::new(&c, 300),
        Err(SimError::InvalidLanes { lanes: 300 })
    ));
}
