//! Differential testing of the bit-parallel batch engine against the
//! scalar simulator: every lane of a `BatchSimulator` must be
//! bit-identical (including `X`/`Z` propagation) to a `Simulator` run
//! of the same stimulus, cycle for cycle and net for net.

use ipd_hdl::{Circuit, Logic, LogicVec, PortDir, PortSpec, Signal};
use ipd_sim::{BatchSimulator, Simulator, VectorSweep, MAX_LANES};
use ipd_techlib::LogicCtx;
use ipd_testutil::{check_n, XorShift64};

fn any_logic(rng: &mut XorShift64) -> Logic {
    match rng.below(8) {
        0..=2 => Logic::Zero,
        3..=5 => Logic::One,
        6 => Logic::X,
        _ => Logic::Z,
    }
}

fn any_vec(rng: &mut XorShift64, width: usize) -> LogicVec {
    (0..width).map(|_| any_logic(rng)).collect()
}

/// A random combinational DAG over `inputs` primary bits; the wire
/// names `g0..gN` are stable for net-level probing.
fn random_dag(rng: &mut XorShift64, inputs: usize, max_ops: usize) -> (Circuit, usize) {
    let ops = 1 + rng.index(max_ops - 1);
    let mut circuit = Circuit::new("dag");
    let mut ctx = circuit.root_ctx();
    let a = ctx
        .add_port(PortSpec::input("a", inputs as u32))
        .expect("port");
    let y = ctx.add_port(PortSpec::output("y", 1)).expect("port");
    let mut pool: Vec<Signal> = (0..inputs).map(|b| Signal::bit_of(a, b as u32)).collect();
    for k in 0..ops {
        let out = ctx.wire(&format!("g{k}"), 1);
        let pick = |rng: &mut XorShift64| pool[rng.index(pool.len())].clone();
        match rng.below(8) {
            0 => ctx.inv(pick(rng), out).expect("inv"),
            1 => ctx.and2(pick(rng), pick(rng), out).expect("and2"),
            2 => ctx.or2(pick(rng), pick(rng), out).expect("or2"),
            3 => ctx.xor2(pick(rng), pick(rng), out).expect("xor2"),
            4 => ctx
                .mux2(pick(rng), pick(rng), pick(rng), out)
                .expect("mux2"),
            5 => ctx
                .muxcy(pick(rng), pick(rng), pick(rng), out)
                .expect("muxcy"),
            6 => ctx.xorcy(pick(rng), pick(rng), out).expect("xorcy"),
            _ => {
                let init = (rng.next_u64() & 0xFFFF) as u16;
                let srcs = [pick(rng), pick(rng), pick(rng), pick(rng)];
                ctx.lut(init, &srcs, out).expect("lut4")
            }
        };
        pool.push(out.into());
    }
    let last = pool.last().expect("non-empty").clone();
    ctx.buffer(last, y).expect("buffer");
    (circuit, ops)
}

/// Random four-state stimulus on combinational DAGs: every lane of the
/// batch equals a scalar run, on the output and on every internal net.
#[test]
fn comb_dags_match_scalar_on_every_net() {
    check_n("comb_dags_batch", 24, |rng| {
        let inputs = 1 + rng.index(7);
        let (circuit, ops) = random_dag(rng, inputs, 24);
        let lanes = 1 + rng.index(MAX_LANES);
        let mut batch = BatchSimulator::new(&circuit, lanes).expect("batch compile");
        let mut scalars: Vec<Simulator> = Vec::new();
        for lane in 0..lanes {
            let stim = any_vec(rng, inputs);
            batch.set_lane("a", lane, &stim).expect("batch set");
            let mut s = Simulator::new(&circuit).expect("scalar compile");
            s.set("a", stim).expect("scalar set");
            scalars.push(s);
        }
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            assert_eq!(
                batch.peek_lane("y", lane).expect("batch y"),
                scalar.peek("y").expect("scalar y"),
                "output lane {lane}"
            );
            for k in 0..ops {
                let net = format!("dag/g{k}");
                assert_eq!(
                    batch.peek_net_lane(&net, lane).expect("batch net"),
                    scalar.peek_net(&net).expect("scalar net"),
                    "net {net} lane {lane}"
                );
            }
        }
    });
}

/// A circuit exercising every stateful primitive: FD, FDCE, FDRE,
/// SRL16 and RAM16X1, plus combinational mixing of their outputs.
fn stateful_circuit() -> Circuit {
    let mut c = Circuit::new("stateful");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).expect("clk");
    let ce = ctx.add_port(PortSpec::input("ce", 1)).expect("ce");
    let clr = ctx.add_port(PortSpec::input("clr", 1)).expect("clr");
    let we = ctx.add_port(PortSpec::input("we", 1)).expect("we");
    let d = ctx.add_port(PortSpec::input("d", 4)).expect("d");
    let a = ctx.add_port(PortSpec::input("a", 4)).expect("a");
    let q = ctx.add_port(PortSpec::output("q", 4)).expect("q");
    let tap = ctx.add_port(PortSpec::output("tap", 1)).expect("tap");
    let ram_o = ctx.add_port(PortSpec::output("ram_o", 1)).expect("ram_o");
    let mix = ctx.add_port(PortSpec::output("mix", 1)).expect("mix");
    ctx.fd(clk, Signal::bit_of(d, 0), Signal::bit_of(q, 0))
        .expect("fd");
    ctx.fdce(clk, ce, clr, Signal::bit_of(d, 1), Signal::bit_of(q, 1))
        .expect("fdce");
    ctx.fdre(clk, ce, clr, Signal::bit_of(d, 2), Signal::bit_of(q, 2))
        .expect("fdre");
    ctx.fd(clk, Signal::bit_of(d, 3), Signal::bit_of(q, 3))
        .expect("fd");
    ctx.srl16(0x0F0F, clk, ce, Signal::bit_of(d, 0), a, tap)
        .expect("srl16");
    ctx.ram16x1(0x1234, clk, we, Signal::bit_of(d, 1), a, ram_o)
        .expect("ram16x1");
    ctx.mux2(tap, ram_o, Signal::bit_of(q, 0), mix)
        .expect("mux2");
    c
}

/// Per-cycle, per-net equality on sequential circuits with
/// changing four-state inputs, including all state elements.
#[test]
fn stateful_circuits_match_scalar_per_cycle() {
    let circuit = stateful_circuit();
    check_n("stateful_batch", 12, |rng| {
        let lanes = 1 + rng.index(MAX_LANES);
        let cycles = 3 + rng.index(10);
        let mut batch = BatchSimulator::new(&circuit, lanes).expect("batch compile");
        let mut scalars: Vec<Simulator> = (0..lanes)
            .map(|_| Simulator::new(&circuit).expect("scalar compile"))
            .collect();
        let out_ports = ["q", "tap", "ram_o", "mix"];
        for _cycle in 0..cycles {
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                for (port, width) in [("ce", 1), ("clr", 1), ("we", 1), ("d", 4), ("a", 4)] {
                    let v = any_vec(rng, width);
                    batch.set_lane(port, lane, &v).expect("batch set");
                    scalar.set(port, v).expect("scalar set");
                }
            }
            batch.cycle(1).expect("batch cycle");
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                scalar.cycle(1).expect("scalar cycle");
                for port in out_ports {
                    assert_eq!(
                        batch.peek_lane(port, lane).expect("batch peek"),
                        scalar.peek(port).expect("scalar peek"),
                        "port {port} lane {lane} cycle {}",
                        scalar.cycle_count()
                    );
                }
                for path in scalar.state_elements().to_vec() {
                    match (batch.ff_state_lane(&path, lane), scalar.ff_state(&path)) {
                        (Some(b), Some(s)) => assert_eq!(b, s, "ff {path} lane {lane}"),
                        (None, None) => {
                            assert_eq!(
                                batch.memory_lane(&path, lane),
                                scalar.memory(&path),
                                "memory {path} lane {lane}"
                            );
                        }
                        (b, s) => panic!("state kind mismatch on {path}: {b:?} vs {s:?}"),
                    }
                }
            }
        }
    });
}

/// Reset restores power-on state in every lane and keeps inputs, like
/// the scalar simulator's reset.
#[test]
fn reset_matches_scalar() {
    let circuit = stateful_circuit();
    let mut batch = BatchSimulator::new(&circuit, 3).expect("batch");
    let mut scalar = Simulator::new(&circuit).expect("scalar");
    for sim in [0, 1, 2] {
        batch.set_u64_lane("d", sim, 5).expect("set");
        batch.set_u64_lane("ce", sim, 1).expect("set");
        batch.set_u64_lane("clr", sim, 0).expect("set");
        batch.set_u64_lane("we", sim, 0).expect("set");
        batch.set_u64_lane("a", sim, 2).expect("set");
    }
    scalar.set_u64("d", 5).expect("set");
    scalar.set_u64("ce", 1).expect("set");
    scalar.set_u64("clr", 0).expect("set");
    scalar.set_u64("we", 0).expect("set");
    scalar.set_u64("a", 2).expect("set");
    batch.cycle(4).expect("cycle");
    scalar.cycle(4).expect("cycle");
    batch.reset();
    scalar.reset();
    assert_eq!(batch.cycle_count(), 0);
    batch.cycle(1).expect("cycle");
    scalar.cycle(1).expect("cycle");
    for lane in 0..3 {
        for port in ["q", "tap", "ram_o", "mix"] {
            assert_eq!(
                batch.peek_lane(port, lane).expect("batch"),
                scalar.peek(port).expect("scalar"),
                "{port} after reset"
            );
        }
    }
}

/// Waveform extraction: a lane's extracted trace equals the scalar
/// simulator's recorded trace for the same stimulus.
#[test]
fn lane_traces_match_scalar_traces() {
    let circuit = stateful_circuit();
    let mut batch = BatchSimulator::new(&circuit, 2).expect("batch");
    let mut scalar = Simulator::new(&circuit).expect("scalar");
    batch.record("q").expect("record");
    batch.record("mix").expect("record");
    scalar.record("q").expect("record");
    scalar.record("mix").expect("record");
    let mut rng = XorShift64::new(7);
    for _ in 0..8 {
        for (port, width) in [("ce", 1), ("clr", 1), ("we", 1), ("d", 4), ("a", 4)] {
            let v = any_vec(&mut rng, width);
            batch.set_lane(port, 1, &v).expect("batch set");
            scalar.set(port, v).expect("scalar set");
        }
        batch.cycle(1).expect("batch cycle");
        scalar.cycle(1).expect("scalar cycle");
    }
    for (i, port) in ["q", "mix"].iter().enumerate() {
        let lane = batch.lane_trace(port, 1).expect("lane trace");
        assert_eq!(&lane, &scalar.traces()[i], "trace {port}");
    }
}

/// Relaxation-mode circuits (combinational cycles) also match: an SR
/// latch built from cross-coupled NORs.
#[test]
fn relaxation_mode_matches_scalar() {
    let mut c = Circuit::new("latch");
    let mut ctx = c.root_ctx();
    let s = ctx.add_port(PortSpec::input("s", 1)).expect("s");
    let r = ctx.add_port(PortSpec::input("r", 1)).expect("r");
    let q = ctx.add_port(PortSpec::output("q", 1)).expect("q");
    let nq = ctx.wire("nq", 1);
    let nor = |ctx: &mut ipd_hdl::CellCtx<'_>, name: &str, a: Signal, b: Signal, o: Signal| {
        ctx.leaf(
            ipd_hdl::Primitive::new("virtex", "nor2"),
            vec![
                PortSpec::input("i0", 1),
                PortSpec::input("i1", 1),
                PortSpec::output("o", 1),
            ],
            name,
            &[("i0", a), ("i1", b), ("o", o)],
        )
        .expect("nor2");
    };
    nor(&mut ctx, "n0", r.into(), nq.into(), q.into());
    nor(&mut ctx, "n1", s.into(), q.into(), nq.into());

    let seqs: [(u64, u64); 4] = [(1, 0), (0, 0), (0, 1), (0, 0)];
    let mut batch = BatchSimulator::new(&c, 4).expect("batch");
    assert!(!batch.is_levelized());
    // Lane k replays the first k+1 steps of the sequence; the final
    // state must match a scalar replay of the same prefix.
    for (lane, _) in seqs.iter().enumerate() {
        let mut scalar = Simulator::new(&c).expect("scalar");
        for &(sv, rv) in &seqs[..=lane] {
            scalar.set_u64("s", sv).expect("set");
            scalar.set_u64("r", rv).expect("set");
            let _ = scalar.peek("q").expect("settle");
        }
        // Batch replays only the final step per lane (combinational
        // latch state persists across set calls within a lane).
        for &(sv, rv) in &seqs[..=lane] {
            batch
                .set_lane("s", lane, &LogicVec::from_u64(sv, 1))
                .expect("set");
            batch
                .set_lane("r", lane, &LogicVec::from_u64(rv, 1))
                .expect("set");
            let _ = batch.peek_lane("q", lane).expect("settle");
        }
        assert_eq!(
            batch.peek_lane("q", lane).expect("batch q"),
            scalar.peek("q").expect("scalar q"),
            "latch lane {lane}"
        );
    }
}

/// Lane-edge sweep sizes: 1, 63, 64, 65 and 130 vectors all produce
/// scalar-identical outputs and the right shard structure.
#[test]
fn sweep_lane_edges_match_scalar() {
    let circuit = stateful_circuit();
    for count in [1usize, 63, 64, 65, 130] {
        let stimuli: Vec<Vec<(String, LogicVec)>> = (0..count)
            .map(|k| {
                vec![
                    ("ce".to_owned(), LogicVec::from_u64(1, 1)),
                    ("clr".to_owned(), LogicVec::from_u64(0, 1)),
                    (
                        "we".to_owned(),
                        LogicVec::from_u64(u64::from(k % 2 == 0), 1),
                    ),
                    ("d".to_owned(), LogicVec::from_u64(k as u64 & 0xF, 4)),
                    ("a".to_owned(), LogicVec::from_u64((k as u64 >> 1) & 0xF, 4)),
                ]
            })
            .collect();
        let report = VectorSweep::new(&circuit)
            .expect("sweep compile")
            .cycles(2)
            .run(&stimuli)
            .expect("sweep run");
        assert_eq!(report.total_vectors(), count, "count {count}");
        assert_eq!(report.shards.len(), count.div_ceil(64), "shards {count}");
        assert_eq!(
            report.shards.iter().map(|s| s.vectors).sum::<usize>(),
            count
        );
        assert!(report.vectors_per_sec() > 0.0);
        // Scalar cross-check on a sample of vectors (all of them for
        // small counts).
        let stride = if count > 8 { 13 } else { 1 };
        for (k, stim) in stimuli.iter().enumerate().step_by(stride) {
            let mut scalar = Simulator::new(&circuit).expect("scalar");
            for (port, value) in stim {
                scalar.set(port, value.clone()).expect("set");
            }
            scalar.cycle(2).expect("cycle");
            for (port, value) in &report.outputs[k] {
                assert_eq!(
                    value,
                    &scalar.peek(port).expect("peek"),
                    "vector {k} port {port} (count {count})"
                );
            }
        }
    }
}

/// Out-of-range lanes are rejected, not wrapped.
#[test]
fn lane_bounds_are_enforced() {
    let mut c = Circuit::new("buf");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).expect("a");
    let y = ctx.add_port(PortSpec::output("y", 1)).expect("y");
    ctx.buffer(a, y).expect("buf");
    let mut sim = BatchSimulator::new(&c, 8).expect("batch");
    assert!(sim.set_lane("a", 8, &LogicVec::from_u64(0, 1)).is_err());
    assert!(sim.peek_lane("y", 8).is_err());
    assert!(sim.set_lane("a", 7, &LogicVec::from_u64(1, 1)).is_ok());
    assert_eq!(sim.peek_lane("y", 7).expect("peek").to_u64(), Some(1));
    // Unset lanes read X through the buffer.
    assert_eq!(sim.peek_lane("y", 0).expect("peek").bit(0), Logic::X);
    assert_eq!(sim.ports().len(), 2);
    assert_eq!(
        sim.ports()
            .iter()
            .filter(|(_, d, _)| *d == PortDir::Input)
            .count(),
        1
    );
}
