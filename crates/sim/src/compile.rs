//! Compilation of a flattened design into an executable simulation model.

use std::collections::HashMap;

use ipd_hdl::{FlatKind, FlatNetlist, Logic, NetId, PortDir};
use ipd_techlib::{FfControl, PrimClass, PrimKind};

use crate::error::SimError;

/// How the value of one driven net is computed during combinational
/// settling.
#[derive(Debug, Clone)]
pub(crate) enum EvalFunc {
    /// A combinational primitive.
    Prim(PrimKind),
    /// Asynchronous read of a shift register's tap (`state[addr]`).
    SrlRead {
        /// Index into the state array.
        state: usize,
    },
    /// Asynchronous read of a RAM word (`state[addr]`).
    RamRead {
        /// Index into the state array.
        state: usize,
    },
}

/// A node in the combinational evaluation network.
#[derive(Debug, Clone)]
pub(crate) struct EvalNode {
    pub func: EvalFunc,
    /// Input nets in the order `eval_comb` expects (address LSB-first
    /// for memory reads).
    pub inputs: Vec<NetId>,
    pub output: NetId,
}

/// A state element updated on the clock edge.
#[derive(Debug, Clone)]
pub(crate) enum SeqUpdate {
    Ff {
        state: usize,
        d: NetId,
        ce: Option<NetId>,
        control: Option<(FfControl, NetId)>,
        init: Logic,
        q: NetId,
    },
    Srl16 {
        state: usize,
        d: NetId,
        ce: NetId,
        init: u16,
    },
    Ram16 {
        state: usize,
        d: NetId,
        we: NetId,
        addr: [NetId; 4],
        init: u16,
    },
}

/// The compiled simulation model shared by the simulator.
#[derive(Debug, Clone)]
pub(crate) struct Compiled {
    pub net_count: usize,
    pub net_names: Vec<String>,
    pub name_to_net: HashMap<String, NetId>,
    /// Combinational nodes in topological order (levelized mode) or
    /// arbitrary order (relaxation mode).
    pub eval_order: Vec<EvalNode>,
    pub levelized: bool,
    /// Number of leading `eval_order` nodes that form a topologically
    /// sorted acyclic prefix depending only on earlier prefix nodes,
    /// primary inputs, constants and state outputs. Equal to
    /// `eval_order.len()` when `levelized`; in relaxation mode only
    /// the remainder needs fixpoint iteration.
    pub acyclic_prefix: usize,
    pub seq: Vec<SeqUpdate>,
    /// Paths of sequential/memory leaves, parallel to state indices.
    pub state_paths: Vec<String>,
    /// FF q nets for driving after commit, parallel to `seq`.
    pub const_drives: Vec<(NetId, Logic)>,
    /// Black-box output nets, driven to X.
    pub black_box_outputs: Vec<NetId>,
    pub ports: Vec<PortInfo>,
    pub clock_nets: Vec<NetId>,
}

/// Primary-port metadata retained for the simulator API.
#[derive(Debug, Clone)]
pub(crate) struct PortInfo {
    pub name: String,
    pub dir: PortDir,
    pub nets: Vec<NetId>,
}

/// Compiles a flattened design.
///
/// `clock_port` names the primary input treated as the global cycle
/// clock; every sequential primitive must be clocked from it (directly
/// via net connectivity — clock buffers forward the clock net).
pub(crate) fn compile(flat: &FlatNetlist, clock_port: Option<&str>) -> Result<Compiled, SimError> {
    let net_count = flat.net_count();
    let net_names: Vec<String> = flat.nets().iter().map(|n| n.name.clone()).collect();
    let mut name_to_net = HashMap::with_capacity(net_count);
    for (i, name) in net_names.iter().enumerate() {
        name_to_net.insert(name.clone(), NetId::from_index(i));
    }

    // Ports.
    let mut ports = Vec::new();
    for p in flat.ports() {
        if p.dir == PortDir::Inout {
            return Err(SimError::InoutUnsupported {
                port: p.name.clone(),
            });
        }
        ports.push(PortInfo {
            name: p.name.clone(),
            dir: p.dir,
            nets: p.nets.clone(),
        });
    }

    // Determine clock nets: the nets of the designated clock port plus
    // anything reached through clock buffers (bufg/buf driven directly
    // by a clock net).
    let clock_name = clock_port.map(str::to_owned).or_else(|| {
        ports
            .iter()
            .find(|p| {
                p.dir == PortDir::Input && (p.name == "clk" || p.name == "c" || p.name == "clock")
            })
            .map(|p| p.name.clone())
    });
    let mut clock_net_set: Vec<bool> = vec![false; net_count];
    let mut clock_nets = Vec::new();
    if let Some(name) = &clock_name {
        if let Some(p) = ports.iter().find(|p| &p.name == name) {
            for &n in &p.nets {
                if !clock_net_set[n.index()] {
                    clock_net_set[n.index()] = true;
                    clock_nets.push(n);
                }
            }
        }
    }

    // Propagate clock through buffers until fixpoint.
    loop {
        let mut changed = false;
        for leaf in flat.leaves() {
            let FlatKind::Primitive(prim) = &leaf.kind else {
                continue;
            };
            if prim.name == "buf" || prim.name == "bufg" {
                let (Some(i), Some(o)) = (leaf.conn("i"), leaf.conn("o")) else {
                    continue;
                };
                let (i, o) = (i.nets[0], o.nets[0]);
                if clock_net_set[i.index()] && !clock_net_set[o.index()] {
                    clock_net_set[o.index()] = true;
                    clock_nets.push(o);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build evaluation nodes and sequential updates.
    let mut eval_nodes = Vec::new();
    let mut seq = Vec::new();
    let mut state_paths = Vec::new();
    let mut const_drives = Vec::new();
    let mut black_box_outputs = Vec::new();
    let mut driver_count = vec![0u8; net_count];
    for p in &ports {
        if p.dir == PortDir::Input {
            for &n in &p.nets {
                driver_count[n.index()] = driver_count[n.index()].saturating_add(1);
            }
        }
    }

    let note_driver = |net: NetId, counts: &mut Vec<u8>| {
        counts[net.index()] = counts[net.index()].saturating_add(1);
    };

    for leaf in flat.leaves() {
        match &leaf.kind {
            FlatKind::BlackBox(_) => {
                for conn in &leaf.conns {
                    if conn.dir != PortDir::Input {
                        for &n in &conn.nets {
                            black_box_outputs.push(n);
                            note_driver(n, &mut driver_count);
                        }
                    }
                }
            }
            FlatKind::Primitive(prim) => {
                let kind = PrimKind::from_primitive(prim)?;
                let conn1 = |name: &str| -> NetId { leaf.conn(name).expect("port exists").nets[0] };
                match kind.class() {
                    PrimClass::Const(v) => {
                        let o = conn1("o");
                        const_drives.push((o, v));
                        note_driver(o, &mut driver_count);
                    }
                    PrimClass::Comb | PrimClass::Rom16 => {
                        // Gather inputs in port-declaration order.
                        let mut inputs = Vec::new();
                        let mut output = None;
                        for spec in kind.ports() {
                            let conn = leaf.conn(&spec.name).expect("port exists");
                            match spec.dir {
                                PortDir::Input => inputs.extend(conn.nets.iter().copied()),
                                _ => output = Some(conn.nets[0]),
                            }
                        }
                        let output = output.expect("comb prim has output");
                        note_driver(output, &mut driver_count);
                        eval_nodes.push(EvalNode {
                            func: EvalFunc::Prim(kind),
                            inputs,
                            output,
                        });
                    }
                    PrimClass::Ff { has_ce, control } => {
                        let c = conn1("c");
                        if !clock_net_set[c.index()] {
                            return Err(SimError::UnsupportedClock {
                                instance: leaf.path.clone(),
                            });
                        }
                        let init = match kind {
                            PrimKind::Ff { init, .. } => init,
                            _ => Logic::Zero,
                        };
                        let q = conn1("q");
                        note_driver(q, &mut driver_count);
                        let state = state_paths.len();
                        state_paths.push(leaf.path.clone());
                        seq.push(SeqUpdate::Ff {
                            state,
                            d: conn1("d"),
                            ce: has_ce.then(|| conn1("ce")),
                            control: match control {
                                FfControl::None => None,
                                FfControl::AsyncClear => {
                                    Some((FfControl::AsyncClear, conn1("clr")))
                                }
                                FfControl::SyncReset => Some((FfControl::SyncReset, conn1("r"))),
                            },
                            init,
                            q,
                        });
                    }
                    PrimClass::Srl16 => {
                        let c = conn1("c");
                        if !clock_net_set[c.index()] {
                            return Err(SimError::UnsupportedClock {
                                instance: leaf.path.clone(),
                            });
                        }
                        let init = match kind {
                            PrimKind::Srl16 { init } => init,
                            _ => 0,
                        };
                        let addr = leaf.conn("a").expect("srl addr").nets.clone();
                        let q = conn1("q");
                        note_driver(q, &mut driver_count);
                        let state = state_paths.len();
                        state_paths.push(leaf.path.clone());
                        seq.push(SeqUpdate::Srl16 {
                            state,
                            d: conn1("d"),
                            ce: conn1("ce"),
                            init,
                        });
                        eval_nodes.push(EvalNode {
                            func: EvalFunc::SrlRead { state },
                            inputs: addr,
                            output: q,
                        });
                    }
                    PrimClass::Ram16 => {
                        let c = conn1("c");
                        if !clock_net_set[c.index()] {
                            return Err(SimError::UnsupportedClock {
                                instance: leaf.path.clone(),
                            });
                        }
                        let init = match kind {
                            PrimKind::Ram16x1 { init } => init,
                            _ => 0,
                        };
                        let addr_nets = leaf.conn("a").expect("ram addr").nets.clone();
                        let addr = [addr_nets[0], addr_nets[1], addr_nets[2], addr_nets[3]];
                        let o = conn1("o");
                        note_driver(o, &mut driver_count);
                        let state = state_paths.len();
                        state_paths.push(leaf.path.clone());
                        seq.push(SeqUpdate::Ram16 {
                            state,
                            d: conn1("d"),
                            we: conn1("we"),
                            addr,
                            init,
                        });
                        eval_nodes.push(EvalNode {
                            func: EvalFunc::RamRead { state },
                            inputs: addr_nets,
                            output: o,
                        });
                    }
                }
            }
        }
    }

    // Single-driver check.
    for (i, &count) in driver_count.iter().enumerate() {
        if count > 1 {
            return Err(SimError::MultipleDrivers {
                net: net_names[i].clone(),
            });
        }
    }

    // Levelize the evaluation network (Kahn's algorithm). Nodes whose
    // inputs are only primary inputs, constants or state outputs are
    // sources.
    let (eval_order, acyclic_prefix) = levelize(eval_nodes, net_count);
    let levelized = acyclic_prefix == eval_order.len();

    Ok(Compiled {
        net_count,
        net_names,
        name_to_net,
        eval_order,
        levelized,
        acyclic_prefix,
        seq,
        state_paths,
        const_drives,
        black_box_outputs,
        ports,
        clock_nets,
    })
}

/// Topologically sorts evaluation nodes. Returns the reordered nodes
/// plus the length of the sorted acyclic prefix; when the prefix
/// covers every node the network is fully levelized, otherwise the
/// cyclic remainder is appended in original order (relaxation
/// required for those nodes only).
fn levelize(nodes: Vec<EvalNode>, net_count: usize) -> (Vec<EvalNode>, usize) {
    // Map: net -> producing node index.
    let mut producer: Vec<Option<usize>> = vec![None; net_count];
    for (i, n) in nodes.iter().enumerate() {
        producer[n.output.index()] = Some(i);
    }
    // In-degree per node = number of inputs produced by other nodes.
    let mut indeg = vec![0usize; nodes.len()];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        for input in &n.inputs {
            if let Some(p) = producer[input.index()] {
                if p != i {
                    indeg[i] += 1;
                    consumers[p].push(i);
                }
            }
        }
    }
    let mut queue: Vec<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(nodes.len());
    let mut emitted = vec![false; nodes.len()];
    while let Some(i) = queue.pop() {
        order.push(i);
        emitted[i] = true;
        for &c in &consumers[i] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
            }
        }
    }
    let acyclic_prefix = order.len();
    if acyclic_prefix != nodes.len() {
        // Append the cyclic remainder in original order; the simulator
        // will iterate those nodes to a fixpoint.
        for (i, seen) in emitted.iter().enumerate() {
            if !seen {
                order.push(i);
            }
        }
    }
    let mut by_index: Vec<Option<EvalNode>> = nodes.into_iter().map(Some).collect();
    let ordered = order
        .into_iter()
        .map(|i| by_index[i].take().expect("each node emitted once"))
        .collect();
    (ordered, acyclic_prefix)
}
