//! # ipd-sim — the built-in circuit simulator
//!
//! A cycle-based, four-state simulator over flattened
//! [`ipd-hdl`](ipd_hdl) circuits, reproducing the JHDL design suite's
//! built-in simulator that the paper embeds in IP evaluation applets:
//!
//! - [`Simulator`] — drive inputs, advance the clock, peek ports and
//!   internal nets, inspect memory contents, reset.
//! - [`BatchSimulator`] — bit-parallel batch simulation: up to 64
//!   stimulus vectors per pass, bit-identical to the scalar simulator
//!   lane for lane.
//! - [`CompiledSimulator`] — the compiled backend: the levelized
//!   netlist lowered to flat bytecode and executed over 256-lane
//!   planes, bit-exact with the interpreted engines.
//! - [`VectorSweep`] — shard arbitrary stimulus sets into
//!   lane-parallel batches across a work-stealing thread pool, with
//!   throughput counters (compiled engine by default, interpreted via
//!   [`SweepEngine`]).
//! - [`Trace`] / [`write_vcd`] — waveform recording and Value Change
//!   Dump export for conventional viewers.
//!
//! Combinational logic is levelized at compile time for single-pass
//! settling; designs with combinational cycles automatically fall back
//! to fixpoint relaxation with oscillation detection.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, PortSpec};
//! use ipd_sim::Simulator;
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Combinational: y = a & b.
//! let mut circuit = Circuit::new("and_gate");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let b = ctx.add_port(PortSpec::input("b", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.and2(a, b, y)?;
//!
//! let mut sim = Simulator::new(&circuit)?;
//! sim.set_u64("a", 1)?;
//! sim.set_u64("b", 1)?;
//! assert_eq!(sim.peek("y")?.to_u64(), Some(1));
//! sim.set_u64("b", 0)?;
//! assert_eq!(sim.peek("y")?.to_u64(), Some(0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod compile;
mod error;
mod exec;
pub mod graph;
mod program;
mod simulator;
#[cfg(feature = "threads")]
mod steal;
mod sweep;
mod waveform;

pub use batch::{BatchSimulator, MAX_LANES};
pub use error::SimError;
pub use exec::{CompiledSimulator, COMPILED_MAX_LANES};
pub use graph::NetlistGraph;
pub use simulator::Simulator;
pub use sweep::{ShardStats, Stimulus, SweepEngine, SweepReport, VectorSweep};
pub use waveform::{write_vcd, Trace};

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::{Circuit, Logic, LogicVec, PortSpec, Signal};
    use ipd_techlib::LogicCtx;

    /// clk, d[4] -> q[4] register with clock-enable tied high.
    fn register4() -> Circuit {
        let mut c = Circuit::new("reg4");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 4)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 4)).unwrap();
        for b in 0..4 {
            ctx.fd(clk, Signal::bit_of(d, b), Signal::bit_of(q, b))
                .unwrap();
        }
        c
    }

    #[test]
    fn register_captures_on_cycle() {
        let mut sim = Simulator::new(&register4()).expect("compile");
        assert!(sim.is_levelized());
        sim.set_u64("d", 9).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "before edge");
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(9));
        sim.set_u64("d", 5).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(5));
        assert_eq!(sim.cycle_count(), 2);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut sim = Simulator::new(&register4()).expect("compile");
        sim.set_u64("d", 15).unwrap();
        sim.cycle(3).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(15));
        sim.reset();
        assert_eq!(sim.cycle_count(), 0);
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0));
        // Inputs survive reset.
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(15));
    }

    #[test]
    fn fdce_clear_and_enable() {
        let mut c = Circuit::new("ce_reg");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let ce = ctx.add_port(PortSpec::input("ce", 1)).unwrap();
        let clr = ctx.add_port(PortSpec::input("clr", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        ctx.fdce(clk, ce, clr, d, q).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        sim.set_u64("d", 1).unwrap();
        sim.set_u64("ce", 0).unwrap();
        sim.set_u64("clr", 0).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "ce=0 holds");
        sim.set_u64("ce", 1).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(1), "ce=1 loads");
        sim.set_u64("clr", 1).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "clr wins");
    }

    #[test]
    fn srl16_shifts_and_taps() {
        let mut c = Circuit::new("srl");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let ce = ctx.add_port(PortSpec::input("ce", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        ctx.srl16(0, clk, ce, d, a, q).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("a", 3).unwrap(); // tap after 4 stages
        sim.set_u64("d", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("d", 0).unwrap();
        sim.cycle(2).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "not arrived yet");
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(1), "pulse at tap 3");
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn ram16_write_and_read() {
        let mut c = Circuit::new("ram");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let we = ctx.add_port(PortSpec::input("we", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let o = ctx.add_port(PortSpec::output("o", 1)).unwrap();
        ctx.ram16x1(0, clk, we, d, a, o).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        sim.set_u64("we", 1).unwrap();
        sim.set_u64("a", 7).unwrap();
        sim.set_u64("d", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("we", 0).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(1), "async read");
        sim.set_u64("a", 6).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(0));
        // Memory viewer: contents readable by path.
        let paths = sim.state_elements().to_vec();
        let mem = sim.memory(&paths[0]).expect("ram word");
        assert_eq!(mem.to_u64(), Some(1 << 7));
    }

    #[test]
    fn uninitialized_inputs_read_x() {
        let mut c = Circuit::new("and");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.and2(a, b, y).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        assert_eq!(sim.peek("y").unwrap().bit(0), Logic::X);
        sim.set_u64("a", 0).unwrap();
        assert_eq!(sim.peek("y").unwrap().bit(0), Logic::Zero, "0 dominates");
    }

    #[test]
    fn black_box_outputs_are_x() {
        let mut c = Circuit::new("bb");
        let mut ctx = c.root_ctx();
        let i = ctx.add_port(PortSpec::input("i", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.black_box(
            "secret",
            vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
            "u0",
            &[("i", i.into()), ("o", y.into())],
        )
        .unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        sim.set_u64("i", 1).unwrap();
        assert_eq!(sim.peek("y").unwrap().bit(0), Logic::X);
    }

    #[test]
    fn combinational_loop_falls_back_to_relaxation() {
        // An SR latch from cross-coupled NORs: classic comb cycle.
        let mut c = Circuit::new("latch");
        let mut ctx = c.root_ctx();
        let s = ctx.add_port(PortSpec::input("s", 1)).unwrap();
        let r = ctx.add_port(PortSpec::input("r", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let nq = ctx.wire("nq", 1);
        // q = nor(r, nq); nq = nor(s, q)
        ctx.leaf(
            ipd_hdl::Primitive::new("virtex", "nor2"),
            vec![
                PortSpec::input("i0", 1),
                PortSpec::input("i1", 1),
                PortSpec::output("o", 1),
            ],
            "n0",
            &[("i0", r.into()), ("i1", nq.into()), ("o", q.into())],
        )
        .unwrap();
        ctx.leaf(
            ipd_hdl::Primitive::new("virtex", "nor2"),
            vec![
                PortSpec::input("i0", 1),
                PortSpec::input("i1", 1),
                PortSpec::output("o", 1),
            ],
            "n1",
            &[("i0", s.into()), ("i1", q.into()), ("o", nq.into())],
        )
        .unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        assert!(!sim.is_levelized());
        sim.set_u64("s", 1).unwrap();
        sim.set_u64("r", 0).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(1), "set");
        sim.set_u64("s", 0).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(1), "hold");
        sim.set_u64("r", 1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "reset");
    }

    #[test]
    fn ring_settles_to_x() {
        // A 1-inverter ring through a buffer: with pessimistic
        // four-state evaluation the X power-on value is a fixpoint, so
        // relaxation terminates and reports the unknown.
        let mut c = Circuit::new("osc");
        let mut ctx = c.root_ctx();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let a = ctx.wire("a", 1);
        ctx.inv(a, q).unwrap();
        ctx.buffer(q, a).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        assert!(!sim.is_levelized());
        assert_eq!(sim.peek("q").unwrap().bit(0), Logic::X);
    }

    #[test]
    fn traces_record_each_cycle() {
        let mut sim = Simulator::new(&register4()).expect("compile");
        sim.record("q").unwrap();
        sim.set_u64("d", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("d", 2).unwrap();
        sim.cycle(1).unwrap();
        let traces = sim.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].len(), 2);
        assert_eq!(traces[0].sample(0).unwrap().to_u64(), Some(1));
        assert_eq!(traces[0].sample(1).unwrap().to_u64(), Some(2));
    }

    #[test]
    fn port_api_errors() {
        let mut sim = Simulator::new(&register4()).expect("compile");
        assert!(matches!(
            sim.set("nope", LogicVec::zeros(1)),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(matches!(
            sim.set("q", LogicVec::zeros(4)),
            Err(SimError::NotAnInput { .. })
        ));
        assert!(matches!(
            sim.set("d", LogicVec::zeros(3)),
            Err(SimError::WidthMismatch { .. })
        ));
        assert!(matches!(
            sim.peek("nothing"),
            Err(SimError::UnknownPort { .. })
        ));
        assert!(matches!(
            sim.peek_net("no/such/net"),
            Err(SimError::UnknownNet { .. })
        ));
    }

    #[test]
    fn peek_internal_net() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let t = ctx.wire("t", 1);
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, t).unwrap();
        ctx.inv(t, y).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        sim.set_u64("a", 1).unwrap();
        assert_eq!(sim.peek_net("top/t").unwrap(), Logic::Zero);
        assert_eq!(sim.peek("y").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn multiple_drivers_rejected_at_compile() {
        let mut c = Circuit::new("bad");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        ctx.buffer(a, y).unwrap();
        assert!(matches!(
            Simulator::new(&c),
            Err(SimError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn gated_clock_rejected() {
        let mut c = Circuit::new("gated");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let en = ctx.add_port(PortSpec::input("en", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let gclk = ctx.wire("gclk", 1);
        ctx.and2(clk, en, gclk).unwrap();
        ctx.fd(gclk, d, q).unwrap();
        assert!(matches!(
            Simulator::new(&c),
            Err(SimError::UnsupportedClock { .. })
        ));
    }

    #[test]
    fn clock_through_bufg_accepted() {
        let mut c = Circuit::new("buffered");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 1)).unwrap();
        let gclk = ctx.wire("gclk", 1);
        ctx.leaf(
            ipd_hdl::Primitive::new("virtex", "bufg"),
            vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
            "bufg",
            &[("i", clk.into()), ("o", gclk.into())],
        )
        .unwrap();
        ctx.fd(gclk, d, q).unwrap();
        let mut sim = Simulator::new(&c).expect("bufg clock accepted");
        sim.set_u64("d", 1).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(1));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use ipd_hdl::{Circuit, Logic, LogicVec, PortSpec, Signal};
    use ipd_techlib::LogicCtx;

    fn counter2() -> Circuit {
        // A 2-bit ripple-ish counter from toggles.
        let mut c = Circuit::new("cnt");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 2)).unwrap();
        let n0 = ctx.wire("n0", 1);
        ctx.inv(Signal::bit_of(q, 0), n0).unwrap();
        ctx.fd(clk, n0, Signal::bit_of(q, 0)).unwrap();
        // q1 toggles when q0 is 1: d = q1 ^ q0.
        let n1 = ctx.wire("n1", 1);
        ctx.xor2(Signal::bit_of(q, 1), Signal::bit_of(q, 0), n1)
            .unwrap();
        ctx.fd(clk, n1, Signal::bit_of(q, 1)).unwrap();
        c
    }

    #[test]
    fn run_until_counts_cycles() {
        let mut sim = Simulator::new(&counter2()).expect("compile");
        let target = LogicVec::from_u64(3, 2);
        let took = sim.run_until("q", &target, 10).expect("reached");
        assert_eq!(took, 3);
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(3));
        // Already there: zero cycles.
        assert_eq!(sim.run_until("q", &target, 10).unwrap(), 0);
    }

    #[test]
    fn run_until_times_out() {
        let mut sim = Simulator::new(&counter2()).expect("compile");
        // A 2-bit counter never reads an X vector.
        let err = sim.run_until("q", &LogicVec::unknown(2), 8).unwrap_err();
        assert!(matches!(err, SimError::Timeout { cycles: 8, .. }));
        assert_eq!(sim.cycle_count(), 8, "budget was consumed");
    }

    #[test]
    fn ff_state_by_path() {
        let mut sim = Simulator::new(&counter2()).expect("compile");
        sim.cycle(1).unwrap();
        let paths: Vec<String> = sim.state_elements().to_vec();
        assert_eq!(paths.len(), 2);
        assert_eq!(sim.ff_state(&paths[0]), Some(Logic::One));
        assert_eq!(sim.ff_state("cnt/nope"), None);
    }

    #[test]
    fn set_memory_back_door() {
        let mut c = Circuit::new("rom_ram");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let we = ctx.add_port(PortSpec::input("we", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let o = ctx.add_port(PortSpec::output("o", 1)).unwrap();
        ctx.ram16x1(0, clk, we, d, a, o).unwrap();
        let mut sim = Simulator::new(&c).expect("compile");
        let path = sim.state_elements()[0].clone();
        assert!(sim.set_memory(&path, &LogicVec::from_u64(0x8001, 16)));
        sim.set_u64("we", 0).unwrap();
        sim.set_u64("a", 0).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(1));
        sim.set_u64("a", 15).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(1));
        sim.set_u64("a", 7).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(0));
        assert!(!sim.set_memory("rom_ram/none", &LogicVec::zeros(16)));
    }
}
