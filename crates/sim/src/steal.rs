//! A small work-stealing job runtime, hand-rolled on std.
//!
//! [`run_steal`] executes `jobs` independent, statically known jobs
//! (indices `0..jobs`) across `workers` OS threads and returns the
//! outputs in job order. The structure:
//!
//! - **Injector.** An atomic cursor over the job range. An idle worker
//!   grabs a contiguous chunk (grain-sized) in one compare-exchange,
//!   so the common case touches one shared cache line per *chunk*
//!   instead of per job.
//! - **Per-worker deques.** Each worker's chunk lives in a single
//!   packed `AtomicU64` — `(start << 32) | end`. The owner pops from
//!   the front with a compare-exchange; a thief splits off the back
//!   half (`(len + 1) / 2`, so a single remaining job is fully taken)
//!   with a competing compare-exchange on the same word. Because both
//!   transitions go through one atomic, a pop and a steal can never
//!   both claim the same index.
//! - **No ABA.** The only plain store is the owner refilling its own
//!   deque after observing it empty. Thieves never compare-exchange an
//!   empty range, and for any fixed `end` the `start` of every range
//!   ever stored is strictly increasing (the injector cursor only
//!   moves forward and splits only shrink ranges), so a stale snapshot
//!   can never match a refilled value.
//! - **Termination.** Jobs cannot spawn jobs, so a completion counter
//!   reaching the job count means the sweep is done; a worker that
//!   finds the injector dry and nothing to steal yields until then.
//!
//! Errors abort the run: the first error is kept, a flag stops the
//! other workers at their next dispatch point, and [`run_steal`]
//! returns it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker's job range, packed as `(start << 32) | end`.
struct Deque {
    range: AtomicU64,
}

fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

impl Deque {
    fn new() -> Self {
        Deque {
            range: AtomicU64::new(pack(0, 0)),
        }
    }

    /// Owner: takes the front job, or `None` when empty.
    fn pop_front(&self) -> Option<u32> {
        loop {
            let cur = self.range.load(Ordering::Acquire);
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            if self
                .range
                .compare_exchange_weak(
                    cur,
                    pack(start + 1, end),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return Some(start);
            }
        }
    }

    /// Thief: splits off the back half, or `None` when empty.
    fn steal(&self) -> Option<(u32, u32)> {
        loop {
            let cur = self.range.load(Ordering::Acquire);
            let (start, end) = unpack(cur);
            let len = end - start;
            if len == 0 {
                return None;
            }
            let mid = end - len.div_ceil(2);
            if self
                .range
                .compare_exchange_weak(cur, pack(start, mid), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((mid, end));
            }
        }
    }

    /// Owner only, and only after observing its own deque empty:
    /// installs a freshly acquired range.
    fn refill(&self, start: u32, end: u32) {
        self.range.store(pack(start, end), Ordering::Release);
    }
}

/// Counters describing one [`run_steal`] execution.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StealStats {
    /// Successful steal operations across all workers.
    pub steals: u64,
}

/// Runs `f(job)` for every job index in `0..jobs` across `workers`
/// threads with work stealing, returning outputs in job order plus
/// runtime counters. The first error aborts the run.
pub(crate) fn run_steal<T, E, F>(
    jobs: usize,
    workers: usize,
    grain: usize,
    f: F,
) -> Result<(Vec<T>, StealStats), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut results: Vec<Option<T>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    if jobs == 0 {
        return Ok((Vec::new(), StealStats::default()));
    }
    let workers = workers.min(jobs).max(1);
    if workers == 1 {
        // No concurrency: run inline without any atomics.
        let mut out = Vec::with_capacity(jobs);
        for job in 0..jobs {
            out.push(f(job)?);
        }
        return Ok((out, StealStats::default()));
    }

    let grain = grain.max(1);
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let steals = AtomicU64::new(0);
    let error: Mutex<Option<E>> = Mutex::new(None);
    let deques: Vec<Deque> = (0..workers).map(|_| Deque::new()).collect();
    let collected: Mutex<&mut Vec<Option<T>>> = Mutex::new(&mut results);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let cursor = &cursor;
            let done = &done;
            let abort = &abort;
            let steals = &steals;
            let error = &error;
            let collected = &collected;
            let f = &f;
            scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                'work: while !abort.load(Ordering::Relaxed) {
                    if let Some(job) = deques[me].pop_front() {
                        match f(job as usize) {
                            Ok(value) => {
                                local.push((job as usize, value));
                                done.fetch_add(1, Ordering::AcqRel);
                            }
                            Err(e) => {
                                error.lock().expect("error lock").get_or_insert(e);
                                abort.store(true, Ordering::Release);
                                break 'work;
                            }
                        }
                        continue;
                    }
                    // Refill from the injector.
                    let mut refilled = false;
                    loop {
                        let at = cursor.load(Ordering::Acquire);
                        if at >= jobs {
                            break;
                        }
                        let to = (at + grain).min(jobs);
                        if cursor
                            .compare_exchange_weak(at, to, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            deques[me].refill(at as u32, to as u32);
                            refilled = true;
                            break;
                        }
                    }
                    if refilled {
                        continue;
                    }
                    // Injector dry: steal from a sibling.
                    for offset in 1..workers {
                        let victim = (me + offset) % workers;
                        if let Some((start, end)) = deques[victim].steal() {
                            deques[me].refill(start, end);
                            steals.fetch_add(1, Ordering::Relaxed);
                            continue 'work;
                        }
                    }
                    if done.load(Ordering::Acquire) >= jobs {
                        break;
                    }
                    std::thread::yield_now();
                }
                let mut slots = collected.lock().expect("results lock");
                for (job, value) in local {
                    slots[job] = Some(value);
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("error lock") {
        return Err(e);
    }
    let out = results
        .into_iter()
        .map(|slot| slot.expect("every job completed"))
        .collect();
    Ok((
        out,
        StealStats {
            steals: steals.into_inner(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_jobs_run_exactly_once_in_order() {
        for jobs in [0usize, 1, 2, 7, 64, 257, 1000] {
            let hits: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
            let (out, _stats) = run_steal::<usize, (), _>(jobs, 8, 4, |job| {
                hits[job].fetch_add(1, Ordering::Relaxed);
                Ok(job * 3)
            })
            .expect("no errors");
            assert_eq!(out.len(), jobs);
            for (job, value) in out.iter().enumerate() {
                assert_eq!(*value, job * 3);
            }
            for (job, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "job {job} ran once");
            }
        }
    }

    #[test]
    fn uneven_jobs_rebalance() {
        // One pathological chunk of slow jobs: the run must still
        // finish with every output intact (steals may or may not occur
        // depending on scheduling, so only correctness is asserted).
        let (out, _stats) = run_steal::<usize, (), _>(64, 4, 16, |job| {
            if job < 16 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            Ok(job)
        })
        .expect("no errors");
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_aborts() {
        let err = run_steal::<usize, String, _>(100, 4, 2, |job| {
            if job == 37 {
                Err("boom".to_owned())
            } else {
                Ok(job)
            }
        })
        .expect_err("error propagates");
        assert_eq!(err, "boom");
    }

    #[test]
    fn deque_split_takes_back_half() {
        let d = Deque::new();
        d.refill(10, 20);
        assert_eq!(d.steal(), Some((15, 20)));
        assert_eq!(d.pop_front(), Some(10));
        // A single remaining job is fully taken by a thief.
        let d = Deque::new();
        d.refill(7, 8);
        assert_eq!(d.steal(), Some((7, 8)));
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop_front(), None);
    }
}
