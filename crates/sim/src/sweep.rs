//! Sharded stimulus sweeps over the batch simulator.
//!
//! A [`VectorSweep`] runs an arbitrary number of stimulus vectors
//! through a circuit by packing them into 64-lane
//! [`BatchSimulator`](crate::BatchSimulator) shards, optionally
//! spreading shards across OS threads (the default `threads` cargo
//! feature; sequential otherwise), and reporting per-shard and overall
//! throughput.
//!
//! Every vector is simulated from power-on: inputs applied, `cycles`
//! clock edges, outputs sampled — the natural shape for exhaustive
//! verification sweeps against a golden model.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, LogicVec, PortSpec};
//! use ipd_sim::VectorSweep;
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("xor_gate");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let b = ctx.add_port(PortSpec::input("b", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.xor2(a, b, y)?;
//!
//! let stimuli: Vec<Vec<(String, LogicVec)>> = (0..4u64)
//!     .map(|k| vec![
//!         ("a".to_owned(), LogicVec::from_u64(k & 1, 1)),
//!         ("b".to_owned(), LogicVec::from_u64(k >> 1, 1)),
//!     ])
//!     .collect();
//! let report = VectorSweep::new(&circuit)?.run(&stimuli)?;
//! assert_eq!(report.outputs.len(), 4);
//! let y1 = &report.outputs[1][0];
//! assert_eq!((y1.0.as_str(), y1.1.to_u64()), ("y", Some(1)));
//! # Ok(())
//! # }
//! ```

use std::time::{Duration, Instant};

use ipd_hdl::{Circuit, FlatNetlist, LogicVec, PortDir};

use crate::batch::{BatchSimulator, MAX_LANES};
use crate::error::SimError;

/// One stimulus vector: `(input port, value)` assignments.
pub type Stimulus = Vec<(String, LogicVec)>;

/// Per-vector output rows produced by one shard.
type ShardOutputs = Vec<Vec<(String, LogicVec)>>;

/// Timing for one 64-lane shard of a sweep.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index in submission order.
    pub shard: usize,
    /// Stimulus vectors simulated by this shard.
    pub vectors: usize,
    /// Wall-clock time the shard spent simulating.
    pub elapsed: Duration,
}

impl ShardStats {
    /// Vectors per second achieved by this shard.
    #[must_use]
    pub fn vectors_per_sec(&self) -> f64 {
        self.vectors as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The result of a sweep: per-vector outputs plus throughput counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// For each stimulus vector (in submission order), the value of
    /// every output port after the run.
    pub outputs: Vec<Vec<(String, LogicVec)>>,
    /// Per-shard timing, in shard order.
    pub shards: Vec<ShardStats>,
    /// Total wall-clock time for the whole sweep.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Total stimulus vectors simulated.
    #[must_use]
    pub fn total_vectors(&self) -> usize {
        self.outputs.len()
    }

    /// Overall vectors per second (wall clock, across all shards).
    #[must_use]
    pub fn vectors_per_sec(&self) -> f64 {
        self.total_vectors() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// A reusable sweep runner: compile once, shard stimulus into 64-lane
/// batches, run shards in parallel.
#[derive(Debug, Clone)]
pub struct VectorSweep {
    proto: BatchSimulator,
    cycles: u64,
    threads: usize,
}

impl VectorSweep {
    /// Compiles a circuit for sweeping, auto-detecting the clock.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, None)
    }

    /// Compiles a circuit with an explicit clock port.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn with_clock(circuit: &Circuit, clock_port: &str) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, Some(clock_port))
    }

    /// Compiles an already-flattened design.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn from_flat(flat: &FlatNetlist, clock_port: Option<&str>) -> Result<Self, SimError> {
        Ok(VectorSweep {
            proto: BatchSimulator::from_flat(flat, clock_port, MAX_LANES)?,
            cycles: 0,
            threads: default_threads(),
        })
    }

    /// Clock cycles to run after applying each vector's inputs
    /// (0 = combinational settle only; pipelined circuits need their
    /// latency here).
    #[must_use]
    pub fn cycles(mut self, n: u64) -> Self {
        self.cycles = n;
        self
    }

    /// Caps the number of worker threads (ignored without the
    /// `threads` feature; at least 1).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Runs every stimulus vector and collects outputs plus
    /// throughput counters.
    ///
    /// # Errors
    ///
    /// Propagates the first set/cycle/peek error from any shard.
    pub fn run(&self, stimuli: &[Stimulus]) -> Result<SweepReport, SimError> {
        let start = Instant::now();
        let jobs: Vec<(usize, &[Stimulus])> = stimuli.chunks(MAX_LANES).enumerate().collect();
        let mut results: Vec<Option<(ShardOutputs, ShardStats)>> = vec![None; jobs.len()];

        #[cfg(feature = "threads")]
        {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;

            let workers = self.threads.min(jobs.len()).max(1);
            if workers > 1 {
                let next = AtomicUsize::new(0);
                let out = Mutex::new(&mut results);
                let error: Mutex<Option<SimError>> = Mutex::new(None);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some((shard, chunk)) = jobs.get(k).copied() else {
                                break;
                            };
                            match self.run_shard(shard, chunk) {
                                Ok(r) => {
                                    out.lock().expect("results lock")[k] = Some(r);
                                }
                                Err(e) => {
                                    error.lock().expect("error lock").get_or_insert(e);
                                    break;
                                }
                            }
                        });
                    }
                });
                if let Some(e) = error.into_inner().expect("error lock") {
                    return Err(e);
                }
            } else {
                for (k, &(shard, chunk)) in jobs.iter().enumerate() {
                    results[k] = Some(self.run_shard(shard, chunk)?);
                }
            }
        }

        #[cfg(not(feature = "threads"))]
        for (k, &(shard, chunk)) in jobs.iter().enumerate() {
            results[k] = Some(self.run_shard(shard, chunk)?);
        }

        let mut outputs = Vec::with_capacity(stimuli.len());
        let mut shards = Vec::with_capacity(results.len());
        for r in results {
            let (mut shard_outputs, stats) = r.expect("every shard ran");
            outputs.append(&mut shard_outputs);
            shards.push(stats);
        }
        Ok(SweepReport {
            outputs,
            shards,
            elapsed: start.elapsed(),
        })
    }

    /// Runs one ≤64-vector shard on a fresh clone of the compiled
    /// batch simulator.
    fn run_shard(
        &self,
        shard: usize,
        chunk: &[Stimulus],
    ) -> Result<(ShardOutputs, ShardStats), SimError> {
        let t0 = Instant::now();
        let mut sim = self.proto.clone();
        for (lane, stim) in chunk.iter().enumerate() {
            for (port, value) in stim {
                sim.set_lane(port, lane, value)?;
            }
        }
        sim.cycle(self.cycles)?;
        let out_ports: Vec<String> = sim
            .ports()
            .into_iter()
            .filter(|(_, dir, _)| *dir == PortDir::Output)
            .map(|(name, _, _)| name)
            .collect();
        let mut per_port = Vec::with_capacity(out_ports.len());
        for port in &out_ports {
            per_port.push(sim.peek_lanes(port)?);
        }
        let outputs: Vec<Vec<(String, LogicVec)>> = (0..chunk.len())
            .map(|lane| {
                out_ports
                    .iter()
                    .zip(&per_port)
                    .map(|(name, values)| (name.clone(), values[lane].clone()))
                    .collect()
            })
            .collect();
        Ok((
            outputs,
            ShardStats {
                shard,
                vectors: chunk.len(),
                elapsed: t0.elapsed(),
            },
        ))
    }
}

/// Worker count: one per available core, at least 1.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
