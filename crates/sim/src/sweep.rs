//! Sharded stimulus sweeps over the batch engines.
//!
//! A [`VectorSweep`] runs an arbitrary number of stimulus vectors
//! through a circuit by packing them into lane-parallel shards —
//! 256-lane [`CompiledSimulator`](crate::CompiledSimulator) shards by
//! default, or 64-lane interpreted
//! [`BatchSimulator`](crate::BatchSimulator) shards via
//! [`SweepEngine::Interpreted`] — optionally spreading shards across
//! OS threads with a work-stealing scheduler (the default `threads`
//! cargo feature; sequential otherwise), and reporting per-shard and
//! overall throughput.
//!
//! The circuit is compiled (and, for the compiled engine, lowered to
//! bytecode) exactly once; every shard shares the program and pays
//! only a plane-arena allocation. A shard holds exactly as many lanes
//! as it has vectors, so a stimulus count that is not a multiple of
//! the lane width never pads with X lanes — partial planes are masked
//! and the throughput stats count real vectors only.
//!
//! Every vector is simulated from power-on: inputs applied, `cycles`
//! clock edges, outputs sampled — the natural shape for exhaustive
//! verification sweeps against a golden model.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, LogicVec, PortSpec};
//! use ipd_sim::VectorSweep;
//! use ipd_techlib::LogicCtx;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("xor_gate");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.add_port(PortSpec::input("a", 1))?;
//! let b = ctx.add_port(PortSpec::input("b", 1))?;
//! let y = ctx.add_port(PortSpec::output("y", 1))?;
//! ctx.xor2(a, b, y)?;
//!
//! let stimuli: Vec<Vec<(String, LogicVec)>> = (0..4u64)
//!     .map(|k| vec![
//!         ("a".to_owned(), LogicVec::from_u64(k & 1, 1)),
//!         ("b".to_owned(), LogicVec::from_u64(k >> 1, 1)),
//!     ])
//!     .collect();
//! let report = VectorSweep::new(&circuit)?.run(&stimuli)?;
//! assert_eq!(report.outputs.len(), 4);
//! let y1 = &report.outputs[1][0];
//! assert_eq!((y1.0.as_str(), y1.1.to_u64()), ("y", Some(1)));
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ipd_hdl::{Circuit, FlatNetlist, LogicVec, PortDir};

use crate::batch::{BatchSimulator, MAX_LANES};
use crate::error::SimError;
use crate::exec::{CompiledSimulator, COMPILED_MAX_LANES};
use crate::program::Program;

/// One stimulus vector: `(input port, value)` assignments.
pub type Stimulus = Vec<(String, LogicVec)>;

/// Per-vector output rows produced by one shard.
type ShardOutputs = Vec<Vec<(String, LogicVec)>>;

/// Which execution engine a [`VectorSweep`] runs its shards on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SweepEngine {
    /// The 256-lane compiled bytecode engine
    /// ([`CompiledSimulator`](crate::CompiledSimulator)) — the
    /// default.
    #[default]
    Compiled,
    /// The 64-lane interpreted engine
    /// ([`BatchSimulator`](crate::BatchSimulator)); useful as a
    /// differential oracle and for apples-to-apples comparisons with
    /// pre-compiled-backend measurements.
    Interpreted,
}

/// Timing for one lane-parallel shard of a sweep.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index in submission order.
    pub shard: usize,
    /// Stimulus vectors simulated by this shard (equals its lane
    /// count: partial final shards are never padded).
    pub vectors: usize,
    /// Wall-clock time the shard spent simulating.
    pub elapsed: Duration,
}

impl ShardStats {
    /// Vectors per second achieved by this shard.
    #[must_use]
    pub fn vectors_per_sec(&self) -> f64 {
        self.vectors as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The result of a sweep: per-vector outputs plus throughput counters.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// For each stimulus vector (in submission order), the value of
    /// every output port after the run.
    pub outputs: Vec<Vec<(String, LogicVec)>>,
    /// Per-shard timing, in shard order.
    pub shards: Vec<ShardStats>,
    /// Total wall-clock time for the whole sweep.
    pub elapsed: Duration,
    /// Shard ranges migrated between workers by the work-stealing
    /// scheduler (0 for sequential or single-worker runs).
    pub steals: u64,
}

impl SweepReport {
    /// Total stimulus vectors simulated.
    #[must_use]
    pub fn total_vectors(&self) -> usize {
        self.outputs.len()
    }

    /// Overall vectors per second (wall clock, across all shards).
    #[must_use]
    pub fn vectors_per_sec(&self) -> f64 {
        self.total_vectors() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// A reusable sweep runner: compile (and lower) once, shard stimulus
/// into lane-parallel batches, run shards across worker threads with
/// work stealing.
#[derive(Debug, Clone)]
pub struct VectorSweep {
    /// Compiled model holder; interpreted shards clone from it.
    proto: BatchSimulator,
    /// Lowered bytecode shared by compiled shards.
    program: Arc<Program>,
    engine: SweepEngine,
    cycles: u64,
    threads: usize,
}

impl VectorSweep {
    /// Compiles a circuit for sweeping, auto-detecting the clock.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn new(circuit: &Circuit) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, None)
    }

    /// Compiles a circuit with an explicit clock port.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn with_clock(circuit: &Circuit, clock_port: &str) -> Result<Self, SimError> {
        let flat = FlatNetlist::build(circuit)?;
        Self::from_flat(&flat, Some(clock_port))
    }

    /// Compiles an already-flattened design.
    ///
    /// # Errors
    ///
    /// As for [`BatchSimulator::new`].
    pub fn from_flat(flat: &FlatNetlist, clock_port: Option<&str>) -> Result<Self, SimError> {
        let proto = BatchSimulator::from_flat(flat, clock_port, MAX_LANES)?;
        let program = Program::lower(proto.compiled());
        Ok(VectorSweep {
            proto,
            program,
            engine: SweepEngine::default(),
            cycles: 0,
            threads: default_threads(),
        })
    }

    /// Clock cycles to run after applying each vector's inputs
    /// (0 = combinational settle only; pipelined circuits need their
    /// latency here).
    #[must_use]
    pub fn cycles(mut self, n: u64) -> Self {
        self.cycles = n;
        self
    }

    /// Caps the number of worker threads (ignored without the
    /// `threads` feature; at least 1).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Selects the execution engine (default:
    /// [`SweepEngine::Compiled`]).
    #[must_use]
    pub fn engine(mut self, engine: SweepEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Lanes per shard for the configured engine.
    fn lane_width(&self) -> usize {
        match self.engine {
            SweepEngine::Compiled => COMPILED_MAX_LANES,
            SweepEngine::Interpreted => MAX_LANES,
        }
    }

    /// Runs every stimulus vector and collects outputs plus
    /// throughput counters.
    ///
    /// # Errors
    ///
    /// Propagates the first set/cycle/peek error from any shard.
    pub fn run(&self, stimuli: &[Stimulus]) -> Result<SweepReport, SimError> {
        let start = Instant::now();
        let jobs: Vec<&[Stimulus]> = stimuli.chunks(self.lane_width()).collect();

        #[cfg(feature = "threads")]
        let (results, steals) = {
            let workers = self.threads.min(jobs.len()).max(1);
            let grain = (jobs.len() / (workers * 4)).clamp(1, 64);
            let (results, stats) = crate::steal::run_steal(jobs.len(), workers, grain, |k| {
                self.run_shard(k, jobs[k])
            })?;
            (results, stats.steals)
        };

        #[cfg(not(feature = "threads"))]
        let (results, steals) = {
            let mut results = Vec::with_capacity(jobs.len());
            for (k, chunk) in jobs.iter().enumerate() {
                results.push(self.run_shard(k, chunk)?);
            }
            (results, 0)
        };

        let mut outputs = Vec::with_capacity(stimuli.len());
        let mut shards = Vec::with_capacity(results.len());
        for (mut shard_outputs, stats) in results {
            outputs.append(&mut shard_outputs);
            shards.push(stats);
        }
        Ok(SweepReport {
            outputs,
            shards,
            elapsed: start.elapsed(),
            steals,
        })
    }

    /// Runs one shard with exactly `chunk.len()` lanes on the
    /// configured engine.
    fn run_shard(
        &self,
        shard: usize,
        chunk: &[Stimulus],
    ) -> Result<(ShardOutputs, ShardStats), SimError> {
        let t0 = Instant::now();
        let (out_ports, per_port) = match self.engine {
            SweepEngine::Compiled => {
                let mut sim =
                    CompiledSimulator::from_program(Arc::clone(&self.program), chunk.len())?;
                for (lane, stim) in chunk.iter().enumerate() {
                    for (port, value) in stim {
                        sim.set_lane(port, lane, value)?;
                    }
                }
                sim.cycle(self.cycles)?;
                let out_ports = output_ports(&sim.ports());
                let mut per_port = Vec::with_capacity(out_ports.len());
                for port in &out_ports {
                    per_port.push(sim.peek_lanes(port)?);
                }
                (out_ports, per_port)
            }
            SweepEngine::Interpreted => {
                let mut sim =
                    BatchSimulator::from_compiled(self.proto.compiled().clone(), chunk.len())?;
                for (lane, stim) in chunk.iter().enumerate() {
                    for (port, value) in stim {
                        sim.set_lane(port, lane, value)?;
                    }
                }
                sim.cycle(self.cycles)?;
                let out_ports = output_ports(&sim.ports());
                let mut per_port = Vec::with_capacity(out_ports.len());
                for port in &out_ports {
                    per_port.push(sim.peek_lanes(port)?);
                }
                (out_ports, per_port)
            }
        };
        let outputs: Vec<Vec<(String, LogicVec)>> = (0..chunk.len())
            .map(|lane| {
                out_ports
                    .iter()
                    .zip(&per_port)
                    .map(|(name, values)| (name.clone(), values[lane].clone()))
                    .collect()
            })
            .collect();
        Ok((
            outputs,
            ShardStats {
                shard,
                vectors: chunk.len(),
                elapsed: t0.elapsed(),
            },
        ))
    }
}

/// Names of the output ports, in port order.
fn output_ports(ports: &[(String, PortDir, u32)]) -> Vec<String> {
    ports
        .iter()
        .filter(|(_, dir, _)| *dir == PortDir::Output)
        .map(|(name, _, _)| name.clone())
        .collect()
}

/// Worker count: one per available core, at least 1.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
